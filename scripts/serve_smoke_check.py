#!/usr/bin/env python3
"""Assert a supervised `serve` run autoscaled, drained, and wound down.

CI's broker job runs a named sweep through the one-command service mode
(`python -m repro.runtime serve`) and then calls this to verify the
supervisor's contract from its own on-disk records
(`<cache-dir>/queue/supervisor.json`, written atomically every tick):

* the fleet autoscaled up to at least ``--min-peak`` concurrent workers,
* it wound back down to zero live workers afterwards,
* no worker crashed (``--allow-crashes`` relaxes this for fault smokes),
* the queue drained: nothing pending/claimed/failed, every done record
  completed by a supervised worker.

Prints the supervisor counters and event timeline as a markdown section
(pipe into ``$GITHUB_STEP_SUMMARY``) and exits non-zero on violation.

Usage::

    python scripts/serve_smoke_check.py --cache-dir DIR
        [--min-peak 2] [--allow-crashes]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runtime import BrokerQueue  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--min-peak", type=int, default=2)
    parser.add_argument("--allow-crashes", action="store_true")
    args = parser.parse_args(argv)

    queue = BrokerQueue(args.cache_dir)
    failures: list[str] = []

    state_path = queue.root / "supervisor.json"
    try:
        state = json.loads(state_path.read_text())
    except (OSError, ValueError):
        print(f"FAIL: no readable supervisor state at {state_path}", file=sys.stderr)
        return 1

    if state.get("peak_live", 0) < args.min_peak:
        failures.append(
            f"fleet never reached {args.min_peak} concurrent worker(s) "
            f"(peak_live={state.get('peak_live')})"
        )
    if state.get("live", -1) != 0:
        failures.append(f"fleet did not wind down (live={state.get('live')})")
    if state.get("crashes", 0) and not args.allow_crashes:
        failures.append(f"{state['crashes']} worker crash(es) during serve")

    counts = queue.counts()
    for bad in ("pending", "claimed", "failed"):
        if counts[bad]:
            failures.append(f"{counts[bad]} job(s) left in {bad}/")
    unsupervised = set()
    for path in queue.done.glob("*.json"):
        worker = json.loads(path.read_text())["worker"]
        if not worker.startswith("sv"):
            unsupervised.add(worker)
    unsupervised = sorted(unsupervised)
    if unsupervised:
        failures.append(
            "done records from non-supervised workers: " + ", ".join(unsupervised)
        )

    print("### Supervised serve smoke")
    print(
        f"- fleet: peak {state.get('peak_live')} live, "
        f"{state.get('spawned')} spawned, {state.get('retired')} retired, "
        f"{state.get('crashes')} crash(es), final live {state.get('live')}"
    )
    print(f"- queue: {counts['done']} done, {counts['failed']} failed")
    print()
    print("| t (rel) | event | worker | live |")
    print("|---|---|---|---|")
    timeline = state.get("timeline", [])
    t0 = timeline[0]["t"] if timeline else 0.0
    for event in timeline:
        print(
            f"| +{event['t'] - t0:.1f}s | {event['event']} "
            f"| {event.get('worker') or '—'} | {event['live']} |"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print()
    print(
        f"OK: autoscaled to {state['peak_live']} worker(s), drained "
        f"{counts['done']} job(s), wound down to 0"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
