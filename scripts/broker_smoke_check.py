#!/usr/bin/env python3
"""Assert a broker queue drained cleanly: every job done exactly once.

CI's two-worker smoke runs a named sweep through the broker backend with
external `python -m repro.runtime worker` processes, then calls this to
verify the distributed invariants from the queue's own records:

* no job left pending/claimed/failed,
* every done record completed on its **first** attempt (no crashes, no
  duplicate executions — the atomic-rename claim held),
* at least ``--min-workers`` distinct worker ids appear (work stealing
  actually spread the batch),
* optionally, exactly ``--expect-jobs`` jobs completed.

Prints a per-worker job/time table for the CI step summary and exits
non-zero on any violation.

Usage::

    python scripts/broker_smoke_check.py --cache-dir DIR
        [--expect-jobs N] [--min-workers 2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runtime import BrokerQueue  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--expect-jobs", type=int, default=None)
    parser.add_argument("--min-workers", type=int, default=2)
    parser.add_argument(
        "--allow-retries",
        action="store_true",
        help=(
            "accept done records with attempts > 1 (the kill-a-worker "
            "resume smoke recovers a SIGKILLed worker's lease, so exactly"
            "-once means one *completion*, not one attempt)"
        ),
    )
    args = parser.parse_args(argv)

    queue = BrokerQueue(args.cache_dir)
    counts = queue.counts()
    failures: list[str] = []
    for state in ("pending", "claimed", "failed"):
        if counts[state]:
            failures.append(f"{counts[state]} job(s) left in {state}/")
    if args.expect_jobs is not None and counts["done"] != args.expect_jobs:
        failures.append(f"expected {args.expect_jobs} done jobs, found {counts['done']}")

    per_worker: dict[str, dict[str, float]] = {}
    retried: list[str] = []
    for path in sorted(queue.done.glob("*.json")):
        record = json.loads(path.read_text())
        if record.get("attempts") != 1:
            retried.append(f"{record.get('job_id')} took {record.get('attempts')} attempts")
        stats = per_worker.setdefault(
            record.get("worker", "?"), {"jobs": 0, "run_s": 0.0, "wait_s": 0.0}
        )
        stats["jobs"] += 1
        stats["run_s"] += record.get("run_s", 0.0)
        stats["wait_s"] += record.get("queue_wait_s", 0.0)
    if retried and not args.allow_retries:
        failures.append("jobs not completed exactly once: " + "; ".join(retried))
    elif retried:
        print("recovered jobs (allowed): " + "; ".join(retried))
    if len(per_worker) < args.min_workers:
        failures.append(
            f"only {len(per_worker)} worker(s) completed jobs "
            f"({', '.join(sorted(per_worker)) or 'none'}); need >= {args.min_workers}"
        )

    print(f"broker queue {queue.root}: {counts['done']} done job(s)")
    print(f"{'worker':<24s} {'jobs':>5s} {'run_s':>8s} {'wait_s':>8s}")
    for worker, stats in sorted(per_worker.items()):
        print(
            f"{worker:<24s} {stats['jobs']:5d} {stats['run_s']:8.2f} "
            f"{stats['wait_s']:8.2f}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: every job completed exactly once across "
          f"{len(per_worker)} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
