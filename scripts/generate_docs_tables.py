#!/usr/bin/env python3
"""Regenerate (or drift-check) the generated tables in docs/experiments.md.

Three blocks between ``<!-- generated:begin NAME -->`` markers are owned
by this script and derived from code registries, so the docs can never
silently drift from what the code actually ships:

* ``exhibits`` — every entry of ``repro.experiments.EXPERIMENTS`` with its
  module and (when one re-expresses the grid) its named sweep;
* ``sweeps``   — every ``repro.experiments.sweeps.SWEEPS`` spec with its
  axes and unique-job count at the default scale;
* ``claims``   — the per-exhibit paper claims shared with
  ``scripts/generate_experiments_md.py`` (the EXPERIMENTS.md generator).

Usage::

    python scripts/generate_docs_tables.py           # rewrite in place
    python scripts/generate_docs_tables.py --check   # exit 1 on drift (CI)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from generate_experiments_md import PAPER_CLAIMS  # noqa: E402
from repro.experiments import EXPERIMENTS  # noqa: E402
from repro.experiments.common import get_scale  # noqa: E402
from repro.experiments.sweeps import SWEEPS, _axes_summary  # noqa: E402

DOC_PATH = REPO_ROOT / "docs" / "experiments.md"

_MARKER = "<!-- generated:begin {name} -->\n{body}<!-- generated:end {name} -->"


def _exhibit_table() -> str:
    sweep_by_exhibit = {
        spec.exhibit: spec.name for spec in SWEEPS.values() if spec.exhibit
    }
    lines = [
        "| exhibit | module | sweep | regenerate |",
        "|---|---|---|---|",
    ]
    for name, module in EXPERIMENTS.items():
        mod_path = module.__name__.replace("repro.experiments.", "")
        sweep = sweep_by_exhibit.get(name)
        sweep_cell = f"`{sweep}`" if sweep else "—"
        lines.append(
            f"| {name} | `experiments/{mod_path}.py` | {sweep_cell} | "
            f"`python -m repro.experiments default {name}` |"
        )
    return "\n".join(lines) + "\n"


def _sweep_table() -> str:
    scale = get_scale("default")
    lines = [
        "| sweep | mechanisms | axes | workloads | jobs | exhibit |",
        "|---|---|---|---|---|---|",
    ]
    for spec in SWEEPS.values():
        mechs = ", ".join(spec.mechanisms)
        axes = _axes_summary(spec)
        wl_set = spec.workload_set or "paper*"
        exhibit = spec.exhibit or "—"
        lines.append(
            f"| `{spec.name}` | {mechs} | {axes} | {wl_set} | "
            f"{spec.job_count(scale)} | {exhibit} |"
        )
    lines.append("")
    lines.append(
        "\\* default set; override per run with `--workload-set` / "
        "`REPRO_WORKLOAD_SET`. Job counts include matched baselines."
    )
    return "\n".join(lines) + "\n"


def _claims_list() -> str:
    lines = [f"* **{name}** — {claim}" for name, claim in PAPER_CLAIMS.items()]
    return "\n".join(lines) + "\n"


BLOCKS = {
    "exhibits": _exhibit_table,
    "sweeps": _sweep_table,
    "claims": _claims_list,
}


def render(text: str) -> str:
    """Replace every generated block in ``text`` with fresh content."""
    for name, builder in BLOCKS.items():
        pattern = re.compile(
            rf"<!-- generated:begin {name} -->\n.*?<!-- generated:end {name} -->",
            re.DOTALL,
        )
        if not pattern.search(text):
            raise SystemExit(f"docs/experiments.md lost its {name!r} markers")
        text = pattern.sub(
            lambda _m: _MARKER.format(name=name, body=builder()), text, count=1
        )
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed tables differ from regenerated ones",
    )
    args = parser.parse_args(argv)
    committed = DOC_PATH.read_text()
    fresh = render(committed)
    if args.check:
        if committed != fresh:
            print(
                "docs/experiments.md is stale: regenerate with "
                "`python scripts/generate_docs_tables.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/experiments.md tables are up to date")
        return 0
    if committed == fresh:
        print("docs/experiments.md already up to date")
    else:
        DOC_PATH.write_text(fresh)
        print("rewrote generated tables in docs/experiments.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
