#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every exhibit.

Runs the full experiment harness (figures at default workload scale; the
two latency sweeps use the quick latency grids to keep the run under ~15
minutes) and writes the results, paired with the paper's reported numbers
and a verdict, into EXPERIMENTS.md.

Usage: python scripts/generate_experiments_md.py [quick|default|full]
"""

from __future__ import annotations

import io
import sys
import time

from repro.experiments import EXPERIMENTS

#: Paper-reported numbers / claims per exhibit, used in the write-up.
#: Shared with scripts/generate_docs_tables.py, which renders the same
#: claims into docs/experiments.md (drift-checked in CI) — edit here.
PAPER_CLAIMS = {
    "figure1": "Perfect L1-I: +11-47% speedup; perfect BTB adds another 6-40%. "
               "OLTP (DB2) shows the largest BTB opportunity; Streaming the smallest overall.",
    "figure2": "FDIP+TAGE covers stall cycles nearly identically to PIF across LLC "
               "latencies 1-70; FDIP with 2-bit tracks closely; never-taken retains "
               "much of the coverage.",
    "figure3": "Sequential misses dominate the no-prefetch baseline (40-54% of miss "
               "cycles); FDIP covers all three classes; the BTB-size gap concentrates "
               "in the unconditional class.",
    "figure4": "~92% of dynamically taken conditional branches jump at most 4 cache blocks.",
    "figure5": "Shrinking the BTB 32K -> 2K costs only ~12% stall-cycle coverage.",
    "figure7": "BTB misses and mispredicts squash comparably in BTB-blind schemes "
               "(DB2 ~75% BTB); Boomerang and Confluence eliminate >85% of BTB-miss "
               "squashes (~2x total squash reduction).",
    "figure8": "Boomerang covers 61% of stall cycles on average ~ Confluence's 60%; "
               "Boomerang leads on web workloads, trails on Oracle/DB2.",
    "figure9": "Boomerang +27.5% average speedup, edging Confluence (+1%) and beating "
               "L1-I-only prefetchers by ~11%.",
    "figure10": "Next-2-blocks is the optimal throttled-prefetch policy on average "
                "(+12% on DB2 vs none); Streaming prefers none; >2 blocks degrades.",
    "figure11": "At an 18-cycle crossbar LLC the ordering is unchanged and absolute "
                "gains shrink; Boomerang keeps its slight edge over Confluence.",
    "storage": "Boomerang: 540 B (204 B FTQ + 336 B BTB prefetch buffer). Confluence: "
               "240 KB LLC tag extension + >200 KB LLC carve per workload. PIF: "
               ">200 KB/core. RDIP: ~60 KB. SHIFT: >400 KB.",
    "ablations": "(Not a paper exhibit.) Sensitivity of Boomerang to its three design "
                 "knobs, per Section IV-C's discussion.",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Regenerated with `python scripts/generate_experiments_md.py` (scale: {scale};
fig. 2/5 latency grids: {latency_note}). Absolute values are not expected to
match the paper — the substrate is a synthetic-workload, single-core Python
model (DESIGN.md §2, §5) — the reproduced content is each exhibit's *shape*.

Global deviations to keep in mind when reading the tables:

1. **Speedups run somewhat higher than the paper's** (our baseline spends a
   larger share of time in front-end stalls than Flexus' cores did), so
   compare mechanisms against each other, not against the paper's absolute
   percentages.
2. **Our Boomerang does not fall behind Confluence on Oracle/DB2** (the
   paper's one loss). The effect requires Boomerang's BTB-miss stalls to
   drain the FTQ faster than the back end consumes it; at our simulated
   base IPC the 32-entry FTQ hides most of the prefill stalls. The
   underlying mechanism (BTB-miss stall cycles) is modelled and reported
   (`btb_miss_stall_cycles`), and the paper's Oracle/DB2 coverage gap does
   appear as a materially higher stall count on the OLTP profiles.
3. **PIF/SHIFT coverage is ~15 points below FDIP's** rather than equal to
   it (Fig. 2): our synthetic transactions have more conditional-path
   variation per recurrence than the paper's workloads, which caps
   temporal-stream coverage. Orderings involving PIF/SHIFT still hold.
4. **Figure 10's interior optimum does not reproduce**: beyond next-2 the
   paper sees degradation because 16 cores contend for LLC/NoC bandwidth
   and erroneous prefetches delay useful ones; a single detailed core
   under-prices that waste, so our curve keeps improving mildly past 2
   blocks. The claims that do reproduce: throttled prefetch beats none
   (DB2 gains the most, as in the paper) and returns diminish past next-2.

"""


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "default"
    sweep_scale = "quick" if scale == "default" else scale
    out = io.StringIO()
    latency_note = "quick" if sweep_scale == "quick" else sweep_scale
    out.write(HEADER.format(scale=scale, latency_note=latency_note))

    for name, module in EXPERIMENTS.items():
        exhibit_scale = sweep_scale if name in ("figure2", "figure5") else scale
        start = time.time()
        print(f"running {name} at scale={exhibit_scale}...", flush=True)
        result = module.run(exhibit_scale)
        elapsed = time.time() - start
        out.write(f"## {name}\n\n")
        out.write(f"**Paper:** {PAPER_CLAIMS[name]}\n\n")
        out.write("**Measured:**\n\n```\n")
        fmt = "{:.1f}" if name == "figure3" else "{:.3f}"
        out.write(result.to_table(float_fmt=fmt))
        out.write("\n```\n\n")
        out.write(f"_Regenerated in {elapsed:.0f}s "
                  f"(`python -m repro.experiments {exhibit_scale} {name}`)._\n\n")

    with open("EXPERIMENTS.md", "w") as fh:
        fh.write(out.getvalue())
    print("wrote EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
