#!/usr/bin/env python
"""Aggregate ``benchmarks/results/BENCH_*.json`` into one perf report.

Each perf-guard benchmark leaves a machine-readable payload behind
(``BENCH_batched_grid.json``, ``BENCH_analytic_hybrid.json``, ...). This
script folds every payload into a single longitudinal markdown table —
one row per benchmark with its headline speedup and timings — followed by
a flattened per-benchmark detail section. CI appends the output to the
benchmarks job's step summary, so the perf trajectory of the repo is
readable off one page instead of N JSON artifacts.

The report is generic over payload shape: any nested object holding a
``seconds`` key is treated as a timed mode, any top-level ``speedup`` as
the headline ratio, and everything else lands in the detail listing.

Usage::

    python scripts/bench_report.py [--results-dir benchmarks/results]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def flatten(payload: dict, prefix: str = "") -> dict[str, object]:
    """Nested dicts -> dotted scalar keys, insertion order preserved."""
    flat: dict[str, object] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{name}."))
        else:
            flat[name] = value
    return flat


def timed_modes(payload: dict) -> list[tuple[str, float]]:
    """The benchmark's timed modes: (name, seconds), in payload order."""
    modes = []
    for key, value in payload.items():
        if isinstance(value, dict) and isinstance(
            value.get("seconds"), (int, float)
        ):
            modes.append((key, float(value["seconds"])))
    return modes


def load_payloads(results_dir: Path) -> list[tuple[str, dict]]:
    payloads = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(payload, dict):
            payloads.append((name, payload))
        else:
            # Valid JSON that is not an object is just as malformed as
            # unparseable bytes — dropping it silently would hide a broken
            # benchmark from the report.
            print(
                f"warning: skipping malformed {path}: not a JSON object "
                f"(got {type(payload).__name__})",
                file=sys.stderr,
            )
    return payloads


def summary_table(payloads: list[tuple[str, dict]]) -> list[str]:
    lines = [
        "| benchmark | workload | cells | modes (seconds) | speedup | floor |",
        "|---|---|---|---|---|---|",
    ]
    for name, payload in payloads:
        modes = " vs ".join(
            f"{mode} {seconds:g}s" for mode, seconds in timed_modes(payload)
        )
        speedup = payload.get("speedup", "—")
        floor = payload.get("speedup_floor", "—")
        lines.append(
            f"| {name} | {payload.get('workload', '—')} "
            f"| {payload.get('cells', '—')} | {modes or '—'} "
            f"| **{speedup}x** | {floor}x |"
        )
    return lines


def detail_sections(payloads: list[tuple[str, dict]]) -> list[str]:
    lines = []
    for name, payload in payloads:
        lines.append("")
        lines.append(f"<details><summary>{name}: full payload</summary>")
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|---|---|")
        for key, value in flatten(payload).items():
            lines.append(f"| {key} | {value} |")
        lines.append("")
        lines.append("</details>")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory holding BENCH_*.json payloads",
    )
    args = parser.parse_args(argv)
    payloads = load_payloads(args.results_dir)
    if not payloads:
        print(f"no BENCH_*.json payloads under {args.results_dir}", file=sys.stderr)
        return 1
    print("### Benchmark perf trajectory")
    print()
    for line in summary_table(payloads):
        print(line)
    for line in detail_sections(payloads):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
