#!/usr/bin/env python3
"""Report cold-vs-warm workload build times through the trace store.

For every profile in the chosen set, measure:

* **cold** — a full in-process build (CFG builder + streaming trace
  walker), which is what every pool worker paid per workload before the
  persistent store existed;
* **warm** — the same ``load_workload`` call against a populated store
  (the in-process memo is cleared in between, so the hit really comes
  off disk).

The cold pass populates the store, so running this against the cache
directory a sweep is about to use doubles as a warm-up. CI runs it after
the experiment smoke runs and appends the table to the step summary next
to the result-cache hit counts.

Usage::

    python scripts/trace_store_timing.py --cache-dir DIR
        [--set paper|extended|all] [--scale 0.25]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.workloads import (  # noqa: E402  (path bootstrap above)
    clear_workload_cache,
    configure_trace_store,
    get_trace_store,
    load_workload,
    workload_set,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True, help="trace store directory")
    parser.add_argument("--set", default="all", help="profile set (default: all)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale (default: quick, 0.25)")
    args = parser.parse_args(argv)

    profiles = workload_set(args.set)

    # Cold pass: build with the store attached but empty (or stale), so the
    # records land on disk for the warm pass and for any following sweep.
    configure_trace_store(args.cache_dir)
    store = get_trace_store()
    rows: list[tuple[str, float, float]] = []
    for profile in profiles:
        clear_workload_cache()
        hits_before = store.hits
        t0 = time.perf_counter()
        load_workload(profile.name, scale=args.scale)
        t_first = time.perf_counter() - t0
        first_was_hit = store.hits > hits_before

        clear_workload_cache()
        t0 = time.perf_counter()
        load_workload(profile.name, scale=args.scale)
        t_warm = time.perf_counter() - t0
        # If the store was already warm, the first pass was not a cold
        # build; rebuild without the store to report an honest cold time.
        if first_was_hit:
            clear_workload_cache()
            configure_trace_store(None)
            t0 = time.perf_counter()
            load_workload(profile.name, scale=args.scale)
            t_first = time.perf_counter() - t0
            configure_trace_store(args.cache_dir)
        rows.append((profile.name, t_first, t_warm))

    print(f"trace store at {args.cache_dir} (scale {args.scale}, set {args.set})")
    print(f"{'workload':<14s} {'cold build':>12s} {'warm load':>12s} {'speedup':>8s}")
    total_cold = total_warm = 0.0
    for name, cold, warm in rows:
        total_cold += cold
        total_warm += warm
        speedup = cold / warm if warm > 0 else float("inf")
        print(f"{name:<14s} {cold * 1e3:>10.1f}ms {warm * 1e3:>10.1f}ms {speedup:>7.1f}x")
    speedup = total_cold / total_warm if total_warm > 0 else float("inf")
    print(f"{'total':<14s} {total_cold * 1e3:>10.1f}ms {total_warm * 1e3:>10.1f}ms "
          f"{speedup:>7.1f}x")
    if total_warm >= total_cold:
        print("WARNING: warm loads were not faster than cold builds", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
