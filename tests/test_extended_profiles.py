"""The four extended scenario profiles: structure, selector, and smoke.

The acceptance bar for new profiles is that they build valid CFGs, hit
their intended control-flow stressors, and simulate cleanly under *every*
mechanism at the quick experiment scale — the same scale the golden
engine harness runs at.
"""

from __future__ import annotations

import math

import pytest

from repro.core import MECHANISMS
from repro.core.simulator import Simulator
from repro.core.mechanisms import make_config
from repro.errors import ConfigError
from repro.workloads import (
    ALL_PROFILES,
    EXTENDED_PROFILES,
    PROFILE_SETS,
    BranchKind,
    build_cfg,
    get_profile,
    load_workload,
    profile_names,
    workload_set,
)

QUICK_SCALE = 0.25

EXTENDED_NAMES = ("microrpc", "interp", "mlserve", "compilerpass")


class TestRegistries:
    def test_paper_set_unchanged(self):
        assert tuple(p.name for p in ALL_PROFILES) == (
            "nutch", "streaming", "apache", "zeus", "oracle", "db2",
        )

    def test_extended_set(self):
        assert tuple(p.name for p in EXTENDED_PROFILES) == EXTENDED_NAMES

    def test_sets_are_disjoint_and_all_is_their_union(self):
        paper = {p.name for p in PROFILE_SETS["paper"]}
        extended = {p.name for p in PROFILE_SETS["extended"]}
        assert not paper & extended
        assert {p.name for p in PROFILE_SETS["all"]} == paper | extended

    def test_selector_defaults_to_paper(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOAD_SET", raising=False)
        assert workload_set() == ALL_PROFILES
        assert profile_names() == tuple(p.name for p in ALL_PROFILES)

    def test_selector_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SET", "extended")
        assert workload_set() == EXTENDED_PROFILES

    def test_selector_rejects_unknown(self):
        with pytest.raises(ConfigError):
            workload_set("bogus")

    @pytest.mark.parametrize("name", EXTENDED_NAMES)
    def test_lookup_by_name(self, name):
        assert get_profile(name).name == name

    def test_unique_seeds_across_all_profiles(self):
        seeds = [p.seed for p in PROFILE_SETS["all"]]
        assert len(set(seeds)) == len(seeds)


class TestIntendedStressors:
    """Each scenario must actually exhibit the behaviour it models."""

    def test_microrpc_call_chains_deepest(self):
        assert get_profile("microrpc").layers > max(p.layers for p in ALL_PROFILES)

    def test_interp_indirect_jump_density(self):
        cfg = build_cfg(get_profile("interp").scaled(QUICK_SCALE))
        kinds = [b.kind for b in cfg.blocks.values()]
        ind_jumps = sum(1 for k in kinds if k == BranchKind.IND_JUMP)
        jumps = sum(1 for k in kinds if k == BranchKind.JUMP)
        # ~30% of eligible jumps convert; direct jumps near function tails
        # cannot, so assert a healthy floor well above the stock 10%.
        assert ind_jumps / max(1, ind_jumps + jumps) > 0.15
        widest = max(
            (len(b.indirect_targets) for b in cfg.blocks.values()), default=0
        )
        assert widest >= 6

    def test_mlserve_straight_line_fetch(self):
        wl = load_workload("mlserve", scale=QUICK_SCALE)
        summary = wl.trace.summary()
        assert summary.avg_bb_instrs > 2 * max(
            load_workload(name, scale=QUICK_SCALE).trace.summary().avg_bb_instrs
            for name in ("oracle", "db2")
        )

    def test_compilerpass_largest_branch_footprint(self):
        compiler = build_cfg(get_profile("compilerpass").scaled(QUICK_SCALE))
        db2 = build_cfg(get_profile("db2").scaled(QUICK_SCALE))
        assert compiler.n_static_branches > db2.n_static_branches


class TestQuickScaleSmoke:
    """Every mechanism must simulate every new profile cleanly."""

    @pytest.fixture(scope="class", params=EXTENDED_NAMES)
    def workload(self, request):
        return load_workload(request.param, scale=QUICK_SCALE)

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_simulates_cleanly(self, workload, mechanism):
        result = Simulator(workload, make_config(mechanism)).run()
        raw = result.raw
        assert raw["retired_instrs"] > 0
        assert raw["cycles"] > 0
        assert 0.0 < result.ipc <= 4.0
        assert all(math.isfinite(v) for v in raw.values())
