"""Tests for the FTQ and the cache-block predecoder."""

import pytest

from repro.frontend.ftq import FetchTargetQueue
from repro.frontend.predecode import (
    boomerang_fill,
    find_terminating_branch,
    predecode_block,
)
from repro.workloads.builder import build_cfg
from repro.workloads.isa import BranchKind, block_of
from repro.workloads.profiles import ZEUS


@pytest.fixture(scope="module")
def cfg():
    return build_cfg(ZEUS.scaled(0.1))


class TestFTQ:
    def test_fifo_order(self):
        q = FetchTargetQueue(4)
        q.push("a")
        q.push("b")
        assert q.pop() == "a"
        assert q.pop() == "b"

    def test_full_and_overflow(self):
        q = FetchTargetQueue(2)
        q.push(1)
        q.push(2)
        assert q.full
        with pytest.raises(OverflowError):
            q.push(3)

    def test_flush_empties_and_counts(self):
        q = FetchTargetQueue(4)
        q.push(1)
        q.push(2)
        assert q.flush() == 2
        assert q.empty
        assert q.flushes == 1

    def test_pushed_counter_survives_flush(self):
        q = FetchTargetQueue(4)
        q.push(1)
        q.flush()
        q.push(2)
        assert q.pushed == 2

    def test_peek(self):
        q = FetchTargetQueue(4)
        assert q.peek() is None
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            FetchTargetQueue(0)

    def test_iteration_in_order(self):
        q = FetchTargetQueue(4)
        for i in range(3):
            q.push(i)
        assert list(q) == [0, 1, 2]


class TestPredecodeBlock:
    def test_finds_all_branches_in_block(self, cfg):
        blk = next(iter(cfg.blocks.values()))
        cache_block = block_of(blk.branch_pc)
        entries = predecode_block(cfg, cache_block)
        assert any(pc == blk.start for pc, _ in entries)

    def test_entries_match_static_blocks(self, cfg):
        checked = 0
        for blk in list(cfg.blocks.values())[:100]:
            cache_block = block_of(blk.branch_pc)
            for pc, entry in predecode_block(cfg, cache_block):
                static = cfg.blocks[pc]
                assert entry.n_instrs == static.n_instrs
                assert entry.kind == int(static.kind)
                checked += 1
        assert checked > 0

    def test_ret_entries_have_zero_target(self, cfg):
        for blk in cfg.blocks.values():
            if blk.kind != BranchKind.RET:
                continue
            entries = predecode_block(cfg, block_of(blk.branch_pc))
            entry = dict(entries)[blk.start]
            assert entry.target == 0
            break

    def test_empty_block_has_no_entries(self, cfg):
        # A block number far outside the code region.
        assert predecode_block(cfg, 1) == []


class TestFindTerminatingBranch:
    def test_first_branch_after_pc(self, cfg):
        blk = next(iter(cfg.blocks.values()))
        cache_block = block_of(blk.branch_pc)
        found = find_terminating_branch(cfg, cache_block, blk.start)
        assert found is not None
        assert found.branch_pc >= blk.start

    def test_none_when_past_all_branches(self, cfg):
        blk = next(iter(cfg.blocks.values()))
        cache_block = block_of(blk.branch_pc)
        branches = cfg.branches_in_cache_block(cache_block)
        past = branches[-1].branch_pc + 4
        assert find_terminating_branch(cfg, cache_block, past) is None


class TestBoomerangFill:
    def test_resolves_miss_at_block_start(self, cfg):
        """Predecoding from a true bb start yields that block's natural entry."""
        for blk in list(cfg.blocks.values())[:50]:
            cache_block = block_of(blk.branch_pc)
            if block_of(blk.start) != cache_block:
                continue  # bb spans blocks; handled by the walk case below
            filled, others = boomerang_fill(cfg, cache_block, blk.start)
            assert filled is not None
            pc, entry = filled
            assert pc == blk.start
            assert entry.n_instrs == blk.n_instrs
            assert entry.kind == int(blk.kind)
            return
        pytest.skip("no same-block bb found in sample")

    def test_spanning_block_requires_walk(self, cfg):
        """If the bb's branch is in a later cache block, step 3b applies."""
        for blk in cfg.blocks.values():
            first_block = block_of(blk.start)
            if block_of(blk.branch_pc) == first_block:
                continue
            branches_here = [
                b for b in cfg.branches_in_cache_block(first_block)
                if b.branch_pc >= blk.start
            ]
            if branches_here:
                continue
            filled, _ = boomerang_fill(cfg, first_block, blk.start)
            assert filled is None  # must walk to the next sequential block
            filled2, _ = boomerang_fill(cfg, first_block + 1, blk.start)
            if filled2 is not None:
                assert filled2[0] == blk.start
            return
        pytest.skip("no spanning bb found")

    def test_others_exclude_terminator(self, cfg):
        blk = next(iter(cfg.blocks.values()))
        cache_block = block_of(blk.branch_pc)
        filled, others = boomerang_fill(cfg, cache_block, blk.start)
        if filled is None:
            pytest.skip("terminator not in first block")
        terminator_pcs = {pc for pc, _ in others}
        # The terminating branch's bb must not be staged as an "other".
        branches = cfg.branches_in_cache_block(cache_block)
        term = next(b for b in branches if b.branch_pc >= blk.start)
        assert term.start not in terminator_pcs or term.start == filled[0]
