"""The analytic fidelity tier: model, planner, store isolation, runtime.

The pivotal guarantees pinned here:

* **bound honesty** — for every mechanism, each analytic cell's speedup
  error against exact ground truth stays within the model's own reported
  bound (composed across numerator and denominator);
* **cache isolation** — analytic records can never satisfy exact-fidelity
  lookups, and exact records pass through the analytic store untouched;
* **reduction** — on a dense-grid column the planner dispatches >= 5x
  fewer exact-engine cells than the grid has.

Ground truth runs every grid cell on the exact engine; the analytic
runtime gets its *own* stores, so its anchors are genuinely re-executed
rather than borrowed from the ground-truth pass.
"""

from __future__ import annotations

import pytest

from repro.analytic import (
    AnalyticStore,
    combined_speedup_bound,
    is_analytic,
    parse_anchor_spec,
    plan_series,
    plan_summary,
    reported_bound,
)
from repro.core.mechanisms import MECHANISMS, make_config
from repro.errors import ConfigError
from repro.experiments.common import get_scale
from repro.experiments.sweeps import get_sweep
from repro.runtime import ExperimentRuntime, SimJob
from repro.runtime.cache import ResultCache

WL = "apache"
SCALE = 0.05

#: The test grid: anchors (3x2 spread picks 1/45/70 x 2048/32768) leave
#: the lat=20 column as genuinely interpolated cells in every series.
LATS = (1, 20, 45, 70)
BTBS = (2048, 32768)

#: Slack for float round-tripping on top of the model's own bound.
EPS = 1e-9


def _grid_jobs() -> list[SimJob]:
    jobs = []
    for mech in MECHANISMS:
        for lat in LATS:
            for btb in BTBS:
                cfg = make_config(mech).with_llc_latency(lat).with_btb_entries(btb)
                jobs.append(SimJob(WL, cfg, SCALE))
    return jobs


@pytest.fixture(scope="module")
def grid_jobs() -> list[SimJob]:
    return _grid_jobs()


@pytest.fixture(scope="module")
def exact_results(grid_jobs):
    """Ground truth: every grid cell on the exact engine."""
    runtime = ExperimentRuntime()
    return dict(zip([j.key for j in grid_jobs], runtime.run_many(grid_jobs)))


@pytest.fixture(scope="module")
def analytic_run(grid_jobs, tmp_path_factory):
    """The same grid through the analytic tier, with its own stores."""
    cache_dir = tmp_path_factory.mktemp("analytic-cache")
    runtime = ExperimentRuntime(cache_dir=cache_dir, fidelity="analytic")
    results = dict(zip([j.key for j in grid_jobs], runtime.run_many(grid_jobs)))
    return runtime, results, cache_dir


class TestAnchorSpec:
    def test_parse(self):
        assert parse_anchor_spec("3x2") == (3, 2)
        assert parse_anchor_spec("4X3") == (4, 3)

    @pytest.mark.parametrize("bad", ["", "3", "x", "3x", "2x2", "1x9", "3x1"])
    def test_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_anchor_spec(bad)


class TestPlanner:
    def test_dense_column_reduction(self):
        """The planner's exact dispatch is >= 5x smaller than the grid."""
        spec = get_sweep("dense-latency-btb")
        scale = get_scale("quick")
        seen, jobs = set(), []
        for job in spec.jobs(scale):
            if job.workload != WL or job.key in seen:
                continue
            seen.add(job.key)
            jobs.append(job)
        assert len(jobs) == 120
        plans, passthrough = plan_series(jobs)
        exact, estimated = plan_summary(plans, passthrough)
        assert exact + estimated == 120
        assert exact * 5 <= len(jobs)
        # 3 series (fdip, boomerang, baseline) x 6 anchors, none passed through.
        assert not passthrough
        assert exact == 18

    def test_small_series_pass_through(self):
        """Fewer than 3 distinct latencies -> exact, never a guess."""
        jobs = [
            SimJob(
                WL,
                make_config("fdip").with_llc_latency(lat).with_btb_entries(btb),
                SCALE,
            )
            for lat in (1, 70)
            for btb in BTBS
        ]
        plans, passthrough = plan_series(jobs)
        assert not plans
        assert len(passthrough) == len(jobs)

    def test_mechanisms_never_share_a_series(self, grid_jobs):
        plans, passthrough = plan_series(grid_jobs)
        assert not passthrough
        assert len(plans) == len(MECHANISMS)
        assert {p.mechanism for p in plans} == set(MECHANISMS)


class TestAnalyticRuntime:
    def test_anchor_vs_estimated_split(self, analytic_run, grid_jobs):
        runtime, results, _ = analytic_run
        # 6 anchors per series x 8 mechanism series run exact; the other
        # 2 cells per series are synthesized.
        assert runtime.executed == 6 * len(MECHANISMS)
        assert runtime.estimated == 2 * len(MECHANISMS)
        assert runtime.executed + runtime.estimated == len(grid_jobs)

    def test_estimates_are_marked(self, analytic_run):
        _, results, _ = analytic_run
        marked = [r for r in results.values() if is_analytic(r)]
        assert len(marked) == 2 * len(MECHANISMS)
        for result in marked:
            assert reported_bound(result) > 0.0

    def test_speedup_error_within_reported_bound(
        self, analytic_run, exact_results, grid_jobs
    ):
        """The pivotal claim: every mechanism's analytic speedup is within
        the model's self-reported bound of the exact-engine speedup."""
        _, results, _ = analytic_run
        by_cell = {}
        for job in grid_jobs:
            lat, btb = (
                job.config.memory.llc_round_trip,
                job.config.btb.entries,
            )
            by_cell[(job.config.mechanism, lat, btb)] = job.key
        checked = 0
        for mech in MECHANISMS:
            if mech == "none":
                continue
            for lat in LATS:
                for btb in BTBS:
                    mech_key = by_cell[(mech, lat, btb)]
                    base_key = by_cell[("none", lat, btb)]
                    ana_mech, ana_base = results[mech_key], results[base_key]
                    if not (is_analytic(ana_mech) or is_analytic(ana_base)):
                        continue  # anchor cells are exact on both tiers
                    exact_speedup = exact_results[mech_key].speedup_over(
                        exact_results[base_key]
                    )
                    ana_speedup = ana_mech.speedup_over(ana_base)
                    bound = combined_speedup_bound(
                        reported_bound(ana_mech), reported_bound(ana_base)
                    )
                    err = abs(ana_speedup - exact_speedup) / exact_speedup
                    assert err <= bound + EPS, (
                        f"{mech} lat={lat} btb={btb}: err {err:.5f} "
                        f"exceeds reported bound {bound:.5f}"
                    )
                    checked += 1
        assert checked > 0

    def test_anchors_are_exact_engine_results(self, analytic_run, exact_results):
        """Anchor cells come from the real engine: bit-identical to truth."""
        _, results, _ = analytic_run
        exact_cells = [
            (key, r) for key, r in results.items() if not is_analytic(r)
        ]
        assert exact_cells
        for key, result in exact_cells:
            assert result.raw == exact_results[key].raw


class TestCacheIsolation:
    def test_analytic_records_never_satisfy_exact_lookups(self, analytic_run):
        """An exact-fidelity runtime over a cache holding only analytic
        records sees misses everywhere — estimates cannot shadow truth."""
        runtime, results, cache_dir = analytic_run
        exact_cache = ResultCache(cache_dir)
        analytic_store = AnalyticStore(cache_dir)
        hit_analytic = hit_exact = 0
        for key, result in results.items():
            if not is_analytic(result):
                continue
            assert analytic_store.get(*key) is not None
            assert exact_cache.get(*key) is None
            hit_analytic += 1
        assert hit_analytic == runtime.estimated

    def test_exact_records_never_satisfy_analytic_store(self, analytic_run):
        runtime, results, cache_dir = analytic_run
        analytic_store = AnalyticStore(cache_dir)
        for key, result in results.items():
            if is_analytic(result):
                continue
            # The anchors landed in the exact cache; the analytic store
            # must not serve them from its own (disjoint) tag directory.
            assert analytic_store.get(*key) is None

    def test_exact_runtime_reexecutes_over_analytic_only_cache(
        self, analytic_run
    ):
        """Fidelity=exact re-runs a cell even when an estimate exists."""
        _, results, cache_dir = analytic_run
        estimated_keys = [k for k, r in results.items() if is_analytic(r)]
        workload, scale_tok, digest = estimated_keys[0]
        # Fresh exact runtime on the same cache dir: the analytic record
        # for this key exists, but run_one must simulate anyway.
        runtime = ExperimentRuntime(cache_dir=cache_dir)
        # The anchor cells live in the exact cache, so pick the estimated
        # cell's config back out of the grid.
        job = next(j for j in _grid_jobs() if j.key == estimated_keys[0])
        result = runtime.run_one(job.workload, job.config, job.workload_scale)
        assert runtime.executed == 1
        assert not is_analytic(result)

    def test_analytic_runtime_prefers_exact_records(
        self, analytic_run, grid_jobs
    ):
        """A warm exact cache short-circuits the whole calibration pass."""
        _, _, cache_dir = analytic_run
        warm = ExperimentRuntime(cache_dir=cache_dir, fidelity="analytic")
        warm.run_many(grid_jobs)
        # Anchors hit the exact cache, estimates hit the analytic store:
        # nothing executes, nothing is re-estimated.
        assert warm.executed == 0
        assert warm.estimated == 0


class TestHybrid:
    def test_tight_bound_escalates_to_exact(self, grid_jobs, exact_results):
        """An impossible error budget sends every cell to the engine."""
        runtime = ExperimentRuntime(fidelity="hybrid", max_rel_err=1e-9)
        results = runtime.run_many(grid_jobs)
        assert runtime.estimated == 0
        assert runtime.executed == len(grid_jobs)
        for job, result in zip(grid_jobs, results):
            assert result.raw == exact_results[job.key].raw

    def test_hybrid_estimates_under_loose_bound(self, grid_jobs):
        runtime = ExperimentRuntime(fidelity="hybrid", max_rel_err=1.0)
        results = runtime.run_many(grid_jobs)
        assert runtime.estimated > 0
        assert runtime.executed + runtime.estimated == len(grid_jobs)
        for result in results:
            if is_analytic(result):
                assert reported_bound(result) <= 1.0
