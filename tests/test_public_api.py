"""Public API surface tests: imports, __all__, and top-level workflow."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_every_export_exists(self, name):
        assert hasattr(repro, name), name

    def test_mechanism_registry_exported(self):
        assert "boomerang" in repro.MECHANISMS
        assert "none" in repro.MECHANISMS
        assert set(repro.FIGURE_MECHANISMS) <= set(repro.MECHANISMS)

    def test_profiles_exported(self):
        assert len(repro.ALL_PROFILES) == 6


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.workloads",
            "repro.memory",
            "repro.branch",
            "repro.branch.predictors",
            "repro.frontend",
            "repro.prefetch",
            "repro.core",
            "repro.analysis",
            "repro.experiments",
            "repro.runtime",
        ],
    )
    def test_imports_cleanly(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        ["repro.workloads", "repro.memory", "repro.branch", "repro.prefetch",
         "repro.core", "repro.analysis", "repro.runtime"],
    )
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestReadmeWorkflow:
    """The exact three-line workflow from README.md must work."""

    def test_readme_snippet(self):
        from repro import Simulator, load_workload, make_config

        workload = load_workload("apache", scale=0.05)
        baseline = Simulator(workload, make_config("none")).run()
        boomerang = Simulator(workload, make_config("boomerang")).run()
        assert boomerang.speedup_over(baseline) > 0
        assert boomerang.btb_squashes_per_kilo == 0.0
        assert 0 <= boomerang.coverage_over(baseline) <= 1


class TestErrorsHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro.errors import (
            ConfigError,
            ReproError,
            SimulationError,
            UnknownMechanismError,
            WorkloadError,
        )

        for exc in (ConfigError, WorkloadError, SimulationError, UnknownMechanismError):
            assert issubclass(exc, ReproError)

    def test_unknown_mechanism_message(self):
        from repro.errors import UnknownMechanismError

        err = UnknownMechanismError("magic", ("a", "b"))
        assert "magic" in str(err)
        assert "a, b" in str(err)
