"""Unit tests for repro.config parameter dataclasses."""

import pytest

from repro.config import (
    BLOCK_BYTES,
    INSTR_BYTES,
    INSTRS_PER_BLOCK,
    BTBParams,
    CacheParams,
    CoreParams,
    MemoryParams,
    NoCParams,
    PredictorParams,
    PrefetchParams,
    SimConfig,
)
from repro.errors import ConfigError


class TestConstants:
    def test_block_holds_sixteen_instructions(self):
        assert BLOCK_BYTES == 64
        assert INSTR_BYTES == 4
        assert INSTRS_PER_BLOCK == 16


class TestCacheParams:
    def test_l1i_default_geometry(self):
        p = CacheParams(32 * 1024, 2)
        assert p.n_sets == 256
        assert p.n_blocks == 512

    def test_llc_geometry(self):
        p = CacheParams(4 * 1024 * 1024, 16, hit_latency=5)
        assert p.n_sets == 4096
        assert p.hit_latency == 5

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigError):
            CacheParams(1000, 2)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheParams(3 * 64 * 2, 2)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheParams(0, 2)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            CacheParams(1024, 0)


class TestNoCParams:
    def test_mesh_defaults_match_table1(self):
        p = NoCParams()
        assert p.kind == "mesh"
        assert p.mesh_dim == 4
        assert p.cycles_per_hop == 3

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            NoCParams(kind="torus")

    def test_crossbar_accepted(self):
        assert NoCParams(kind="crossbar").crossbar_round_trip == 18


class TestBTBParams:
    def test_default_is_2k(self):
        p = BTBParams()
        assert p.entries == 2048
        assert p.n_sets == 512

    def test_rejects_non_divisible_assoc(self):
        with pytest.raises(ConfigError):
            BTBParams(entries=100, assoc=3)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            BTBParams(entries=96, assoc=4)


class TestCoreParams:
    def test_three_wide_defaults(self):
        p = CoreParams()
        assert p.fetch_width == 3
        assert p.commit_width == 3
        assert p.rob_size == 128

    def test_rejects_tiny_rob(self):
        with pytest.raises(ConfigError):
            CoreParams(rob_size=1, commit_width=3)

    def test_rejects_zero_ftq(self):
        with pytest.raises(ConfigError):
            CoreParams(ftq_depth=0)


class TestMemoryParams:
    def test_mesh_round_trip_is_paper_thirty(self):
        assert MemoryParams().llc_round_trip == 30

    def test_crossbar_round_trip(self):
        p = MemoryParams(noc=NoCParams(kind="crossbar"))
        assert p.llc_round_trip == 18 + p.llc.hit_latency

    def test_override_wins(self):
        p = MemoryParams(llc_round_trip_override=55)
        assert p.llc_round_trip == 55

    def test_rejects_bad_override(self):
        with pytest.raises(ConfigError):
            MemoryParams(llc_round_trip_override=0)

    def test_memory_latency_default_45ns_at_2ghz(self):
        assert MemoryParams().memory_latency == 90


class TestPredictorParams:
    def test_default_is_tage(self):
        assert PredictorParams().kind == "tage"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            PredictorParams(kind="perceptron")

    def test_rejects_non_increasing_histories(self):
        with pytest.raises(ConfigError):
            PredictorParams(tage_history_lengths=(5, 5, 44))

    def test_rejects_non_pow2_tables(self):
        with pytest.raises(ConfigError):
            PredictorParams(tage_table_entries=1000)


class TestPrefetchParams:
    def test_paper_defaults(self):
        p = PrefetchParams()
        assert p.next_line_degree == 2
        assert p.throttle_blocks == 2
        assert p.btb_prefetch_buffer_entries == 32
        assert p.confluence_btb_entries == 16384

    def test_rejects_zero_degree(self):
        with pytest.raises(ConfigError):
            PrefetchParams(next_line_degree=0)

    def test_negative_throttle_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchParams(throttle_blocks=-1)


class TestSimConfig:
    def test_with_llc_latency_is_pure(self):
        base = SimConfig()
        modified = base.with_llc_latency(42)
        assert modified.memory.llc_round_trip == 42
        assert base.memory.llc_round_trip_override is None

    def test_with_btb_entries_resizes(self):
        cfg = SimConfig().with_btb_entries(8192)
        assert cfg.btb.entries == 8192

    def test_with_btb_entries_fixes_assoc_when_needed(self):
        cfg = SimConfig().with_btb_entries(1024)
        assert cfg.btb.entries == 1024

    def test_with_predictor(self):
        cfg = SimConfig().with_predictor("bimodal")
        assert cfg.predictor.kind == "bimodal"

    def test_perfect_flags_default_off(self):
        cfg = SimConfig()
        assert not cfg.perfect_l1i
        assert not cfg.perfect_btb
