"""Unit tests for repro.workloads.isa address math and branch kinds."""

import pytest

from repro.workloads.isa import (
    CALL_KINDS,
    INDIRECT_KINDS,
    RETURN_KINDS,
    UNCONDITIONAL_KINDS,
    BranchKind,
    EntryKind,
    block_base,
    block_distance,
    block_of,
    blocks_spanned,
    instr_count,
)


class TestBranchKindSets:
    def test_cond_is_the_only_conditional(self):
        assert BranchKind.COND not in UNCONDITIONAL_KINDS
        others = set(BranchKind) - {BranchKind.COND}
        assert others == set(UNCONDITIONAL_KINDS)

    def test_calls_push_ras(self):
        assert CALL_KINDS == {BranchKind.CALL, BranchKind.IND_CALL}

    def test_returns_pop_ras(self):
        assert RETURN_KINDS == {BranchKind.RET}

    def test_indirect_kinds(self):
        assert INDIRECT_KINDS == {BranchKind.IND_JUMP, BranchKind.IND_CALL}

    def test_entry_kinds_are_three(self):
        assert len(EntryKind) == 3


class TestBlockMath:
    def test_block_of_zero(self):
        assert block_of(0) == 0

    def test_block_of_boundary(self):
        assert block_of(63) == 0
        assert block_of(64) == 1

    def test_block_base(self):
        assert block_base(0x1234) == 0x1234 & ~63
        assert block_base(128) == 128

    def test_blocks_spanned_single(self):
        spanned = list(blocks_spanned(0, 16))
        assert spanned == [0]

    def test_blocks_spanned_crossing(self):
        spanned = list(blocks_spanned(60, 2))  # bytes 60..67
        assert spanned == [0, 1]

    def test_blocks_spanned_empty(self):
        assert list(blocks_spanned(100, 0)) == []

    def test_blocks_spanned_large_block(self):
        # 24 instructions starting mid-block span at most 3 cache blocks.
        assert 2 <= len(list(blocks_spanned(40, 24))) <= 3

    def test_block_distance_symmetric(self):
        assert block_distance(0, 256) == block_distance(256, 0) == 4

    def test_block_distance_same_block(self):
        assert block_distance(4, 60) == 0

    def test_instr_count_inclusive(self):
        assert instr_count(0, 0) == 1
        assert instr_count(0, 12) == 4

    def test_instr_count_rejects_reversed(self):
        with pytest.raises(ValueError):
            instr_count(8, 0)
