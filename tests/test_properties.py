"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.btb import BasicBlockBTB, BTBEntry, BTBPrefetchBuffer
from repro.branch.ras import ReturnAddressStack
from repro.config import BTBParams, CacheParams
from repro.memory.cache import SetAssocCache
from repro.memory.prefetch_buffer import PrefetchBuffer
from repro.prefetch.stream import TemporalStreamPrefetcher
from repro.stats import StatGroup, geometric_mean
from repro.workloads.isa import block_of, blocks_spanned

blocks = st.integers(min_value=0, max_value=1 << 20)
pcs = st.builds(lambda x: x * 4, st.integers(min_value=0, max_value=1 << 20))


class TestCacheProperties:
    @given(st.lists(blocks, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, sequence):
        cache = SetAssocCache(CacheParams(8 * 64 * 2, 2))
        for b in sequence:
            cache.insert(b)
        assert cache.occupancy() <= cache.params.n_blocks

    @given(st.lists(blocks, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_inserted_block_is_resident_until_evicted(self, sequence):
        cache = SetAssocCache(CacheParams(8 * 64 * 2, 2))
        for b in sequence:
            victim = cache.insert(b)
            assert cache.contains(b)
            if victim is not None:
                assert not cache.contains(victim)

    @given(st.lists(blocks, max_size=100), blocks)
    @settings(max_examples=50, deadline=None)
    def test_lookup_after_insert_hits_most_recent(self, sequence, probe):
        cache = SetAssocCache(CacheParams(8 * 64 * 2, 2))
        for b in sequence:
            cache.insert(b)
        cache.insert(probe)
        assert cache.lookup(probe)

    @given(st.lists(blocks, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, sequence):
        cache = SetAssocCache(CacheParams(4 * 64 * 2, 2))
        for b in sequence:
            cache.lookup(b)
            cache.insert(b)
        assert cache.hits + cache.misses == len(sequence)


class TestPrefetchBufferProperties:
    @given(st.lists(blocks, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_fifo_capacity_bound(self, sequence):
        pb = PrefetchBuffer(16)
        for b in sequence:
            pb.insert(b)
        assert len(pb) <= 16

    @given(st.lists(blocks, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_promote_then_absent(self, sequence):
        pb = PrefetchBuffer(64)
        for b in sequence:
            pb.insert(b)
        target = sequence[0]
        if target in pb:
            assert pb.promote(target)
        assert target not in pb


class TestBTBProperties:
    @given(st.lists(pcs, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bound(self, sequence):
        btb = BasicBlockBTB(BTBParams(entries=32, assoc=4))
        for pc in sequence:
            btb.insert(pc, BTBEntry(4, 0, pc + 64))
        assert btb.occupancy() <= 32

    @given(st.lists(pcs, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_last_insert_always_hits(self, sequence):
        btb = BasicBlockBTB(BTBParams(entries=32, assoc=4))
        for pc in sequence:
            btb.insert(pc, BTBEntry(4, 0, 0))
        assert btb.lookup(sequence[-1]) is not None

    @given(st.lists(pcs, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_prefetch_buffer_take_is_destructive(self, sequence):
        buf = BTBPrefetchBuffer(8)
        for pc in sequence:
            buf.insert(pc, BTBEntry(2, 1, 0))
        for pc in set(sequence):
            entry = buf.take(pc)
            if entry is not None:
                assert buf.take(pc) is None


class TestRASProperties:
    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_mirrors_reference_stack_within_capacity(self, ops):
        ras = ReturnAddressStack(16)
        reference: list[int] = []
        for i, op in enumerate(ops):
            if op == "push":
                ras.push(i)
                reference.append(i)
                if len(reference) > 16:
                    reference.pop(0)
            else:
                got = ras.pop()
                expected = reference.pop() if reference else None
                assert got == expected

    @given(st.lists(st.integers(0, 1 << 30), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_snapshot_restore_roundtrip(self, pushes):
        ras = ReturnAddressStack(64)
        for value in pushes:
            ras.push(value)
        snap = ras.snapshot()
        ras.push(999)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.snapshot() == snap


class TestIsaProperties:
    @given(pcs, st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_blocks_spanned_contiguous_and_correct(self, start, n):
        spanned = list(blocks_spanned(start, n))
        assert spanned[0] == block_of(start)
        assert spanned[-1] == block_of(start + (n - 1) * 4)
        assert spanned == list(range(spanned[0], spanned[-1] + 1))

    @given(pcs)
    @settings(max_examples=100, deadline=None)
    def test_block_of_is_monotone(self, pc):
        assert block_of(pc) <= block_of(pc + 4)


class TestStreamProperties:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_never_crashes_and_bounds_memory(self, sequence):
        pf = TemporalStreamPrefetcher(history_entries=32, index_entries=8, lookahead=4)
        for i, b in enumerate(sequence):
            pf.on_retired_block(b, i)
            while pf.next_prefetch(i) is not None:
                pass
        assert len(pf._history) <= 64
        assert len(pf._index) <= 8

    @given(st.lists(st.integers(0, 10), min_size=4, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_history_has_no_consecutive_duplicates(self, sequence):
        pf = TemporalStreamPrefetcher(history_entries=64, index_entries=16)
        for i, b in enumerate(sequence):
            pf.on_retired_block(b, i)
        for a, b in zip(pf._history, pf._history[1:]):
            assert a != b


class TestStatsProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.integers(-1000, 1000), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_addition(self, values):
        a = StatGroup(values=values)
        a.merge(values)
        for key, value in values.items():
            assert a[key] == 2 * value

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_gmean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
