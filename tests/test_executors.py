"""Executor backends: resolution, equivalence, and broker fault paths."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.mechanisms import MECHANISMS, make_config
from repro.errors import BrokerError, ConfigError
from repro.runtime import (
    BACKEND_NAMES,
    ExperimentRuntime,
    ProcessPoolBackend,
    SerialBackend,
    SimJob,
    canonicalize,
    make_backend,
    resolve_backend_name,
    run_worker,
)
from repro.runtime.broker import (
    BrokerBackend,
    BrokerQueue,
    config_from_canonical,
    job_from_spec,
    job_spec,
)

from repro.workloads.workload import reset_trace_store

#: Tiny but real workload for executor tests.
WL = "streaming"
SCALE = 0.05


@pytest.fixture(autouse=True)
def _restore_trace_store():
    """run_worker pins the process-wide trace store; undo it per test."""
    yield
    reset_trace_store()


def _jobs(*configs, workload=WL, scale=SCALE):
    return [SimJob(workload, cfg, scale) for cfg in configs]


def _backdate(path, seconds: float) -> None:
    """Age a file's mtime so its lease reads as expired."""
    past = time.time() - seconds
    os.utime(path, (past, past))


# ---------------------------------------------------------------------------
# Backend name resolution
# ---------------------------------------------------------------------------


class TestBackendResolution:
    def test_none_means_auto(self):
        assert resolve_backend_name(None) == "auto"

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_every_registered_name_resolves(self, name):
        assert resolve_backend_name(name) == name

    def test_stale_name_lists_valid_backends(self):
        with pytest.raises(ConfigError) as err:
            resolve_backend_name("slurm")
        message = str(err.value)
        for name in BACKEND_NAMES:
            assert name in message
        assert "REPRO_BACKEND" in message

    def test_auto_picks_pool_iff_parallel(self):
        assert isinstance(make_backend("auto", jobs=1, cache_dir=None), SerialBackend)
        assert isinstance(
            make_backend("auto", jobs=4, cache_dir=None), ProcessPoolBackend
        )

    def test_broker_requires_cache_dir(self):
        with pytest.raises(ConfigError) as err:
            make_backend("broker", jobs=1, cache_dir=None)
        assert "cache" in str(err.value).lower()

    def test_broker_resolves_with_cache_dir(self, tmp_path):
        backend = make_backend("broker", jobs=1, cache_dir=tmp_path)
        assert backend.name == "broker"

    def test_broker_without_cache_dir_fails_at_configuration_time(self, monkeypatch):
        """Selecting the broker with no cache dir must error up front, not
        minutes later at the first cache-miss batch."""
        from repro.runtime import resolve_options

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(ConfigError, match="cache director"):
            resolve_options(backend="broker")


# ---------------------------------------------------------------------------
# Job spec round-trip (what travels through the queue files)
# ---------------------------------------------------------------------------


class TestJobSpecRoundTrip:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_config_round_trips_for_every_mechanism(self, mechanism):
        cfg = make_config(mechanism)
        assert config_from_canonical(canonicalize(cfg)) == cfg

    def test_spec_rebuilds_equal_job(self):
        job = SimJob(WL, make_config("boomerang").with_llc_latency(42), SCALE)
        rebuilt = job_from_spec(job_spec(job))
        assert rebuilt == job
        assert rebuilt.key == job.key

    def test_tampered_config_fails_digest_check(self):
        job = SimJob(WL, make_config("fdip"), SCALE)
        spec = job_spec(job)
        spec["config"]["core"]["ftq_depth"] = 7  # not what the digest covers
        with pytest.raises(BrokerError) as err:
            job_from_spec(spec)
        assert "digest mismatch" in str(err.value)


# ---------------------------------------------------------------------------
# Bit-identical results across backends (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    def test_serial_pool_broker_bit_identical_all_mechanisms(self, tmp_path):
        configs = [make_config(m) for m in MECHANISMS]
        jobs = _jobs(*configs)
        serial = ExperimentRuntime(backend="serial").run_many(jobs)
        pool = ExperimentRuntime(jobs=2, backend="pool").run_many(jobs)
        broker = ExperimentRuntime(
            backend="broker", cache_dir=tmp_path / "broker"
        ).run_many(jobs)
        assert len(serial) == len(pool) == len(broker) == len(MECHANISMS)
        for s, p, b in zip(serial, pool, broker):
            assert s.mechanism == p.mechanism == b.mechanism
            assert s.raw == p.raw, f"pool diverged on {s.mechanism}"
            assert s.raw == b.raw, f"broker diverged on {s.mechanism}"

    def test_broker_telemetry_folded_into_runtime(self, tmp_path):
        rt = ExperimentRuntime(backend="broker", cache_dir=tmp_path)
        rt.run_many(_jobs(make_config("none"), make_config("fdip")))
        telemetry = rt.backend_telemetry
        assert telemetry["backend"] == "broker"
        assert telemetry["broker_jobs"] == 2
        assert sum(telemetry["broker_workers"].values()) == 2
        assert telemetry["broker_retries"] == 0


# ---------------------------------------------------------------------------
# Broker queue semantics
# ---------------------------------------------------------------------------


class TestDuplicateClaimImpossible:
    def test_concurrent_stealers_claim_each_job_exactly_once(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        jobs = _jobs(*(make_config("none").with_llc_latency(lat) for lat in range(1, 13)))
        ids = [queue.enqueue(job) for job in jobs]
        assert len(set(ids)) == len(jobs)

        claims: list[str] = []
        lock = threading.Lock()

        def stealer():
            while True:
                claimed = queue.claim()
                if claimed is None:
                    return
                with lock:
                    claims.append(claimed.job_id)

        threads = [threading.Thread(target=stealer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claims) == sorted(ids)  # every job exactly once
        assert queue.counts()["pending"] == 0
        assert queue.counts()["claimed"] == len(jobs)

    def test_enqueue_is_idempotent_while_visible(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        job = _jobs(make_config("none"))[0]
        queue.enqueue(job)
        queue.enqueue(job)
        assert queue.counts()["pending"] == 1
        queue.claim()
        queue.enqueue(job)  # claimed jobs must not be double-queued either
        assert queue.counts()["pending"] == 0


class TestClaimLeaseClock:
    def test_long_pending_wait_does_not_arrive_expired(self, tmp_path):
        """The rename preserves mtime, so the lease clock must be reset at
        claim time — otherwise a job that waited longer than the lease is
        recoverable out from under its (live) claimer."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        queue.enqueue(_jobs(make_config("none"))[0])
        pending_file = next(queue.pending.glob("*.json"))
        _backdate(pending_file, seconds=3600)  # sat in the queue for an hour
        claimed = queue.claim()
        assert claimed is not None
        assert queue.recover_expired() == 0  # fresh lease, not recoverable
        assert queue.counts()["claimed"] == 1


class TestStaleSpecs:
    def test_stale_engine_schema_pending_spec_is_replaced_on_enqueue(self, tmp_path):
        import json

        queue = BrokerQueue(tmp_path)
        job = _jobs(make_config("none"))[0]
        job_id = queue.enqueue(job)
        path = next(queue.pending.glob(f"{job_id}__*a0.json"))
        stale = json.loads(path.read_text())
        stale["engine_schema"] = "engine-v0-000000000000"
        path.write_text(json.dumps(stale))
        queue.enqueue(job)  # must notice the dead spec and write a fresh one
        spec = json.loads(path.read_text())
        from repro.runtime import SCHEMA_TAG

        assert spec["engine_schema"] == SCHEMA_TAG
        assert queue.counts()["pending"] == 1

    def test_preexisting_done_records_do_not_count_as_executed(self, tmp_path):
        jobs = _jobs(make_config("none"), make_config("fdip"))
        first = ExperimentRuntime(backend="broker", cache_dir=tmp_path)
        first.run_many(jobs)
        assert first.executed == 2
        # Wipe the result cache but keep the queue's done records — the
        # state an interrupted coordinator leaves behind.
        from repro.runtime import SCHEMA_TAG
        import shutil

        shutil.rmtree(tmp_path / SCHEMA_TAG)
        rerun = ExperimentRuntime(backend="broker", cache_dir=tmp_path)
        results = rerun.run_many(jobs)
        assert len(results) == 2 and all(r.raw["cycles"] > 0 for r in results)
        assert rerun.executed == 0  # answered from done records, not re-run
        assert rerun.backend_telemetry["broker_reused"] == 2


class TestCrashRecovery:
    def test_expired_lease_requeues_with_bumped_attempt(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        job_id = queue.enqueue(job)
        claimed = queue.claim()
        assert claimed is not None and claimed.attempts == 0
        # Simulate a SIGKILLed worker: no completion, lease left to age out.
        _backdate(claimed.path, seconds=60)
        assert queue.recover_expired() == 1
        from repro.runtime.broker import _parse_job_name

        names = os.listdir(queue.pending)
        assert [_parse_job_name(n)[0::2] for n in names] == [(job_id, 1)]
        reclaimed = queue.claim()
        assert reclaimed is not None and reclaimed.attempts == 1

    def test_live_lease_is_not_recovered(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        queue.enqueue(_jobs(make_config("none"))[0])
        claimed = queue.claim()
        queue.heartbeat(claimed)
        assert queue.recover_expired() == 0
        assert queue.counts()["claimed"] == 1

    def test_completed_but_unreleased_claim_is_cleaned_not_requeued(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        queue.enqueue(job)
        claimed = queue.claim()
        from repro.runtime import execute_job

        result = execute_job(job)
        record = queue.complete(claimed, result, "w-test", run_seconds=0.1)
        assert record["attempts"] == 1
        # Re-create the "crashed after done, before unlink" window.
        claimed.path.write_text((queue.done / f"{claimed.job_id}.json").read_text())
        _backdate(claimed.path, seconds=60)
        queue.recover_expired()
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1, "failed": 0}

    def test_retry_cap_moves_job_to_failed(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30, max_attempts=2)
        job = _jobs(make_config("none"))[0]
        job_id = queue.enqueue(job)
        for expected_attempts in (0, 1):
            claimed = queue.claim()
            assert claimed.attempts == expected_attempts
            _backdate(claimed.path, seconds=60)
            queue.recover_expired()
        failure = queue.read_failed(job_id)
        assert failure is not None
        assert failure["attempts"] == 2
        assert "lease expired" in failure["error"]
        assert queue.counts()["pending"] == 0


class TestRetryCapSurfacesCleanly:
    def test_poison_job_raises_broker_error_with_context(self, tmp_path):
        # A workload no worker can load: every execution attempt fails,
        # the retry cap trips, and the coordinator reports one clean error.
        poison = SimJob("no-such-workload", make_config("none"), SCALE)
        backend = BrokerBackend(tmp_path, max_attempts=2, timeout=30)
        with pytest.raises(BrokerError) as err:
            backend.run_batch([poison])
        message = str(err.value)
        assert "no-such-workload" in message
        assert "2 attempt(s)" in message
        assert queue_failed_count(tmp_path) == 1

    def test_failed_marker_does_not_poison_resubmission(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        job = _jobs(make_config("none"))[0]
        job_id = queue.enqueue(job)
        claimed = queue.claim()
        assert queue.fail(claimed, "boom") is True  # requeued (attempt 1 of 3)
        claimed = queue.claim()
        assert queue.fail(claimed, "boom") is True  # requeued (attempt 2 of 3)
        claimed = queue.claim()
        assert queue.fail(claimed, "boom") is False  # terminal
        assert queue.read_failed(job_id) is not None
        queue.enqueue(job)  # a fresh submission starts over
        assert queue.read_failed(job_id) is None
        assert queue.counts()["pending"] == 1

    def test_fail_after_lost_lease_does_not_double_requeue(self, tmp_path):
        """A worker whose claim was lease-recovered while it was busy must
        not requeue the job a second time — the recovery already did."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        queue.enqueue(_jobs(make_config("none"))[0])
        claimed = queue.claim()
        _backdate(claimed.path, seconds=60)
        assert queue.recover_expired() == 1  # job is pending again (a1)
        assert queue.fail(claimed, "boom") is True  # no-op: claim is gone
        assert queue.counts()["pending"] == 1  # exactly one spec, not two
        assert queue.read_failed(claimed.job_id) is None

    def test_backend_summary_renders_flat_worker_counts(self, tmp_path):
        from repro.runtime import backend_summary

        rt = ExperimentRuntime(backend="broker", cache_dir=tmp_path)
        rt.backend_telemetry = {
            "backend": "broker",
            "broker_jobs": 3,
            "broker_workers": {"w2": 1, "w1": 2},
        }
        summary = backend_summary(rt)
        assert summary == "backend=broker, broker_jobs=3, broker_workers=w1:2/w2:1"

    def test_coordinator_timeout_without_workers(self, tmp_path):
        backend = BrokerBackend(tmp_path, steal=False, timeout=0.5, poll_seconds=0.05)
        with pytest.raises(BrokerError) as err:
            backend.run_batch(_jobs(make_config("none")))
        assert "timed out" in str(err.value)


def queue_failed_count(cache_dir) -> int:
    return BrokerQueue(cache_dir).counts()["failed"]


# ---------------------------------------------------------------------------
# The stand-alone worker loop
# ---------------------------------------------------------------------------


class TestRunWorker:
    def test_drain_on_empty_queue_exits_quickly(self, tmp_path):
        started = time.time()
        completed = run_worker(tmp_path, drain=True, max_idle=0.2, poll_seconds=0.05)
        assert completed == 0
        assert time.time() - started < 10

    def test_worker_drains_queue_and_records_telemetry(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        jobs = _jobs(make_config("none"), make_config("fdip"))
        ids = [queue.enqueue(job) for job in jobs]
        completed = run_worker(
            tmp_path, worker_id="w-test", drain=True, max_idle=0.2, poll_seconds=0.05
        )
        assert completed == 2
        for job_id in ids:
            record = queue.read_done(job_id)
            assert record is not None
            assert record["worker"] == "w-test"
            assert record["attempts"] == 1
            assert record["run_s"] >= 0
        # The worker also warmed the shared result cache: a fresh runtime
        # against the same dir resolves both jobs without simulating.
        warm = ExperimentRuntime(cache_dir=tmp_path)
        warm.run_many(jobs)
        assert warm.executed == 0


# ---------------------------------------------------------------------------
# Requeue-aware wait telemetry (retry-inflated queue_wait_s regression)
# ---------------------------------------------------------------------------


class TestQueueWaitTelemetry:
    def _age_enqueue(self, queue: BrokerQueue, seconds: float) -> None:
        """Make the one pending spec look ``seconds`` old (spec + file)."""
        import json

        path = next(queue.pending.glob("*.json"))
        spec = json.loads(path.read_text())
        spec["enqueued_at"] -= seconds
        path.write_text(json.dumps(spec))
        _backdate(path, seconds=seconds)

    def test_first_attempt_wait_measures_from_enqueue(self, tmp_path):
        from repro.runtime import execute_job

        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        queue.enqueue(job)
        self._age_enqueue(queue, 100.0)
        claimed = queue.claim("w1")
        record = queue.complete(claimed, execute_job(job), "w1", run_seconds=0.1)
        assert record["queue_wait_s"] > 90.0  # it genuinely waited
        assert record["age_s"] >= record["queue_wait_s"]

    def test_forced_retry_does_not_inflate_queue_wait(self, tmp_path):
        """Before the fix a retried job's queue_wait_s was measured from
        the *original* enqueued_at, silently absorbing the failed
        attempt's run time; it must measure from the requeue instead,
        with age_s keeping the end-to-end view."""
        from repro.runtime import execute_job

        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        queue.enqueue(job)
        self._age_enqueue(queue, 100.0)
        claimed = queue.claim("w1")
        assert claimed is not None
        assert queue.fail(claimed, "injected failure") is True  # requeue
        retried = queue.claim("w1")
        assert retried is not None and retried.attempts == 1
        assert retried.spec["requeued_at"] > retried.spec["enqueued_at"]
        record = queue.complete(retried, execute_job(job), "w1", run_seconds=0.1)
        assert record["attempts"] == 2
        assert record["queue_wait_s"] < 10.0  # waits from the requeue only
        assert record["age_s"] > 90.0  # end-to-end age keeps the history

    def test_lease_recovery_requeue_resets_the_wait_clock(self, tmp_path):
        """The crash-recovery path requeues by pure rename (no spec
        rewrite possible); the recovery touch must still reset the
        claimer's runnable_at so queue_wait_s excludes the dead worker's
        lease window."""
        from repro.runtime import execute_job

        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        queue.enqueue(job)
        self._age_enqueue(queue, 100.0)
        claimed = queue.claim("w-dead")
        _backdate(claimed.path, seconds=100)  # the claimer crashed
        assert queue.recover_expired() == 1
        rescued = queue.claim("w-rescue")
        assert rescued is not None and rescued.attempts == 1
        record = queue.complete(rescued, execute_job(job), "w-rescue", 0.1)
        assert record["queue_wait_s"] < 10.0
        assert record["age_s"] > 90.0


# ---------------------------------------------------------------------------
# Stale-schema claimed specs (resubmission-poisoning regression)
# ---------------------------------------------------------------------------


class TestStaleClaimedSpecs:
    def _plant_stale_claim(self, queue: BrokerQueue, job, age: float):
        """A claimed spec written by an old-schema worker that crashed."""
        import json

        queue.enqueue(job)
        claimed = queue.claim("w-old")
        spec = dict(claimed.spec)
        spec["engine_schema"] = "engine-v0-000000000000"
        claimed.path.write_text(json.dumps(spec))
        _backdate(claimed.path, seconds=age)
        return claimed

    def test_expired_stale_claim_is_purged_on_enqueue(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        self._plant_stale_claim(queue, job, age=60)
        queue.enqueue(job)  # must purge the dead claim and write fresh
        counts = queue.counts()
        assert counts == {"pending": 1, "claimed": 0, "done": 0, "failed": 0}

    def test_live_stale_claim_is_not_robbed(self, tmp_path):
        """Only an *expired* stale-schema claim may be purged — a live
        old-schema worker still owns its lease (it will terminal-fail the
        job itself, but robbing a live claim is never safe)."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        self._plant_stale_claim(queue, job, age=0)
        queue.enqueue(job)
        counts = queue.counts()
        assert counts == {"pending": 0, "claimed": 1, "done": 0, "failed": 0}

    def test_recover_expired_deletes_stale_claim_instead_of_requeueing(
        self, tmp_path
    ):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        self._plant_stale_claim(queue, job, age=60)
        assert queue.recover_expired() == 1
        # Deleted, not requeued: its claimer could only terminal-fail it.
        counts = queue.counts()
        assert counts == {"pending": 0, "claimed": 0, "done": 0, "failed": 0}

    def test_fresh_batch_completes_over_a_dead_old_schema_claim(self, tmp_path):
        """Before the fix: the stale claim blocked the fresh enqueue, got
        lease-recovered, terminal-failed on the schema check, and the
        coordinator raised BrokerError for a job it could simply have
        resubmitted. The fresh batch must now just complete."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _jobs(make_config("none"))[0]
        self._plant_stale_claim(queue, job, age=60)
        backend = BrokerBackend(tmp_path, lease_seconds=30, timeout=60)
        results = backend.run_batch([job])
        assert len(results) == 1 and results[0].raw["cycles"] > 0
        record = queue.read_done(queue.job_id(job))
        assert record is not None
        assert record["attempts"] == 1  # the dead claim's attempt is gone
        assert queue.counts()["failed"] == 0
