"""Tests for the branch substrate: BTBs, RAS, direction predictors."""

import pytest

from repro.config import BTBParams, PredictorParams
from repro.branch.btb import BasicBlockBTB, BTBEntry, BTBPrefetchBuffer, ConventionalBTB
from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    NeverTakenPredictor,
    OraclePredictor,
    TagePredictor,
    make_predictor,
)
from repro.branch.ras import ReturnAddressStack
from repro.errors import ConfigError
from repro.workloads.isa import BranchKind


def entry(n=4, kind=BranchKind.COND, target=0x2000) -> BTBEntry:
    return BTBEntry(n_instrs=n, kind=int(kind), target=target)


class TestBasicBlockBTB:
    def test_miss_is_none(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        assert btb.lookup(0x1000) is None

    def test_insert_then_hit(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        btb.insert(0x1000, entry())
        got = btb.lookup(0x1000)
        assert got is not None
        assert got.target == 0x2000

    def test_lru_within_set(self):
        btb = BasicBlockBTB(BTBParams(entries=2, assoc=2))
        btb.insert(0x0, entry())
        btb.insert(0x4, entry())
        btb.lookup(0x0)
        victim = btb.insert(0x8, entry())
        assert victim == 0x4

    def test_update_target(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        btb.insert(0x1000, entry(target=0x2000))
        assert btb.update_target(0x1000, 0x3000)
        assert btb.lookup(0x1000).target == 0x3000

    def test_update_target_missing(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        assert not btb.update_target(0x1000, 0x3000)

    def test_hit_rate_counters(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        btb.lookup(0x100)
        btb.insert(0x100, entry())
        btb.lookup(0x100)
        assert btb.lookups == 2
        assert btb.hits == 1

    def test_occupancy_bounded(self):
        btb = BasicBlockBTB(BTBParams(entries=16, assoc=4))
        for i in range(100):
            btb.insert(i * 4, entry())
        assert btb.occupancy() <= 16

    def test_reinsert_does_not_evict(self):
        btb = BasicBlockBTB(BTBParams(entries=2, assoc=2))
        btb.insert(0x0, entry())
        btb.insert(0x4, entry())
        assert btb.insert(0x0, entry(target=0x44)) is None
        assert btb.lookup(0x0).target == 0x44

    def test_contains_no_side_effects(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        btb.insert(0x40, entry())
        before = btb.lookups
        assert btb.contains(0x40)
        assert btb.lookups == before

    def test_reset(self):
        btb = BasicBlockBTB(BTBParams(entries=64, assoc=4))
        btb.insert(0x40, entry())
        btb.reset()
        assert btb.occupancy() == 0 and btb.inserts == 0


class TestBTBPrefetchBuffer:
    def test_take_removes(self):
        buf = BTBPrefetchBuffer(4)
        buf.insert(0x10, entry())
        assert buf.take(0x10) is not None
        assert buf.take(0x10) is None

    def test_fifo_eviction(self):
        buf = BTBPrefetchBuffer(2)
        buf.insert(0x10, entry())
        buf.insert(0x20, entry())
        buf.insert(0x30, entry())
        assert 0x10 not in buf
        assert buf.evictions == 1

    def test_hit_counter(self):
        buf = BTBPrefetchBuffer(2)
        buf.insert(0x10, entry())
        buf.take(0x10)
        buf.take(0x99)
        assert buf.hits == 1

    def test_update_existing(self):
        buf = BTBPrefetchBuffer(2)
        buf.insert(0x10, entry(target=1))
        buf.insert(0x10, entry(target=2))
        assert len(buf) == 1
        assert buf.take(0x10).target == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BTBPrefetchBuffer(0)


class TestConventionalBTB:
    def test_taken_branch_learning(self):
        btb = ConventionalBTB(BTBParams(entries=64, assoc=4))
        btb.insert(0x104, int(BranchKind.JUMP), 0x2000)
        assert btb.lookup(0x104) == (int(BranchKind.JUMP), 0x2000)

    def test_miss_is_ambiguous_none(self):
        btb = ConventionalBTB(BTBParams(entries=64, assoc=4))
        assert btb.lookup(0x104) is None

    def test_rejects_cond_without_target(self):
        btb = ConventionalBTB(BTBParams(entries=64, assoc=4))
        with pytest.raises(ValueError):
            btb.insert(0x104, int(BranchKind.COND), 0)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(8)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None
        assert ras.overflows == 1

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 1

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(9)
        assert ras.peek() == 9
        assert len(ras) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestStaticPredictors:
    def test_never_taken(self):
        p = NeverTakenPredictor()
        assert p.predict(0x100) is False
        p.update(0x100, True)
        assert p.predict(0x100) is False
        assert p.storage_bits() == 0

    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(0x100) is True

    def test_oracle_follows_staged_outcome(self):
        p = OraclePredictor()
        p.stage(True)
        assert p.predict(0x1) is True
        p.stage(False)
        assert p.predict(0x1) is False


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor(entries=64)
        for _ in range(4):
            p.update(0x100, True)
        assert p.predict(0x100) is True

    def test_hysteresis(self):
        p = BimodalPredictor(entries=64)
        for _ in range(4):
            p.update(0x100, True)
        p.update(0x100, False)  # one blip should not flip a saturated counter
        assert p.predict(0x100) is True

    def test_storage_bits(self):
        assert BimodalPredictor(entries=4096).storage_bits() == 8192

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_reset(self):
        p = BimodalPredictor(entries=64)
        for _ in range(4):
            p.update(0x100, True)
        p.reset()
        assert p.predict(0x100) is False


class TestGshare:
    def test_learns_history_pattern(self):
        """Alternating outcomes are history-predictable for gshare."""
        p = GsharePredictor(entries=1024, history_bits=8)
        outcome = True
        for _ in range(200):
            p.update(0x100, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if p.predict(0x100) == outcome:
                correct += 1
            p.update(0x100, outcome)
            outcome = not outcome
        assert correct > 90

    def test_storage_bits(self):
        p = GsharePredictor(entries=4096, history_bits=12)
        assert p.storage_bits() == 2 * 4096 + 12


class TestMakePredictor:
    @pytest.mark.parametrize("kind", PredictorParams.KNOWN_KINDS)
    def test_all_kinds_instantiate(self, kind):
        p = make_predictor(PredictorParams(kind=kind))
        assert p.predict(0x40) in (True, False)

    def test_tage_budget_is_8kb(self):
        p = make_predictor(PredictorParams())
        assert p.storage_bits() / 8 / 1024 == pytest.approx(8, abs=1.0)
