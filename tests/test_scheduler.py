"""Broker scheduler: cost estimates, longest-first claim order, FIFO fallback."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.mechanisms import make_config
from repro.errors import BrokerError
from repro.runtime import SimJob, estimate_job_cost
from repro.runtime.broker import (
    BrokerQueue,
    broker_env_options,
    job_spec,
)
from repro.runtime import runner as runner_mod

WL = "streaming"
SCALE = 0.05


def _job(llc: int, workload: str = WL, scale: float = SCALE) -> SimJob:
    return SimJob(workload, make_config("none").with_llc_latency(llc), scale)


def _claim_all(queue: BrokerQueue) -> list[str]:
    order = []
    while (claimed := queue.claim()) is not None:
        order.append(claimed.job_id)
    return order


def _backdate(path, seconds: float) -> None:
    past = time.time() - seconds
    os.utime(path, (past, past))


# ---------------------------------------------------------------------------
# The cost estimate
# ---------------------------------------------------------------------------


class TestCostEstimate:
    def test_cost_scales_with_trace_length_and_latency(self):
        base = estimate_job_cost(_job(30))
        assert isinstance(base, int) and base > 0
        assert estimate_job_cost(_job(70)) > base  # more stall cycles
        assert estimate_job_cost(_job(30, scale=0.5)) > base  # longer trace

    def test_unknown_workload_has_no_estimate(self):
        assert estimate_job_cost(_job(30, workload="no-such-workload")) is None

    def test_cost_recorded_in_job_payload(self):
        job = _job(30)
        spec = job_spec(job)
        assert spec["cost"] == estimate_job_cost(job)

    def test_estimate_is_deterministic(self):
        job = _job(42)
        assert estimate_job_cost(job) == estimate_job_cost(job)


# ---------------------------------------------------------------------------
# Claim order (directly against the broker queue)
# ---------------------------------------------------------------------------


class TestLongestFirstClaimOrder:
    def test_claims_most_expensive_pending_job_first(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        jobs = {llc: _job(llc) for llc in (10, 70, 30, 50)}
        ids = {llc: queue.enqueue(job) for llc, job in jobs.items()}
        # Cost is trace length x LLC latency, so descending latency is
        # exactly descending cost here.
        assert _claim_all(queue) == [ids[70], ids[50], ids[30], ids[10]]

    def test_fifo_scheduler_ignores_costs(self, tmp_path):
        queue = BrokerQueue(tmp_path, scheduler="fifo")
        ids = [queue.enqueue(_job(llc)) for llc in (10, 70, 30, 50)]
        from repro.runtime.broker import _parse_job_name

        names = sorted(os.listdir(queue.pending))
        expected = [_parse_job_name(name)[0] for name in names]
        claimed = _claim_all(queue)
        assert claimed == expected
        assert sorted(claimed) == sorted(ids)

    def test_fifo_fallback_when_cost_estimates_absent(self, tmp_path, monkeypatch):
        """Jobs with no estimate (unknown profile, pre-scheduler queue
        files) must claim in deterministic name order."""
        monkeypatch.setattr(runner_mod, "estimate_job_cost", lambda job: None)
        queue = BrokerQueue(tmp_path)
        ids = [queue.enqueue(_job(llc)) for llc in (40, 20, 60)]
        # No weight token in any filename: the old naming scheme.
        for name in os.listdir(queue.pending):
            assert "__w" not in name
        assert _claim_all(queue) == sorted(ids)

    def test_costless_jobs_claim_after_every_costed_job(self, tmp_path, monkeypatch):
        queue = BrokerQueue(tmp_path)
        costless_ids = []

        def no_estimate(job):
            return None

        monkeypatch.setattr(runner_mod, "estimate_job_cost", no_estimate)
        costless_ids = [queue.enqueue(_job(llc)) for llc in (99, 5)]
        monkeypatch.undo()
        costed_ids = [queue.enqueue(_job(llc)) for llc in (10, 50)]
        order = _claim_all(queue)
        assert order[:2] == [costed_ids[1], costed_ids[0]]  # cost desc
        assert order[2:] == sorted(costless_ids)  # then FIFO fallback

    def test_lease_recovery_preserves_the_cost_token(self, tmp_path):
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        cheap, dear = _job(10), _job(70)
        queue.enqueue(dear)
        claimed = queue.claim()
        _backdate(claimed.path, seconds=60)
        assert queue.recover_expired() == 1
        queue.enqueue(cheap)
        # The recovered (dear) job must still outrank the cheap one.
        order = _claim_all(queue)
        assert order[0] == queue.job_id(dear)
        assert "__w" in os.listdir(queue.claimed)[0]

    def test_fail_requeue_preserves_the_cost_token(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        job = _job(70)
        queue.enqueue(job)
        claimed = queue.claim()
        assert queue.fail(claimed, "boom") is True
        (name,) = os.listdir(queue.pending)
        assert "__w" in name and name.endswith("__a1.json")
        reclaimed = queue.claim()
        assert reclaimed is not None and reclaimed.attempts == 1


# ---------------------------------------------------------------------------
# Scheduler selection and validation
# ---------------------------------------------------------------------------


class TestSchedulerSelection:
    def test_default_is_longest_first(self, tmp_path):
        assert BrokerQueue(tmp_path).scheduler == "longest"

    def test_invalid_scheduler_rejected_with_valid_names(self, tmp_path):
        with pytest.raises(BrokerError) as err:
            BrokerQueue(tmp_path, scheduler="shortest")
        message = str(err.value)
        assert "longest" in message and "fifo" in message
        assert "REPRO_BROKER_SCHEDULER" in message

    def test_env_selects_the_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_BROKER_SCHEDULER", "fifo")
        assert broker_env_options()["scheduler"] == "fifo"
        monkeypatch.delenv("REPRO_BROKER_SCHEDULER")
        assert broker_env_options()["scheduler"] == "longest"
