"""Tests for the experiment harness (quick scale)."""

import pytest

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.common import (
    SCALES,
    ExperimentResult,
    get_scale,
    run_cached,
)
from repro.core.mechanisms import make_config


class TestScales:
    def test_three_scales(self):
        assert set(SCALES) == {"quick", "default", "full"}

    def test_get_scale_by_name(self):
        assert get_scale("quick").name == "quick"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert get_scale().name == "quick"

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_quick_is_smaller(self):
        assert SCALES["quick"].workload_scale < SCALES["default"].workload_scale
        assert len(SCALES["quick"].latency_points) < len(SCALES["full"].latency_points)


class TestRunCached:
    def test_cache_hit_same_object(self):
        cfg = make_config("none")
        a = run_cached("streaming", cfg, workload_scale=0.05)
        b = run_cached("streaming", cfg, workload_scale=0.05)
        assert a is b

    def test_different_mechanism_different_run(self):
        a = run_cached("streaming", make_config("none"), workload_scale=0.05)
        b = run_cached("streaming", make_config("next_line"), workload_scale=0.05)
        assert a is not b


class TestExperimentResult:
    def test_table_renders(self):
        r = ExperimentResult("x", "Title", ["a", "b"], [[1, 2.0]], notes=["n"])
        text = r.to_table()
        assert "Title" in text and "note: n" in text

    def test_column_access(self):
        r = ExperimentResult("x", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert r.column("b") == [2, 4]

    def test_row_for(self):
        r = ExperimentResult("x", "t", ["a", "b"], [["w", 2]])
        assert r.row_for("w") == ["w", 2]
        with pytest.raises(KeyError):
            r.row_for("missing")


class TestRegistry:
    def test_all_paper_exhibits_present(self):
        expected = {f"figure{i}" for i in (1, 2, 3, 4, 5, 7, 8, 9, 10, 11)}
        expected |= {"storage", "ablations"}
        assert set(EXPERIMENTS) == expected

    def test_every_module_has_run_and_main(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.main)


class TestCheapExhibits:
    """Exhibits that need no (or tiny) simulation run in the test suite."""

    def test_figure4_runs(self):
        result = EXPERIMENTS["figure4"].run("quick", workloads=("streaming",))
        assert result.exhibit == "figure4"
        last_cdf = float(result.rows[0][-1])
        assert last_cdf == pytest.approx(1.0, abs=0.02)

    def test_figure4_within4_high(self):
        result = EXPERIMENTS["figure4"].run("quick", workloads=("streaming",))
        within4 = float(result.rows[0][5])
        assert within4 > 0.85

    def test_storage_runs(self):
        result = EXPERIMENTS["storage"].run()
        boom_row = result.row_for("boomerang")
        assert boom_row[4] == "540 B"

    def test_figure1_single_workload(self):
        result = EXPERIMENTS["figure1"].run("quick", workloads=("streaming",))
        row = result.row_for("streaming")
        assert float(row[2]) > 1.0  # perfect L1-I speeds up
        assert float(row[3]) >= float(row[2]) - 0.01  # +BTB at least as fast

    def test_figure7_single_workload(self):
        result = EXPERIMENTS["figure7"].run("quick", workloads=("streaming",))
        boom = [r for r in result.rows if r[1] == "Boomerang" and r[0] == "streaming"]
        assert boom and float(boom[0][3]) == 0.0  # no BTB-miss squashes

    def test_figure9_single_workload(self):
        result = EXPERIMENTS["figure9"].run("quick", workloads=("streaming",))
        row = result.row_for("streaming")
        boom = float(row[result.headers.index("Boomerang")])
        assert boom > 1.0
