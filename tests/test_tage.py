"""Behavioural tests for the TAGE predictor."""

import pytest

from repro.branch.predictors.tage import TagePredictor, _fold


class TestFold:
    def test_zero_folds_to_zero(self):
        assert _fold(0, 8) == 0

    def test_short_history_unchanged(self):
        assert _fold(0b1011, 8) == 0b1011

    def test_fold_reduces_width(self):
        assert _fold((1 << 40) - 1, 10) < (1 << 10)

    def test_fold_is_xor_of_chunks(self):
        history = 0b1111_0000_1010
        assert _fold(history, 4) == 0b1111 ^ 0b0000 ^ 0b1010


class TestTageBasics:
    def test_initial_prediction_is_boolean(self):
        p = TagePredictor()
        assert p.predict(0x400) in (True, False)

    def test_learns_strong_bias(self):
        p = TagePredictor()
        for _ in range(50):
            p.predict(0x400)
            p.update(0x400, True)
        assert p.predict(0x400) is True

    def test_learns_not_taken_bias(self):
        p = TagePredictor()
        for _ in range(50):
            p.predict(0x404)
            p.update(0x404, False)
        assert p.predict(0x404) is False

    def test_update_without_predict_is_safe(self):
        p = TagePredictor()
        p.update(0x100, True)  # must internally re-predict, not crash

    def test_storage_within_8kb_budget(self):
        bits = TagePredictor().storage_bits()
        assert 6 * 1024 * 8 <= bits <= 9 * 1024 * 8

    def test_reset_forgets(self):
        p = TagePredictor()
        for _ in range(50):
            p.predict(0x400)
            p.update(0x400, True)
        p.reset()
        assert p.history == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TagePredictor(base_entries=100)
        with pytest.raises(ValueError):
            TagePredictor(history_lengths=(10, 5))


class TestTageHistory:
    def test_history_shifts_on_update(self):
        p = TagePredictor()
        p.predict(0x100)
        p.update(0x100, True)
        assert p.history & 1 == 1
        p.predict(0x100)
        p.update(0x100, False)
        assert p.history & 1 == 0

    def test_history_masked_to_max_length(self):
        p = TagePredictor(history_lengths=(3, 6))
        for i in range(100):
            p.predict(0x100)
            p.update(0x100, True)
        assert p.history < (1 << 6)


class TestTageLearnsPatterns:
    def _accuracy_on_pattern(self, predictor, pattern, warm=300, measure=300):
        idx = 0
        for _ in range(warm):
            predictor.predict(0x400)
            predictor.update(0x400, pattern[idx % len(pattern)])
            idx += 1
        correct = 0
        for _ in range(measure):
            outcome = pattern[idx % len(pattern)]
            if predictor.predict(0x400) == outcome:
                correct += 1
            predictor.update(0x400, outcome)
            idx += 1
        return correct / measure

    def test_short_period_pattern_learned(self):
        acc = self._accuracy_on_pattern(TagePredictor(), [True, True, False])
        assert acc > 0.9

    def test_longer_period_pattern_learned(self):
        pattern = [True] * 6 + [False]  # loop with 6 trips
        acc = self._accuracy_on_pattern(TagePredictor(), pattern)
        assert acc > 0.85

    def test_correlated_pair_learned(self):
        """B copies A's outcome: global history makes B predictable."""
        p = TagePredictor()
        import random
        rng = random.Random(42)
        correct = 0
        total = 0
        last_a = False
        for i in range(2000):
            a = rng.random() < 0.5
            p.predict(0x100)
            p.update(0x100, a)
            pred_b = p.predict(0x200)
            if i > 500:
                total += 1
                correct += pred_b == a
            p.update(0x200, a)
            last_a = a
        assert correct / total > 0.8

    def test_beats_bimodal_on_alternation(self):
        from repro.branch.predictors.bimodal import BimodalPredictor
        pattern = [True, False]
        tage_acc = self._accuracy_on_pattern(TagePredictor(), pattern)
        bim = BimodalPredictor()
        bim_correct = 0
        idx = 0
        for _ in range(600):
            outcome = pattern[idx % 2]
            if bim.predict(0x400) == outcome:
                bim_correct += 1
            bim.update(0x400, outcome)
            idx += 1
        assert tage_acc > bim_correct / 600
