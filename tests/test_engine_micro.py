"""Engine tests on hand-crafted micro-CFGs with exactly known behaviour."""

import pytest

from repro import Simulator, make_config
from repro.config import PredictorParams
from repro.workloads.cfg import ControlFlowGraph, Function, StaticBlock
from repro.workloads.isa import BranchKind
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_trace
from repro.workloads.workload import Workload


def micro_workload(blocks, functions, entry, n_instrs=4000, seed=3) -> Workload:
    cfg = ControlFlowGraph(blocks=blocks, functions=functions, entry=entry)
    cfg.validate()
    trace = generate_trace(cfg, n_instrs, seed=seed)
    profile = get_profile("apache").scaled(0.05)
    return Workload(profile=profile, cfg=cfg, trace=trace)


def simple_loop_workload(**kwargs) -> Workload:
    """Two blocks: A (cond, taken-biased back to itself? no) -- use A->B->A."""
    base = 0x1000
    a = StaticBlock(base, 4, BranchKind.COND, base + 32, 0, bias=0.5)
    b = StaticBlock(base + 16, 4, BranchKind.JUMP, base, 0)
    c = StaticBlock(base + 32, 4, BranchKind.JUMP, base, 0)
    funcs = [Function(0, "f", base, 0, (base, base + 16, base + 32))]
    return micro_workload(
        {base: a, base + 16: b, base + 32: c}, funcs, base, **kwargs
    )


def call_chain_workload(**kwargs) -> Workload:
    """driver -> callee -> return, forever. Exercises CALL/RET + RAS."""
    d0 = 0x2000   # call site
    d1 = 0x2010   # loop tail (return lands here)
    f0 = 0x3000   # callee body
    f1 = 0x3010   # callee ret
    blocks = {
        d0: StaticBlock(d0, 4, BranchKind.CALL, f0, 0),
        d1: StaticBlock(d1, 4, BranchKind.JUMP, d0, 0),
        f0: StaticBlock(f0, 4, BranchKind.COND, f1, 1, bias=0.3),
        f1: StaticBlock(f1, 4, BranchKind.RET, 0, 1),
    }
    funcs = [
        Function(0, "driver", d0, 0, (d0, d1)),
        Function(1, "callee", f0, 1, (f0, f1)),
    ]
    return micro_workload(blocks, funcs, d0, **kwargs)


class TestMicroLoop:
    def test_engine_completes(self):
        wl = simple_loop_workload()
        res = Simulator(wl, make_config("none")).run()
        assert res.instructions > 0

    def test_tiny_footprint_has_no_steady_state_misses(self):
        """Three blocks fit one or two cache lines: post-warmup zero misses."""
        wl = simple_loop_workload()
        res = Simulator(wl, make_config("none")).run()
        assert res.raw["l1i_demand_misses"] == 0  # cold misses absorbed by warmup

    def test_btb_learns_and_stops_squashing(self):
        wl = simple_loop_workload()
        res = Simulator(wl, make_config("none")).run()
        # Three static branches; after warmup the BTB holds all of them.
        assert res.squashes_btb == 0

    def test_oracle_removes_all_direction_squashes(self):
        wl = simple_loop_workload()
        cfg = make_config("none", predictor=PredictorParams(kind="oracle"))
        res = Simulator(wl, cfg).run()
        assert res.squashes_mispredict == 0

    def test_unbiased_cond_with_never_taken_squashes_half(self):
        wl = simple_loop_workload(n_instrs=8000)
        cfg = make_config("none", predictor=PredictorParams(kind="never_taken"))
        res = Simulator(wl, cfg).run()
        # Each loop iteration executes 8 instructions (A + either B or C)
        # and exactly one conditional, taken ~half the time.
        conds = res.raw["retired_instrs"] / 8
        assert res.raw["squash_cond"] == pytest.approx(conds * 0.5, rel=0.25)


class TestMicroCallChain:
    def test_ras_predicts_returns(self):
        wl = call_chain_workload()
        res = Simulator(wl, make_config("none")).run()
        # Returns are RAS-predicted: no target squashes in this CFG.
        assert res.raw["squash_target"] == 0

    def test_engine_matches_trace_length(self):
        wl = call_chain_workload()
        res = Simulator(wl, make_config("none")).run()
        total = res.raw["retired_instrs"] + res.raw["warmup_instrs"]
        assert total == wl.trace.n_instrs

    def test_boomerang_on_micro_cfg(self):
        wl = call_chain_workload()
        res = Simulator(wl, make_config("boomerang")).run()
        assert res.squashes_btb == 0
        assert res.instructions > 0


class TestIPCBounds:
    def test_ipc_bounded_by_commit_width(self):
        wl = simple_loop_workload()
        res = Simulator(wl, make_config("none", perfect_l1i=True, perfect_btb=True)).run()
        assert res.ipc <= 3.0

    def test_perfect_everything_beats_real(self):
        wl = call_chain_workload()
        real = Simulator(wl, make_config("none")).run()
        ideal = Simulator(
            wl,
            make_config(
                "none",
                perfect_l1i=True,
                perfect_btb=True,
                predictor=PredictorParams(kind="oracle"),
            ),
        ).run()
        assert ideal.ipc >= real.ipc
