"""Sweep manifests: round-trip, cache diffing, and resume bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.core.results import SimulationResult
from repro.errors import ConfigError
from repro.experiments.common import SCALES, ExperimentScale
from repro.experiments.sweeps import SWEEPS, SweepSpec, get_sweep
from repro.experiments.sweeps.__main__ import main
from repro.experiments.sweeps.manifest import (
    cells_digest,
    load_manifest,
    missing_cells,
    resolve_cells,
    verify_matches_spec,
    write_manifest,
)
from repro.runtime import compact_cache, configure_runtime
from repro.runtime import runner as runner_mod
from repro.runtime.cache import SCHEMA_TAG, ResultCache
from repro.workloads.workload import reset_trace_store

#: Small enough to actually execute the grid inside a unit test.
TINY = ExperimentScale(
    name="mtiny",
    workload_scale=0.05,
    latency_points=(1, 30),
    btb_sizes=(2048,),
    fig3_btb_sizes=(2048,),
)

#: 12 unique jobs at any scale: 6 fdip cells + 6 matched baselines.
RSPEC = SweepSpec(
    "rtest", "resume test grid", "d",
    mechanisms=("fdip",),
    axes=(("llc_latency", (30,)),),
)


@pytest.fixture(autouse=True)
def _registered(monkeypatch):
    """Register the test grid/scale and isolate the process-wide runtime."""
    monkeypatch.setitem(SCALES, "mtiny", TINY)
    monkeypatch.setitem(SWEEPS, "rtest", RSPEC)
    monkeypatch.setattr(runner_mod, "_RUNTIME", None)
    yield
    runner_mod._RUNTIME = None
    reset_trace_store()


def _fabricate(cache: ResultCache, cells) -> None:
    for cell in cells:
        cache.put(
            cell.workload,
            cell.scale_tok,
            cell.digest,
            SimulationResult(cell.workload, "x", {"cycles": 1.0}),
        )


class TestManifestRoundTrip:
    def test_write_then_load_preserves_everything(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        assert manifest.path.parent == tmp_path / "manifests"
        loaded = load_manifest(manifest.path)
        assert loaded.sweep == "rtest"
        assert loaded.scale == "mtiny"
        assert loaded.workload_set == "paper"  # frozen to the resolved name
        assert loaded.engine_schema == SCHEMA_TAG
        assert loaded.spec_digest == manifest.spec_digest
        assert loaded.cells == manifest.cells
        verify_matches_spec(loaded, RSPEC)

    def test_cells_are_deduplicated_like_job_count(self, tmp_path):
        from repro.experiments.common import get_scale

        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        assert len(manifest.cells) == RSPEC.job_count(get_scale("mtiny")) == 12

    def test_rewrite_is_stable(self, tmp_path):
        first = write_manifest(tmp_path, RSPEC, "mtiny", None)
        second = write_manifest(tmp_path, RSPEC, "mtiny", None)
        assert first.path == second.path
        assert first.spec_digest == second.spec_digest
        assert len(list((tmp_path / "manifests").iterdir())) == 1

    def test_load_rejects_non_manifests(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"schema": "something-else"}')
        with pytest.raises(ConfigError, match="not a sweep manifest"):
            load_manifest(bogus)
        with pytest.raises(ConfigError, match="cannot read"):
            load_manifest(tmp_path / "missing.json")

    def test_changed_grid_is_refused(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        changed = SweepSpec(
            "rtest", "t", "d",
            mechanisms=("fdip",),
            axes=(("llc_latency", (30, 70)),),  # one extra point
        )
        with pytest.raises(ConfigError, match="no longer matches"):
            verify_matches_spec(manifest, changed)

    def test_tampered_cell_config_fails_digest_check(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        cell = manifest.cells[0]
        cell.config["core"]["ftq_depth"] = 7
        with pytest.raises(ConfigError, match="digest mismatch"):
            cell.job()

    def test_env_resolved_workload_set_is_frozen(self, tmp_path, monkeypatch):
        """A set that came from REPRO_WORKLOAD_SET must be pinned by name,
        so a resume in a shell *without* the variable re-runs the same
        grid instead of refusing (or silently running the paper set)."""
        monkeypatch.setenv("REPRO_WORKLOAD_SET", "all")
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        assert manifest.workload_set == "all"
        assert len({c.workload for c in manifest.cells}) == 10
        monkeypatch.delenv("REPRO_WORKLOAD_SET")
        loaded = load_manifest(manifest.path)
        verify_matches_spec(loaded, RSPEC)  # must not report a changed grid
        assert len(missing_cells(loaded, ResultCache(tmp_path))) == len(
            manifest.cells
        )


class TestMissingCells:
    def test_cold_cache_misses_everything_in_order(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        missing = missing_cells(manifest, ResultCache(tmp_path))
        assert [j.key for j in missing] == [
            (c.workload, c.scale_tok, c.digest) for c in manifest.cells
        ]

    def test_only_the_deleted_subset_is_missing(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        cache = ResultCache(tmp_path)
        keep = manifest.cells[::2]
        _fabricate(cache, keep)
        missing = missing_cells(manifest, ResultCache(tmp_path))
        assert [j.key for j in missing] == [
            (c.workload, c.scale_tok, c.digest) for c in manifest.cells[1::2]
        ]

    def test_sharded_results_count_as_present(self, tmp_path):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        _fabricate(ResultCache(tmp_path), manifest.cells)
        compact_cache(tmp_path)
        assert missing_cells(manifest, ResultCache(tmp_path)) == []

    def test_dense_latency_btb_diff_is_exact(self, tmp_path):
        """The ROADMAP's dense grid, interrupted at ~50%: the resume diff
        must name exactly the uncached half of the 720 cells."""
        spec = get_sweep("dense-latency-btb")
        cells = resolve_cells(spec, "quick", None)
        assert len(cells) == 720
        done, interrupted = cells[::2], cells[1::2]
        _fabricate(ResultCache(tmp_path), done)
        missing = missing_cells(
            load_manifest(write_manifest(tmp_path, spec, "quick", None).path),
            ResultCache(tmp_path),
        )
        assert {j.key for j in missing} == {
            (c.workload, c.scale_tok, c.digest) for c in interrupted
        }
        assert len(missing) == 360


class TestResumeEndToEnd:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path, capsys):
        """Full tiny run → delete half the cached cells (the state an
        interruption leaves) → resume must simulate exactly the missing
        cells and produce a bit-identical merged table."""
        runtime = configure_runtime(cache_dir=tmp_path)
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        full_table = RSPEC.run("mtiny").to_table()
        assert runtime.executed == 12

        loose = sorted((tmp_path / SCHEMA_TAG).rglob("*.json"))
        assert len(loose) == 12
        victims = loose[::2]
        for path in victims:
            path.unlink()

        runner_mod._RUNTIME = None  # a fresh process, effectively
        runtime = configure_runtime(cache_dir=tmp_path)
        missing = missing_cells(load_manifest(manifest.path), runtime.disk)
        assert len(missing) == len(victims) == 6
        runtime.run_many(missing)
        assert runtime.executed == 6  # exactly the missing cells
        assert RSPEC.run("mtiny").to_table() == full_table

        # The CLI resume path on the now-complete cache: nothing to do.
        runner_mod._RUNTIME = None
        capsys.readouterr()
        assert main(["run", "--resume", str(manifest.path), "--no-table"]) == 0
        out = capsys.readouterr().out
        assert "12/12 cells already cached, submitting 0 missing" in out
        assert "resumed 0 of 12 unique jobs, 0 simulated" in out

    def test_resume_works_from_compacted_shards(self, tmp_path):
        runtime = configure_runtime(cache_dir=tmp_path)
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        full_table = RSPEC.run("mtiny").to_table()
        compact_cache(tmp_path)
        runner_mod._RUNTIME = None
        runtime = configure_runtime(cache_dir=tmp_path)
        assert missing_cells(load_manifest(manifest.path), runtime.disk) == []
        assert RSPEC.run("mtiny").to_table() == full_table
        assert runtime.executed == 0


class TestCli:
    def test_run_with_cache_dir_writes_and_announces_manifest(
        self, tmp_path, capsys
    ):
        # Warm path: populate via a cheap fabricated cache first so the
        # CLI run itself resolves from disk and simulates nothing.
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        _cells_real_results(tmp_path, manifest)
        assert main(
            ["run", "rtest", "--scale", "mtiny",
             "--cache-dir", str(tmp_path), "--no-table"]
        ) == 0
        out = capsys.readouterr().out
        assert "[manifest: " in out and "manifests" in out
        assert manifest.path.exists()

    def test_resume_conflicts_with_name_scale_and_set(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        for extra in (["rtest"], ["--scale", "mtiny"], ["--workload-set", "paper"]):
            assert main(["run", "--resume", str(manifest.path), *extra]) == 2
            assert "from the manifest" in capsys.readouterr().err

    def test_run_without_name_or_resume_errors(self, capsys):
        assert main(["run"]) == 2
        assert "sweep name" in capsys.readouterr().err

    def test_resume_of_changed_grid_fails_cleanly(self, tmp_path, capsys, monkeypatch):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        monkeypatch.setitem(
            SWEEPS,
            "rtest",
            SweepSpec(
                "rtest", "t", "d",
                mechanisms=("fdip",),
                axes=(("llc_latency", (70,)),),
            ),
        )
        assert main(["run", "--resume", str(manifest.path)]) == 2
        assert "no longer matches" in capsys.readouterr().err

    def test_resume_notes_engine_schema_drift(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, RSPEC, "mtiny", None)
        _cells_real_results(tmp_path, manifest)
        record = json.loads(manifest.path.read_text())
        record["engine_schema"] = "engine-v1-000000000000"
        manifest.path.write_text(json.dumps(record))
        assert main(["run", "--resume", str(manifest.path), "--no-table"]) == 0
        out = capsys.readouterr().out
        assert "written under engine schema" in out

    def test_spec_digest_is_order_independent(self, tmp_path):
        cells = resolve_cells(RSPEC, "mtiny", None)
        assert cells_digest(cells) == cells_digest(list(reversed(cells)))


def _cells_real_results(cache_dir, manifest) -> None:
    """Fabricated-but-valid records for every cell (no simulation)."""
    cache = ResultCache(cache_dir)
    for cell in manifest.cells:
        cache.put(
            cell.workload,
            cell.scale_tok,
            cell.digest,
            SimulationResult(
                cell.workload, "fdip", {"cycles": 100.0, "retired_instrs": 120.0}
            ),
        )
