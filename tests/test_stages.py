"""Tests for the pipeline-stage subsystem.

Three layers:

* direct ``tick()`` unit tests of individual stage objects over a
  hand-built :class:`PipelineState` (SquashUnit's flush/restore/cause
  classification, the prefetch-issue priority mux);
* composition tests — each mechanism assembles exactly the stage list the
  architecture table promises;
* the golden-equivalence harness — the composed engine's full stats dict
  is bit-identical to the recorded pre-refactor (monolithic-loop) output
  for every mechanism on the quick workload set.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque

import pytest

from repro import Simulator, load_workload, make_config
from repro.branch.ras import ReturnAddressStack
from repro.core import MECHANISMS
from repro.core.stages import (
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_TARGET,
    FTQScanPrefetchIssue,
    PipelineState,
    SquashUnit,
    StageContext,
    StreamPrefetchIssue,
)
from repro.core.stages.state import SQUASH_NEVER
from repro.frontend.ftq import FetchTargetQueue

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_quick.json"


class RecordingMem:
    """Memory stub recording the probe stream the prefetch mux issues."""

    def __init__(self):
        self.probes: list[tuple[int, int]] = []

    def prefetch_probe(self, block, cycle):
        self.probes.append((block, cycle))


def _squash_ctx(ras_entries=8, ftq_depth=8):
    return StageContext(
        config=make_config("none"),
        ras=ReturnAddressStack(ras_entries),
        ftq=FetchTargetQueue(ftq_depth),
    )


class TestSquashUnit:
    def _armed_state(self, cause, squash_at=5):
        state = PipelineState()
        state.squash_at = squash_at
        state.div_cause = cause
        state.div_resume_idx = 17
        state.wrong_path = True
        return state

    def test_no_fire_before_scheduled_cycle(self):
        ctx = _squash_ctx()
        unit = SquashUnit(ctx)
        state = self._armed_state(CAUSE_COND, squash_at=5)
        unit.tick(state, 4)
        assert state.squash_at == 5 and state.wrong_path
        assert unit.squash_cond == 0

    @pytest.mark.parametrize(
        "cause,counter",
        [
            (CAUSE_BTB, "squash_btb"),
            (CAUSE_COND, "squash_cond"),
            (CAUSE_TARGET, "squash_target"),
        ],
    )
    def test_cause_classification(self, cause, counter):
        ctx = _squash_ctx()
        unit = SquashUnit(ctx)
        state = self._armed_state(cause)
        unit.tick(state, 5)
        assert unit.counters()[counter] == 1
        assert sum(unit.counters().values()) == 1

    def test_ras_restored_to_divergence_snapshot(self):
        ctx = _squash_ctx()
        unit = SquashUnit(ctx)
        ras = ctx.ras
        ras.push(0x100)
        ras.push(0x200)
        state = self._armed_state(CAUSE_TARGET)
        state.ras_snapshot = ras.snapshot()
        # Wrong-path speculation perturbs the RAS after the snapshot.
        ras.pop()
        ras.push(0xBAD)
        ras.push(0xBAD2)
        unit.tick(state, 5)
        assert ras.snapshot() == (0x100, 0x200)
        assert state.ras_snapshot is None

    def test_flushes_younger_work_and_redirects(self):
        ctx = _squash_ctx()
        unit = SquashUnit(ctx)
        ctx.ftq.push((0, 1, 0, False, 0, False))
        state = self._armed_state(CAUSE_COND)
        state.decode_q = deque(
            [(9, 4, 0x40, False, 0), (9, 6, 0x80, True, 0), (9, 2, 0xC0, True, 0)]
        )
        state.decode_instrs = 12
        state.rob = deque([[4, False, 0x0, 4], [3, True, 0x40, 3]])
        state.rob_instrs = 7
        state.cur_entry = (0x40, 4, 1, False, 0, False)
        state.probe_q = [1, 2, 3]
        state.probe_pos = 1
        state.throttle_q = deque([7, 8])
        unit.tick(state, 5)
        # Wrong-path decode groups and the wrong-path ROB tail are gone.
        assert [g[1] for g in state.decode_q] == [4]
        assert state.decode_instrs == 4
        assert list(state.rob) == [[4, False, 0x0, 4]]
        assert state.rob_instrs == 4
        # Fetch cursor and prefetch queues reset; BPU rewound + bubbled.
        assert state.cur_entry is None and ctx.ftq.empty
        assert state.probe_q == [] and state.probe_pos == 0
        assert not state.throttle_q
        assert not state.wrong_path
        assert state.bpu_idx == 17
        assert state.squash_at == SQUASH_NEVER
        assert state.bpu_stall_until == 5 + ctx.config.core.redirect_bubble


class TestPrefetchIssueMux:
    def _stage(self, ftq_depth=8):
        mem = RecordingMem()
        ftq = FetchTargetQueue(ftq_depth)
        ctx = StageContext(mem=mem, ftq=ftq)
        return FTQScanPrefetchIssue(ctx), mem, ftq

    def test_scans_new_ftq_entry_into_probe_queue(self):
        stage, mem, ftq = self._stage()
        state = PipelineState()
        # One basic block spanning cache blocks 2..3 (64B each, 4B instrs).
        ftq.push((0x80, 20, 0, False, 0, False))
        stage.tick(state, 1)
        assert state.probe_q == [2, 3]
        assert mem.probes == [(2, 1)]  # one probe per cycle
        stage.tick(state, 2)
        assert mem.probes == [(2, 1), (3, 2)]

    def test_recent_window_dedups_reprobes(self):
        stage, mem, ftq = self._stage()
        state = PipelineState()
        ftq.push((0x80, 4, 0, False, 0, False))
        stage.tick(state, 1)
        ftq.push((0x80, 4, 0, False, 0, False))
        stage.tick(state, 2)
        assert state.probe_q == [2]  # second push adds nothing

    def test_btb_miss_probe_preempts_prefetch_probes(self):
        """Priority mux: an in-flight BTB miss probe owns the L1-I port."""
        stage, mem, ftq = self._stage()
        state = PipelineState()
        ftq.push((0x80, 4, 0, False, 0, False))
        state.bmiss = [0x80, 2, 10, 0]
        stage.tick(state, 1)
        assert mem.probes == []  # port carries the miss probe, not prefetch
        assert state.probe_q == [2]  # but the scan still happened
        state.bmiss = None
        stage.tick(state, 2)
        assert mem.probes == [(2, 2)]

    def test_throttle_blocks_preempt_probe_queue(self):
        """Boomerang's miss-triggered next-line throttle goes out first."""
        stage, mem, ftq = self._stage()
        state = PipelineState()
        ftq.push((0x80, 4, 0, False, 0, False))
        state.throttle_q = deque([40, 41])
        stage.tick(state, 1)
        stage.tick(state, 2)
        stage.tick(state, 3)
        assert mem.probes == [(40, 1), (41, 2), (2, 3)]

    def test_stream_variant_issues_prefetcher_blocks(self):
        class FakePrefetcher:
            def __init__(self):
                self.blocks = deque([11, None, 12])

            def next_prefetch(self, cycle):
                return self.blocks.popleft() if self.blocks else None

        mem = RecordingMem()
        stage = StreamPrefetchIssue(StageContext(mem=mem, prefetcher=FakePrefetcher()))
        state = PipelineState()
        for cycle in (1, 2, 3):
            stage.tick(state, cycle)
        assert mem.probes == [(11, 1), (12, 3)]


class TestStageComposition:
    def _stages(self, mechanism, **overrides):
        wl = load_workload("streaming", scale=0.05)
        from repro.core.engine import FrontEndEngine

        return FrontEndEngine(wl, make_config(mechanism, **overrides)).stages

    def _names(self, mechanism, **overrides):
        return [type(s).__name__ for s in self._stages(mechanism, **overrides)]

    def test_shared_spine_everywhere(self):
        for mech in MECHANISMS:
            names = self._names(mech)
            assert names[1:5] == [
                "SquashUnit",
                "RetireUnit",
                "DecodeDispatch",
                "FetchUnit",
            ], mech

    def test_boomerang_is_missprobe_bpu_plus_ftq_scan(self):
        names = self._names("boomerang")
        assert "MissProbeBPU" in names and "FTQScanPrefetchIssue" in names

    def test_fdip_is_plain_bpu_plus_ftq_scan(self):
        names = self._names("fdip")
        assert "BPUStage" in names and "FTQScanPrefetchIssue" in names
        assert "MissProbeBPU" not in names

    def test_confluence_predecodes_on_fill(self):
        assert self._names("confluence")[0] == "PredecodeFillArrival"
        # Nothing to prefill under a perfect BTB: plain fill is composed.
        assert self._names("confluence", perfect_btb=True)[0] == "FillArrival"

    def test_none_has_idle_probe_port(self):
        names = self._names("none")
        assert "StreamPrefetchIssue" not in names
        assert "FTQScanPrefetchIssue" not in names

    def test_stream_mechanisms_compose_stream_issue(self):
        for mech in ("next_line", "dip", "pif", "shift", "confluence"):
            assert "StreamPrefetchIssue" in self._names(mech), mech


class TestGoldenEquivalence:
    """The composed engine reproduces the monolithic engine bit-for-bit.

    ``tests/data/golden_quick.json`` holds the full stats dict of the
    pre-refactor engine for all 8 mechanisms on every workload at the
    quick experiment scale. Any counter drift — one mispredicted branch,
    one extra probe — fails loudly here.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as fh:
            return json.load(fh)

    @pytest.mark.parametrize(
        "workload", ["nutch", "streaming", "apache", "zeus", "oracle", "db2"]
    )
    def test_bit_identical_to_seed_engine(self, golden, workload):
        wl = load_workload(workload, scale=golden["workload_scale"])
        for mechanism in MECHANISMS:
            raw = Simulator(wl, make_config(mechanism)).run().raw
            want = golden["stats"][f"{workload}:{mechanism}"]
            assert raw == want, f"{workload}:{mechanism} diverged from seed engine"
