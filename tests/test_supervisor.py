"""Supervised service mode: options, scaling policy, fleet, progress, ETA.

Fleet-lifecycle tests drive a real :class:`Supervisor` over *stub* worker
commands (sleep/exit/crash one-liners) so spawn/reap/restart mechanics run
against actual subprocesses without paying for engine imports; the
bit-identity test at the bottom runs the real ``python -m repro.runtime
worker`` fleet against real jobs and compares its merged results
bit-for-bit with a hand-run worker's.
"""

from __future__ import annotations

import json
import sys
import time

import pytest

import faultinject
from repro.core.mechanisms import make_config
from repro.errors import ConfigError
from repro.runtime import SimJob
from repro.runtime.broker import BrokerQueue, run_worker
from repro.runtime.cache import SCHEMA_TAG
from repro.runtime.supervisor import (
    BACKOFF_CAP_SECONDS,
    CELL_STATES,
    STATUS_SCHEMA,
    SUPERVISOR_SCHEMA,
    Supervisor,
    build_status,
    cell_job_id,
    desired_workers,
    latest_manifest,
    render_status,
    supervisor_options,
    sweep_progress,
)
from repro.runtime.atomicio import atomic_write_json
from repro.workloads.workload import reset_trace_store

WL = "streaming"
SCALE = 0.05

#: Stub fleet members: lifecycle without engine imports.
SLEEPER = [sys.executable, "-c", "import time; time.sleep(60)"]
CRASHER = [sys.executable, "-c", "import sys; sys.exit(3)"]
QUITTER = [sys.executable, "-c", "pass"]


@pytest.fixture(autouse=True)
def _restore_trace_store():
    """In-process run_worker pins the trace store; undo it per test."""
    yield
    reset_trace_store()


def _job(llc: int | None = None) -> SimJob:
    cfg = make_config("none")
    if llc is not None:
        cfg = cfg.with_llc_latency(llc)
    return SimJob(WL, cfg, SCALE)


def _plant_pending(queue: BrokerQueue, n: int, cost: int = 100) -> None:
    """Fake backlog files — the scaling policy only reads filenames."""
    queue.pending.mkdir(parents=True, exist_ok=True)
    for i in range(n):
        name = f"fake{i}__s1__{i:016x}__w{cost}__a0.json"
        (queue.pending / name).write_text("{}")


def _supervisor(tmp_path, command, **opts) -> Supervisor:
    options = supervisor_options(**opts)
    return Supervisor(tmp_path, options, worker_command=command)


# ---------------------------------------------------------------------------
# Option resolution
# ---------------------------------------------------------------------------


class TestSupervisorOptions:
    def test_defaults(self):
        opts = supervisor_options()
        assert opts.min_workers == 0
        assert opts.max_workers == 4
        assert opts.cooldown_seconds == 2.0
        assert opts.backoff_seconds == 1.0
        assert opts.worker_idle_seconds == 10.0

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_MIN", "1")
        monkeypatch.setenv("REPRO_SUPERVISOR_MAX", "8")
        monkeypatch.setenv("REPRO_SUPERVISOR_COOLDOWN", "0.5")
        monkeypatch.setenv("REPRO_SUPERVISOR_BACKOFF", "2.5")
        monkeypatch.setenv("REPRO_SUPERVISOR_IDLE", "3.5")
        opts = supervisor_options()
        assert opts.min_workers == 1
        assert opts.max_workers == 8
        assert opts.cooldown_seconds == 0.5
        assert opts.backoff_seconds == 2.5
        assert opts.worker_idle_seconds == 3.5

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_MAX", "8")
        monkeypatch.setenv("REPRO_SUPERVISOR_COOLDOWN", "9")
        opts = supervisor_options(max_workers=2, cooldown_seconds=0.0)
        assert opts.max_workers == 2
        assert opts.cooldown_seconds == 0.0

    def test_explicit_zero_cooldown_from_env_survives(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_COOLDOWN", "0")
        assert supervisor_options().cooldown_seconds == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": -1},
            {"max_workers": 0},
            {"min_workers": 5, "max_workers": 2},
            {"worker_idle_seconds": 0.0},
            {"cooldown_seconds": -1.0},
            {"backoff_seconds": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            supervisor_options(**kwargs)

    def test_malformed_env_value_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_MAX", "lots")
        with pytest.raises(ConfigError) as err:
            supervisor_options()
        assert "REPRO_SUPERVISOR_MAX" in str(err.value)


# ---------------------------------------------------------------------------
# Scaling policy
# ---------------------------------------------------------------------------


class TestScalingPolicy:
    def test_empty_backlog_sits_at_the_floor(self):
        assert desired_workers([], supervisor_options()) == 0
        assert desired_workers([], supervisor_options(min_workers=2)) == 2

    def test_one_giant_job_caps_useful_parallelism(self):
        # Longest-first: the giant IS the critical path; the three tiny
        # jobs fit into one extra worker's time many times over.
        opts = supervisor_options(max_workers=8)
        assert desired_workers([1000, 1, 1, 1], opts) == 2

    def test_uniform_backlog_wants_one_worker_per_job(self):
        opts = supervisor_options(max_workers=8)
        assert desired_workers([10] * 6, opts) == 6

    def test_ceiling_clamps(self):
        opts = supervisor_options(max_workers=4)
        assert desired_workers([10] * 100, opts) == 4

    def test_unknown_costs_fall_back_to_backlog_size(self):
        opts = supervisor_options(max_workers=8)
        assert desired_workers([None, None, None], opts) == 3

    def test_unknown_costs_billed_as_longest(self):
        # One known cost 100 + one unknown (assumed 100): total 200,
        # longest 100 -> two workers.
        opts = supervisor_options(max_workers=8)
        assert desired_workers([100, None], opts) == 2

    def test_floor_beats_backlog(self):
        opts = supervisor_options(min_workers=3, max_workers=8)
        assert desired_workers([10], opts) == 3


# ---------------------------------------------------------------------------
# Fleet lifecycle (real subprocesses, stub commands)
# ---------------------------------------------------------------------------


class TestFleetLifecycle:
    def test_scales_up_to_the_backlog_and_stops_clean(self, tmp_path):
        sup = _supervisor(
            tmp_path, SLEEPER, max_workers=3, cooldown_seconds=0.0
        )
        _plant_pending(sup.queue, 3)
        sup.tick()
        try:
            assert sup.live == 3
            assert sup.spawned == 3
            assert sup.peak_live == 3
            state = json.loads(sup.state_path.read_text())
            assert state["schema"] == SUPERVISOR_SCHEMA
            assert state["live"] == 3
            assert len(state["workers"]) == 3
            assert [e["event"] for e in state["timeline"]].count("spawn") == 3
        finally:
            sup.stop()
        assert sup.live == 0
        assert sup.crashes == 0  # terminated workers are not crashes
        state = json.loads(sup.state_path.read_text())
        assert state["live"] == 0

    def test_cooldown_gates_successive_spawn_rounds(self, tmp_path):
        sup = _supervisor(
            tmp_path, SLEEPER, max_workers=4, cooldown_seconds=60.0
        )
        _plant_pending(sup.queue, 1)
        sup.tick()
        try:
            assert sup.live == 1
            _plant_pending(sup.queue, 4)
            sup.tick()  # desired is now 4+, but the cooldown gate holds
            assert sup.live == 1
        finally:
            sup.stop()

    def test_clean_exit_is_a_retirement_not_a_crash(self, tmp_path):
        sup = _supervisor(
            tmp_path, QUITTER, max_workers=1, cooldown_seconds=60.0
        )
        _plant_pending(sup.queue, 1)
        sup.tick()
        faultinject.wait_for(
            lambda: sup.workers[0].proc.poll() is not None,
            message="stub worker exit",
        )
        sup.tick()
        assert sup.live == 0
        assert sup.retired == 1
        assert sup.crashes == 0

    def test_crash_restart_waits_out_a_doubling_backoff(self, tmp_path):
        sup = _supervisor(
            tmp_path,
            CRASHER,
            max_workers=1,
            cooldown_seconds=0.0,
            backoff_seconds=60.0,
        )
        _plant_pending(sup.queue, 1)
        sup.tick()
        assert sup.spawned == 1
        faultinject.wait_for(
            lambda: sup.workers[0].proc.poll() is not None,
            message="stub crash",
        )
        sup.tick()
        assert sup.crashes == 1
        assert sup.live == 0
        # The backlog still demands a worker, but the backoff gate holds.
        sup.tick()
        assert sup.spawned == 1
        # Releasing the gate restarts the worker: crash-restart is just
        # scale-up seeing the still-pending job once the backoff expires.
        sup._next_spawn_at = 0.0
        sup.tick()
        assert sup.spawned == 2
        faultinject.wait_for(
            lambda: not sup.workers or sup.workers[0].proc.poll() is not None,
            message="second stub crash",
        )
        sup.tick()
        assert sup.crashes == 2
        backoffs = [
            e["backoff_s"]
            for e in sup.timeline
            if e["event"] == "crash"
        ]
        assert backoffs == [
            min(BACKOFF_CAP_SECONDS, 60.0),
            min(BACKOFF_CAP_SECONDS, 120.0),
        ]

    def test_floor_workers_are_persistent(self, tmp_path):
        sup = _supervisor(
            tmp_path,
            SLEEPER,
            min_workers=1,
            max_workers=2,
            cooldown_seconds=0.0,
        )
        sup.tick()  # empty queue: the floor alone brings up one worker
        try:
            assert sup.live == 1
            assert sup.workers[0].persistent
            _plant_pending(sup.queue, 2)
            sup.tick()
            assert sup.live == 2
            assert not sup.workers[1].persistent
            sup.stop(persistent_only=True)
            assert sup.live == 1
            assert not sup.workers[0].persistent
        finally:
            sup.stop()


# ---------------------------------------------------------------------------
# Sweep progress + ETA
# ---------------------------------------------------------------------------


def _write_manifest(cache_dir):
    from repro.experiments.sweeps import get_sweep
    from repro.experiments.sweeps.manifest import write_manifest

    return write_manifest(cache_dir, get_sweep("smoke"), "quick", "paper")


def _fake_done(queue: BrokerQueue, job_id: str, run_s: float = 2.0) -> None:
    atomic_write_json(
        queue.done / f"{job_id}.json",
        {
            "schema": "broker-v3",
            "engine_schema": SCHEMA_TAG,
            "job_id": job_id,
            "worker": "fake-worker",
            "attempts": 1,
            "queue_wait_s": 0.0,
            "age_s": 0.0,
            "run_s": run_s,
            "completed_at": time.time(),
            "result": {},
        },
    )


class TestSweepProgress:
    def test_cell_job_ids_match_the_broker_grammar(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        cell = manifest.cells[0]
        assert cell_job_id(cell) == BrokerQueue.job_id(cell.job())

    def test_cell_states_join_queue_and_cache(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        total = len(manifest.cells)

        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["unsubmitted"] == total
        assert progress["eta_s"] is None  # no telemetry yet — honest
        assert progress["remaining_cost"] > 0

        tracked = cell_job_id(manifest.cells[0])
        seen = [self._state_of(progress, tracked)]

        queue.enqueue(manifest.cells[0].job())
        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["pending"] == 1
        assert progress["counts"]["unsubmitted"] == total - 1
        seen.append(self._state_of(progress, tracked))

        claimed = queue.claim("t")
        assert claimed is not None and claimed.job_id == tracked
        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["claimed"] == 1
        row = next(
            c for c in progress["cell_states"] if c["job_id"] == tracked
        )
        assert row["lease_age_s"] is not None and row["lease_age_s"] >= 0
        seen.append(self._state_of(progress, tracked))

        claimed.path.unlink()
        _fake_done(queue, tracked, run_s=2.0)
        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["done"] == 1
        seen.append(self._state_of(progress, tracked))

        # Monotonic: the tracked cell only ever moved rightward.
        indices = [CELL_STATES.index(s) for s in seen]
        assert indices == sorted(indices)

    @staticmethod
    def _state_of(progress, job_id: str) -> str:
        return next(
            c["state"] for c in progress["cell_states"] if c["job_id"] == job_id
        )

    def test_eta_calibrates_from_run_telemetry(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        queue._ensure_dirs()
        done = manifest.cells[0]
        _fake_done(queue, cell_job_id(done), run_s=3.0)
        progress = sweep_progress(tmp_path, manifest, active_workers=2)
        spc = progress["secs_per_cost"]
        assert spc is not None and spc > 0
        assert progress["eta_s"] == pytest.approx(
            progress["remaining_cost"] * spc / 2, rel=1e-6
        )

    def test_eta_is_zero_when_nothing_is_runnable(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        queue._ensure_dirs()
        for cell in manifest.cells:
            _fake_done(queue, cell_job_id(cell))
        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["done"] == len(manifest.cells)
        assert progress["eta_s"] == 0.0

    def test_terminal_failures_read_as_failed(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        queue._ensure_dirs()
        job_id = cell_job_id(manifest.cells[0])
        queue._fail_terminal(job_id, 3, "boom")
        progress = sweep_progress(tmp_path, manifest)
        assert progress["counts"]["failed"] == 1
        row = next(
            c for c in progress["cell_states"] if c["job_id"] == job_id
        )
        assert row["attempts"] == 3

    def test_latest_manifest_picks_the_newest(self, tmp_path):
        assert latest_manifest(tmp_path) is None
        manifest = _write_manifest(tmp_path)
        found = latest_manifest(tmp_path)
        assert found is not None
        assert found.spec_digest == manifest.spec_digest


# ---------------------------------------------------------------------------
# Status snapshot + rendering
# ---------------------------------------------------------------------------


class TestStatus:
    def test_empty_cache_dir_snapshot(self, tmp_path):
        status = build_status(tmp_path)
        assert status["schema"] == STATUS_SCHEMA
        assert status["queue"] == {
            "pending": 0,
            "claimed": 0,
            "done": 0,
            "failed": 0,
        }
        assert status["workers"] == {}
        assert status["claims"] == []
        assert status["supervisor"] is None
        assert status["sweep"] is None
        json.dumps(status)  # --json must always serialize

    def test_snapshot_aggregates_workers_and_sweep(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        queue._ensure_dirs()
        for cell in manifest.cells[:2]:
            _fake_done(queue, cell_job_id(cell), run_s=1.5)
        sup = Supervisor(tmp_path, supervisor_options())
        sup.write_state()
        status = build_status(tmp_path)
        assert status["workers"]["fake-worker"]["jobs"] == 2
        assert status["workers"]["fake-worker"]["run_s"] == pytest.approx(3.0)
        assert status["supervisor"]["schema"] == SUPERVISOR_SCHEMA
        assert status["sweep"]["counts"]["done"] == 2
        json.dumps(status)

    def test_render_is_pure_text(self, tmp_path):
        manifest = _write_manifest(tmp_path)
        queue = BrokerQueue(tmp_path)
        queue._ensure_dirs()
        _fake_done(queue, cell_job_id(manifest.cells[0]))
        text = render_status(build_status(tmp_path))
        assert "repro service status" in text
        assert "fake-worker" in text
        assert "sweep       smoke @ quick" in text
        assert "\x1b" not in text  # escapes belong to the watch loop only


# ---------------------------------------------------------------------------
# Bit-identity: supervised fleet vs hand-run worker (acceptance)
# ---------------------------------------------------------------------------


def _result_payloads(queue: BrokerQueue) -> dict[str, str]:
    """job id → canonical JSON of the result payload (telemetry excluded)."""
    payloads = {}
    for path in sorted(queue.done.glob("*.json")):
        record = json.loads(path.read_text())
        payload = record.get("results", record.get("result"))
        payloads[record["job_id"]] = json.dumps(payload, sort_keys=True)
    return payloads


class TestBitIdentity:
    def test_supervised_fleet_matches_hand_run_worker(self, tmp_path):
        jobs = [_job(llc) for llc in (20, 40, 60, 80)]

        # Hand-run: one worker drained in-process, the PR-4 way.
        hand_dir = tmp_path / "hand"
        hand_queue = BrokerQueue(hand_dir)
        for job in jobs:
            hand_queue.enqueue(job)
        run_worker(hand_dir, worker_id="hand", drain=True, max_idle=0.2)
        reset_trace_store()

        # Supervised: a real autoscaled subprocess fleet.
        serve_dir = tmp_path / "served"
        options = supervisor_options(
            max_workers=2, cooldown_seconds=0.0, worker_idle_seconds=0.5
        )
        sup = Supervisor(
            serve_dir, options, env=faultinject._subprocess_env()
        )
        for job in jobs:
            sup.queue.enqueue(job)
        try:
            faultinject.wait_for(
                lambda: (sup.tick() or True)
                and sup.queue.counts()["done"] == len(jobs),
                timeout=120.0,
                interval=0.2,
                message="supervised fleet to drain the queue",
            )
            assert sup.peak_live >= 2  # uniform backlog autoscaled up
            # Surge workers retire themselves: scale-down to zero.
            faultinject.wait_for(
                lambda: (sup.tick(scale_up=False) or True) and sup.live == 0,
                timeout=60.0,
                interval=0.2,
                message="fleet wind-down",
            )
        finally:
            sup.stop()
        assert sup.crashes == 0

        hand = _result_payloads(hand_queue)
        served = _result_payloads(sup.queue)
        assert set(hand) == set(served)
        assert hand == served  # bit-identical merged results

        # The done-record telemetry names only supervised worker ids.
        for path in sup.queue.done.glob("*.json"):
            assert json.loads(path.read_text())["worker"].startswith("sv")


class TestServeEndToEnd:
    def test_serve_runs_a_sweep_and_winds_the_fleet_down(self, tmp_path):
        from repro.experiments.sweeps import get_sweep
        from repro.runtime.supervisor import serve_sweep

        options = supervisor_options(
            max_workers=4, cooldown_seconds=0.0, worker_idle_seconds=1.0
        )
        rc = serve_sweep(
            "smoke",
            tmp_path,
            scale="quick",
            options=options,
            env=faultinject._subprocess_env(),
        )
        assert rc == 0

        queue = BrokerQueue(tmp_path)
        counts = queue.counts()
        total = len(
            sweep_progress(
                tmp_path, latest_manifest(tmp_path)
            )["cell_states"]
        )
        assert counts["done"] == total > 0
        assert counts["pending"] == 0
        assert counts["claimed"] == 0
        assert counts["failed"] == 0

        state = json.loads((queue.root / "supervisor.json").read_text())
        assert state["peak_live"] >= 2  # the backlog autoscaled the fleet up
        assert state["live"] == 0  # ...and serve wound it back down
        assert state["crashes"] == 0

        # Every cell the manifest names reads as done in the final status.
        get_sweep("smoke")  # sanity: the sweep exists under this name
        status = build_status(tmp_path)
        assert status["sweep"]["counts"]["done"] == total
        assert status["sweep"]["eta_s"] == 0.0
