"""CLI surface of ``python -m repro.runtime`` (worker/queue/status/serve).

The worker tests spawn the real module as a subprocess — the contract
under test is the command line itself (flags, exit codes, printed
output), which an in-process call can't exercise. Queue/status/serve
argument handling is tested in-process via ``main(argv)`` + capsys,
which keeps the no-engine-work paths fast.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

import faultinject
from repro.core.mechanisms import make_config
from repro.runtime import SimJob
from repro.runtime.__main__ import main
from repro.runtime.broker import BrokerQueue
from repro.runtime.supervisor import STATUS_SCHEMA
from repro.workloads.workload import reset_trace_store

WL = "streaming"
SCALE = 0.05


@pytest.fixture(autouse=True)
def _no_ambient_cache_dir(monkeypatch):
    """CLI resolution tests must not inherit the shell's REPRO_CACHE_DIR."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    yield
    reset_trace_store()


def _job(llc: int | None = None) -> SimJob:
    cfg = make_config("none")
    if llc is not None:
        cfg = cfg.with_llc_latency(llc)
    return SimJob(WL, cfg, SCALE)


def _run_worker_cli(cache_dir, *extra: str) -> subprocess.CompletedProcess:
    cmd = [
        sys.executable,
        "-m",
        "repro.runtime",
        "worker",
        "--cache-dir",
        str(cache_dir),
        *extra,
    ]
    return subprocess.run(
        cmd,
        env=faultinject._subprocess_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )


class TestWorkerCli:
    def test_drain_on_an_empty_queue_exits_clean(self, tmp_path):
        proc = _run_worker_cli(tmp_path, "--drain", "--max-idle", "0.2")
        assert proc.returncode == 0, proc.stderr
        assert "stealing from" in proc.stdout
        assert "exiting after 0 job(s)" in proc.stdout

    def test_max_jobs_stops_after_the_budget(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        queue.enqueue(_job(20))
        queue.enqueue(_job(40))
        proc = _run_worker_cli(
            tmp_path, "--drain", "--max-idle", "5", "--max-jobs", "1"
        )
        assert proc.returncode == 0, proc.stderr
        assert "exiting after 1 job(s)" in proc.stdout
        counts = queue.counts()
        assert counts["done"] == 1
        assert counts["pending"] == 1  # budget left the second job alone

    def test_worker_id_flag_lands_in_done_telemetry(self, tmp_path):
        queue = BrokerQueue(tmp_path)
        job_id = queue.enqueue(_job(20))
        proc = _run_worker_cli(
            tmp_path,
            "--drain",
            "--max-idle",
            "0.5",
            "--worker-id",
            "cli-test-worker",
        )
        assert proc.returncode == 0, proc.stderr
        assert "[worker cli-test-worker]" in proc.stdout
        record = queue.read_done(job_id)
        assert record is not None
        assert record["worker"] == "cli-test-worker"

    def test_missing_cache_dir_is_a_usage_error(self):
        with pytest.raises(SystemExit) as err:
            main(["worker", "--drain"])
        assert "cache directory" in str(err.value)


class TestQueueCli:
    def test_reports_per_state_counts(self, tmp_path, capsys):
        queue = BrokerQueue(tmp_path)
        queue.enqueue(_job(20))
        queue.enqueue(_job(40))
        assert queue.claim("t") is not None
        assert main(["queue", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"broker queue at {queue.root}" in out
        for state, count in (
            ("pending", 1),
            ("claimed", 1),
            ("done", 0),
            ("failed", 0),
        ):
            assert f"{state:<8s} {count:6d} job(s)" in out


class TestStatusCli:
    def test_json_snapshot_schema(self, tmp_path, capsys):
        assert main(["status", "--cache-dir", str(tmp_path), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["schema"] == STATUS_SCHEMA
        assert set(status["queue"]) == {"pending", "claimed", "done", "failed"}
        for key in (
            "generated_at",
            "cache_dir",
            "engine_schema",
            "claims",
            "workers",
            "cache",
            "traces",
            "supervisor",
            "sweep",
        ):
            assert key in status

    def test_default_output_is_the_rendered_dashboard(self, tmp_path, capsys):
        assert main(["status", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro service status" in out
        assert "queue" in out

    def test_missing_cache_dir_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["status", "--json"])


class TestServeCli:
    def test_unknown_sweep_is_a_config_error(self, tmp_path, capsys):
        rc = main(["serve", "no-such-sweep", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_invalid_fleet_bounds_are_a_config_error(self, tmp_path, capsys):
        rc = main(
            [
                "serve",
                "smoke",
                "--cache-dir",
                str(tmp_path),
                "--max-workers",
                "0",
            ]
        )
        assert rc == 2
        assert "max_workers" in capsys.readouterr().err


class TestSweepsServeFlag:
    """``sweeps run --serve`` argument validation (no fleet is spawned)."""

    @staticmethod
    def _sweeps_main(argv):
        from repro.experiments.sweeps.__main__ import main as sweeps_main

        return sweeps_main(argv)

    def test_serve_requires_a_sweep_name(self, capsys):
        rc = self._sweeps_main(["run", "--serve"])
        assert rc == 2
        assert "sweep name" in capsys.readouterr().err

    def test_serve_rejects_resume(self, tmp_path, capsys):
        rc = self._sweeps_main(
            ["run", "smoke", "--serve", "--resume", str(tmp_path / "m.json")]
        )
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_serve_rejects_non_broker_backends(self, tmp_path, capsys):
        rc = self._sweeps_main(
            [
                "run",
                "smoke",
                "--serve",
                "--backend",
                "serial",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert rc == 2
        assert "broker backend" in capsys.readouterr().err

    def test_serve_needs_a_cache_dir(self, capsys):
        rc = self._sweeps_main(["run", "smoke", "--serve"])
        assert rc == 2
        assert "cache directory" in capsys.readouterr().err
