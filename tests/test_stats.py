"""Unit tests for repro.stats."""

import math

import pytest

from repro.stats import StatGroup, geometric_mean, weighted_mean


class TestStatGroup:
    def test_missing_key_reads_zero(self):
        assert StatGroup()["nothing"] == 0

    def test_add_creates_and_increments(self):
        g = StatGroup()
        g.add("hits")
        g.add("hits", 4)
        assert g["hits"] == 5

    def test_setitem_overwrites(self):
        g = StatGroup()
        g["x"] = 7
        g["x"] = 3
        assert g["x"] == 3

    def test_merge_accumulates(self):
        a = StatGroup(values={"x": 1, "y": 2})
        b = StatGroup(values={"y": 3, "z": 4})
        a.merge(b)
        assert a["y"] == 5
        assert a["z"] == 4

    def test_merge_accepts_plain_mapping(self):
        g = StatGroup(values={"x": 1})
        g.merge({"x": 2})
        assert g["x"] == 3

    def test_ratio_safe_on_zero_denominator(self):
        g = StatGroup(values={"a": 5})
        assert g.ratio("a", "missing") == 0.0

    def test_ratio(self):
        g = StatGroup(values={"hits": 3, "lookups": 4})
        assert g.ratio("hits", "lookups") == pytest.approx(0.75)

    def test_per_kilo(self):
        g = StatGroup(values={"squashes": 5, "instrs": 1000})
        assert g.per_kilo("squashes", "instrs") == pytest.approx(5.0)

    def test_subset_filters_by_prefix(self):
        g = StatGroup(values={"l1i_hits": 1, "l1i_misses": 2, "btb_hits": 3})
        sub = g.subset("l1i_")
        assert len(sub) == 2
        assert "btb_hits" not in sub

    def test_iteration_is_sorted(self):
        g = StatGroup(values={"b": 1, "a": 2})
        assert list(g) == ["a", "b"]

    def test_as_dict_is_a_copy(self):
        g = StatGroup(values={"x": 1})
        d = g.as_dict()
        d["x"] = 99
        assert g["x"] == 1

    def test_contains(self):
        g = StatGroup(values={"x": 0})
        assert "x" in g
        assert "y" not in g


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 1.0)]) == pytest.approx(2.0)

    def test_weights_matter(self):
        assert weighted_mean([(1.0, 3.0), (5.0, 1.0)]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert weighted_mean([]) == 0.0

    def test_zero_weights_are_safe(self):
        assert weighted_mean([(5.0, 0.0)]) == 0.0


class TestGeometricMean:
    def test_identity_on_constant(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_less_than_arithmetic_mean(self):
        values = [1.0, 2.0, 9.0]
        assert geometric_mean(values) < sum(values) / len(values)

    def test_log_consistency(self):
        values = [1.5, 2.5, 3.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)
