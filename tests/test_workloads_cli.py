"""Tests for the ``python -m repro.workloads`` CLI."""

from __future__ import annotations

import pytest

from repro.workloads import (
    TRACE_SCHEMA_TAG,
    clear_workload_cache,
    configure_trace_store,
    load_workload,
    reset_trace_store,
)
from repro.workloads.__main__ import main


@pytest.fixture
def warm_store(tmp_path):
    clear_workload_cache()
    configure_trace_store(tmp_path)
    load_workload("streaming", scale=0.05)
    yield tmp_path
    reset_trace_store()
    clear_workload_cache()


class TestProfileCommands:
    def test_list_default_is_paper_set(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOAD_SET", raising=False)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "db2" in out and "microrpc" not in out

    def test_list_all_includes_extended(self, capsys):
        assert main(["list", "--set", "all"]) == 0
        out = capsys.readouterr().out
        for name in ("microrpc", "interp", "mlserve", "compilerpass"):
            assert name in out

    def test_list_honours_env_selector(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_SET", "extended")
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "interp" in out and "db2" not in out

    def test_show_prints_every_parameter_and_digest(self, capsys):
        assert main(["show", "interp"]) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "indirect_jump_frac" in out and "0.3" in out

    def test_show_unknown_profile_errors(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["show", "mysql"])

    def test_summarize_prints_calibration_stats(self, capsys):
        assert main(["summarize", "streaming", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for field in ("taken_rate", "cond_frac", "footprint_kb", "n_records"):
            assert field in out


class TestStoreCommands:
    def test_store_list_shows_current_tag(self, capsys, warm_store):
        assert main(["store-list", "--cache-dir", str(warm_store)]) == 0
        out = capsys.readouterr().out
        assert TRACE_SCHEMA_TAG in out and "current" in out

    def test_store_list_empty(self, capsys, tmp_path):
        assert main(["store-list", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_store_list_requires_a_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["store-list"])

    def test_store_prune_nothing_stale(self, capsys, warm_store):
        assert main(["store-prune", "--cache-dir", str(warm_store)]) == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_store_prune_removes_stale_tag(self, capsys, warm_store):
        stale = warm_store / "trace-v0-000000000000"
        stale.mkdir()
        (stale / "old.wkld").write_bytes(b"x")
        assert main(["store-prune", "--cache-dir", str(warm_store)]) == 0
        assert "removed trace-v0-000000000000" in capsys.readouterr().out
        assert not stale.exists()
        assert (warm_store / TRACE_SCHEMA_TAG).exists()

    def test_store_prune_dry_run(self, capsys, warm_store):
        stale = warm_store / "trace-v0-000000000000"
        stale.mkdir()
        assert main(["store-prune", "--cache-dir", str(warm_store), "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert stale.exists()

    def test_env_resolution(self, capsys, warm_store, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(warm_store))
        assert main(["store-list"]) == 0
        assert TRACE_SCHEMA_TAG in capsys.readouterr().out
