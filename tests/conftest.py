"""Shared fixtures: small deterministic workloads and cached simulations.

Tests run on heavily scaled-down workloads (same generators, same code
paths, smaller footprints) so the whole suite stays fast. Fixtures are
session-scoped: workload construction and simulation results are shared
across test modules, which is safe because both are deterministic and
treated as read-only by tests.
"""

from __future__ import annotations

import pytest

from repro import Simulator, load_workload, make_config
from repro.core.results import SimulationResult
from repro.workloads import Workload

#: Scale for functional tests (fast; structures not under pressure).
SMALL_SCALE = 0.08

#: Scale for shape/integration tests (structures under real pressure).
MEDIUM_SCALE = 0.3


@pytest.fixture(scope="session")
def small_workload() -> Workload:
    return load_workload("apache", scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def small_oltp_workload() -> Workload:
    return load_workload("db2", scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def medium_workload() -> Workload:
    return load_workload("apache", scale=MEDIUM_SCALE)


@pytest.fixture(scope="session")
def medium_oltp_workload() -> Workload:
    return load_workload("db2", scale=MEDIUM_SCALE)


@pytest.fixture(scope="session")
def medium_streaming_workload() -> Workload:
    return load_workload("streaming", scale=MEDIUM_SCALE)


class _RunCache:
    """Session-wide memo for (workload, mechanism, overrides) results."""

    def __init__(self):
        self._cache: dict[tuple, SimulationResult] = {}

    def run(self, workload: Workload, mechanism: str = "none", **overrides) -> SimulationResult:
        key = (workload.name, workload.profile.code_kb, mechanism,
               tuple(sorted((k, repr(v)) for k, v in overrides.items())))
        if key not in self._cache:
            cfg = make_config(mechanism, **overrides)
            self._cache[key] = Simulator(workload, cfg).run()
        return self._cache[key]


@pytest.fixture(scope="session")
def sim_cache() -> _RunCache:
    return _RunCache()
