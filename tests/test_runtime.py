"""Tests for the experiment runtime: hashing, disk cache, parallel runner."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import CacheParams, SimConfig
from repro.core.engine import FrontEndEngine
from repro.core.mechanisms import make_config
from repro.experiments.common import run_cached
from repro.runtime import (
    SCHEMA_TAG,
    ExperimentRuntime,
    ResultCache,
    SimJob,
    canonicalize,
    config_digest,
    scale_token,
)

#: Tiny but real workload for runtime tests.
WL = "streaming"
SCALE = 0.05


def _jobs(*configs, workload=WL, scale=SCALE):
    return [SimJob(workload, cfg, scale) for cfg in configs]


class TestConfigDigest:
    def test_equal_configs_equal_digest(self):
        assert config_digest(make_config("boomerang")) == config_digest(
            make_config("boomerang")
        )

    def test_every_layer_contributes(self):
        """Fields the old hand-picked key ignored must change the digest."""
        base = SimConfig()
        variants = [
            replace(base, core=replace(base.core, fetch_width=4)),
            replace(base, core=replace(base.core, resolve_latency=10)),
            replace(base, core=replace(base.core, data_stall_bb_frac=0.5)),
            replace(base, core=replace(base.core, data_stall_cycles=5)),
            replace(
                base,
                memory=replace(base.memory, l1i=CacheParams(64 * 1024, 2)),
            ),
            replace(
                base,
                predictor=replace(base.predictor, tage_table_entries=2048),
            ),
            replace(base, mechanism="fdip"),
        ]
        digests = {config_digest(c) for c in variants}
        digests.add(config_digest(base))
        assert len(digests) == len(variants) + 1

    def test_canonicalize_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_scale_token_canonical(self):
        assert scale_token(0.25) == scale_token(0.250) == "0.25"


class TestRunCachedSoundness:
    def test_unlisted_field_no_longer_collides(self):
        """Regression: the old key ignored core.data_stall_cycles, so these
        two configs returned each other's cached results."""
        cfg_a = make_config("none")
        cfg_b = replace(cfg_a, core=replace(cfg_a.core, data_stall_cycles=1))
        a = run_cached(WL, cfg_a, workload_scale=SCALE)
        b = run_cached(WL, cfg_b, workload_scale=SCALE)
        assert a is not b
        assert a.raw["cycles"] != b.raw["cycles"]

    def test_memo_hit_is_identical_object(self):
        cfg = make_config("none")
        rt = ExperimentRuntime()
        assert rt.run_one(WL, cfg, SCALE) is rt.run_one(WL, cfg, SCALE)


class TestParallelEquivalence:
    def test_jobs2_bit_identical_to_serial(self):
        configs = [
            make_config("none"),
            make_config("next_line"),
            make_config("boomerang"),
            make_config("fdip"),
        ]
        serial = ExperimentRuntime(jobs=1).run_many(_jobs(*configs))
        parallel = ExperimentRuntime(jobs=2).run_many(_jobs(*configs))
        assert len(serial) == len(parallel) == len(configs)
        for s, p in zip(serial, parallel):
            assert s.workload == p.workload
            assert s.mechanism == p.mechanism
            assert s.raw == p.raw

    def test_run_many_dedupes_and_preserves_order(self):
        cfg = make_config("none")
        rt = ExperimentRuntime()
        out = rt.run_many(_jobs(cfg, cfg, cfg))
        assert rt.executed == 1
        assert out[0] is out[1] is out[2]


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cfg = make_config("boomerang")
        cold = ExperimentRuntime(cache_dir=tmp_path)
        cold_result = cold.run_one(WL, cfg, SCALE)
        stored = list((tmp_path / SCHEMA_TAG).rglob("*.json"))
        assert len(stored) == 1

        warm = ExperimentRuntime(cache_dir=tmp_path)
        warm_result = warm.run_one(WL, cfg, SCALE)
        assert warm.executed == 0 and warm.disk.hits == 1
        assert warm_result.raw == cold_result.raw
        assert warm_result.mechanism == cold_result.mechanism

    def test_warm_run_never_builds_an_engine(self, tmp_path, monkeypatch):
        cfg = make_config("none")
        ExperimentRuntime(cache_dir=tmp_path).run_one(WL, cfg, SCALE)

        def _boom(self, *a, **k):
            raise AssertionError("warm run must not simulate")

        monkeypatch.setattr(FrontEndEngine, "run", _boom)
        warm = ExperimentRuntime(cache_dir=tmp_path)
        result = warm.run_one(WL, cfg, SCALE)
        assert result.raw["retired_instrs"] > 0

    def test_schema_or_digest_mismatch_is_a_miss(self, tmp_path):
        cfg = make_config("none")
        rt = ExperimentRuntime(cache_dir=tmp_path)
        rt.run_one(WL, cfg, SCALE)
        path = next((tmp_path / SCHEMA_TAG).rglob("*.json"))
        path.write_text(path.read_text().replace(SCHEMA_TAG, "engine-v0"))
        fresh = ResultCache(tmp_path)
        assert fresh.get(WL, scale_token(SCALE), config_digest(cfg)) is None

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cfg = make_config("none")
        rt = ExperimentRuntime(cache_dir=tmp_path)
        rt.run_one(WL, cfg, SCALE)
        path = next((tmp_path / SCHEMA_TAG).rglob("*.json"))
        path.write_text("{ truncated")
        fresh = ResultCache(tmp_path)
        assert fresh.get(WL, scale_token(SCALE), config_digest(cfg)) is None

    def test_valid_json_non_dict_record_is_a_miss(self, tmp_path):
        # A bare JSON array parses fine but is not a record; it used to
        # raise AttributeError inside get() instead of reading as a miss.
        cfg = make_config("none")
        rt = ExperimentRuntime(cache_dir=tmp_path)
        rt.run_one(WL, cfg, SCALE)
        path = next((tmp_path / SCHEMA_TAG).rglob("*.json"))
        path.write_text('["not", "a", "record"]')
        fresh = ResultCache(tmp_path)
        assert fresh.get(WL, scale_token(SCALE), config_digest(cfg)) is None

    def test_parallel_batch_populates_disk(self, tmp_path):
        configs = [make_config("none"), make_config("next_line")]
        rt = ExperimentRuntime(jobs=2, cache_dir=tmp_path)
        rt.run_many(_jobs(*configs))
        assert len(list((tmp_path / SCHEMA_TAG).rglob("*.json"))) == 2


class TestOptionPrecedence:
    """Explicit kwargs beat REPRO_* beat defaults — resolve_options is the
    single place that rule lives (and the CLIs forward flags as kwargs)."""

    @pytest.fixture(autouse=True)
    def _isolated_global_runtime(self, monkeypatch):
        from repro.runtime import runner

        monkeypatch.setattr(runner, "_RUNTIME", None)

    def test_defaults(self, monkeypatch):
        from repro.runtime import resolve_options

        for var in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_BACKEND"):
            monkeypatch.delenv(var, raising=False)
        options = resolve_options()
        assert (options.jobs, options.cache_dir, options.backend) == (1, None, "auto")

    def test_env_beats_defaults(self, monkeypatch, tmp_path):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        options = resolve_options()
        assert options.jobs == 3
        assert options.cache_dir == str(tmp_path)
        assert options.backend == "serial"

    def test_explicit_kwargs_beat_env(self, monkeypatch, tmp_path):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        monkeypatch.setenv("REPRO_BACKEND", "broker")
        options = resolve_options(jobs=2, cache_dir=tmp_path, backend="serial")
        assert options.jobs == 2
        assert options.cache_dir == str(tmp_path)
        assert options.backend == "serial"

    def test_explicit_kwarg_shields_stale_env(self, monkeypatch):
        """A malformed REPRO_* value must not break an explicit choice —
        the variable is not even read when the kwarg is given."""
        from repro.runtime import configure_runtime

        monkeypatch.setenv("REPRO_JOBS", "bogus")
        monkeypatch.setenv("REPRO_BACKEND", "bogus-backend")
        runtime = configure_runtime(jobs=2, backend="pool")
        assert runtime.jobs == 2
        assert runtime.backend == "pool"

    def test_stale_env_backend_lists_valid_names(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.runtime import BACKEND_NAMES, resolve_options

        monkeypatch.setenv("REPRO_BACKEND", "bogus-backend")
        with pytest.raises(ConfigError) as err:
            resolve_options()
        for name in BACKEND_NAMES:
            assert name in str(err.value)

    def test_invalid_env_jobs_still_rejected_when_consulted(self, monkeypatch):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_JOBS", "zero point five")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_options()

    def test_fidelity_defaults(self, monkeypatch):
        from repro.runtime import resolve_options

        for var in (
            "REPRO_FIDELITY",
            "REPRO_ANALYTIC_ANCHORS",
            "REPRO_ANALYTIC_MAX_ERR",
        ):
            monkeypatch.delenv(var, raising=False)
        options = resolve_options()
        assert options.fidelity == "exact"
        assert options.anchors == "3x2"
        assert options.max_rel_err == 0.10

    def test_fidelity_env_beats_defaults(self, monkeypatch):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_FIDELITY", "hybrid")
        monkeypatch.setenv("REPRO_ANALYTIC_ANCHORS", "4x2")
        monkeypatch.setenv("REPRO_ANALYTIC_MAX_ERR", "0.25")
        options = resolve_options()
        assert options.fidelity == "hybrid"
        assert options.anchors == "4x2"
        assert options.max_rel_err == 0.25

    def test_fidelity_explicit_beats_env(self, monkeypatch):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_FIDELITY", "hybrid")
        monkeypatch.setenv("REPRO_ANALYTIC_ANCHORS", "4x3")
        monkeypatch.setenv("REPRO_ANALYTIC_MAX_ERR", "0.25")
        options = resolve_options(
            fidelity="analytic", anchors="3x2", max_rel_err=0.05
        )
        assert options.fidelity == "analytic"
        assert options.anchors == "3x2"
        assert options.max_rel_err == 0.05

    def test_fidelity_explicit_shields_stale_env(self, monkeypatch):
        """Malformed REPRO_ANALYTIC_* values are not even read when the
        corresponding kwarg is given."""
        from repro.runtime import configure_runtime

        monkeypatch.setenv("REPRO_FIDELITY", "bogus-tier")
        monkeypatch.setenv("REPRO_ANALYTIC_ANCHORS", "not-a-grid")
        monkeypatch.setenv("REPRO_ANALYTIC_MAX_ERR", "many")
        runtime = configure_runtime(
            fidelity="analytic", anchors="3x2", max_rel_err=0.2
        )
        assert runtime.fidelity == "analytic"
        assert runtime.anchors == "3x2"
        assert runtime.max_rel_err == 0.2

    def test_stale_env_fidelity_lists_valid_names(self, monkeypatch):
        from repro.analytic import FIDELITY_NAMES
        from repro.errors import ConfigError
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_FIDELITY", "bogus-tier")
        with pytest.raises(ConfigError) as err:
            resolve_options()
        for name in FIDELITY_NAMES:
            assert name in str(err.value)

    def test_invalid_env_anchors_rejected_when_consulted(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_ANALYTIC_ANCHORS", "1x1")
        with pytest.raises(ConfigError):
            resolve_options()

    def test_invalid_env_max_err_rejected_when_consulted(self, monkeypatch):
        from repro.runtime import resolve_options

        monkeypatch.setenv("REPRO_ANALYTIC_MAX_ERR", "many")
        with pytest.raises(ValueError, match="REPRO_ANALYTIC_MAX_ERR"):
            resolve_options()
        monkeypatch.setenv("REPRO_ANALYTIC_MAX_ERR", "1.5")
        with pytest.raises(ValueError, match="REPRO_ANALYTIC_MAX_ERR"):
            resolve_options()


class TestEngineCounters:
    def test_ftq_flushes_surfaced(self):
        """Squash accounting is externally observable via ftq_flushes."""
        res = run_cached(WL, make_config("none"), workload_scale=SCALE)
        squashes = (
            res.raw["squash_btb"] + res.raw["squash_cond"] + res.raw["squash_target"]
        )
        assert res.raw["ftq_flushes"] == squashes > 0
