"""Fault-injection harness: real subprocesses, killed at precise moments.

The broker's and the shard compactor's crash-safety claims are about
processes dying with *no* chance to clean up — ``finally`` blocks,
``atexit`` handlers and buffered writes all skipped. Asserting that from
inside one pytest process is impossible, so this harness spawns the real
entry points (``python -m repro.runtime worker`` / ``compact``) as
subprocesses and kills them two ways:

* **deterministically**, via the ``REPRO_FAULTPOINTS`` environment
  variable (:mod:`repro.runtime.faultpoints`): the subprocess SIGKILLs
  *itself* the Nth time it passes a named point — e.g. the instant after
  claiming a job, or seven entries into a shard rewrite;
* **externally**, with ``os.kill(pid, SIGKILL)`` once a polled queue
  condition shows the victim mid-flight.

Helpers here never assert; tests in ``tests/test_faults.py`` do.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

#: The repo's import root, so subprocesses resolve the same ``repro``.
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _subprocess_env(
    faultpoints: str | None = None, **extra: object
) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTPOINTS", None)
    if faultpoints:
        env["REPRO_FAULTPOINTS"] = faultpoints
    for key, value in extra.items():
        env[key] = str(value)
    return env


def spawn_worker(
    cache_dir: os.PathLike,
    worker_id: str = "fi-worker",
    faultpoints: str | None = None,
    drain: bool = False,
    max_idle: float | None = None,
    lease_seconds: float | None = None,
) -> subprocess.Popen:
    """Start a real ``python -m repro.runtime worker`` subprocess."""
    cmd = [
        sys.executable,
        "-m",
        "repro.runtime",
        "worker",
        "--cache-dir",
        str(cache_dir),
        "--worker-id",
        worker_id,
    ]
    if drain:
        cmd.append("--drain")
    if max_idle is not None:
        cmd += ["--max-idle", str(max_idle)]
    extra = {}
    if lease_seconds is not None:
        extra["REPRO_BROKER_LEASE"] = lease_seconds
    return subprocess.Popen(
        cmd,
        env=_subprocess_env(faultpoints, **extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def spawn_compact(
    cache_dir: os.PathLike, faultpoints: str | None = None
) -> subprocess.Popen:
    """Start a real ``python -m repro.runtime compact`` subprocess."""
    cmd = [
        sys.executable,
        "-m",
        "repro.runtime",
        "compact",
        "--cache-dir",
        str(cache_dir),
    ]
    return subprocess.Popen(
        cmd,
        env=_subprocess_env(faultpoints),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def spawn_warehouse_refresh(
    cache_dir: os.PathLike,
    faultpoints: str | None = None,
    results_dir: os.PathLike | None = None,
) -> subprocess.Popen:
    """Start a real ``python -m repro.warehouse refresh`` subprocess.

    ``results_dir=None`` passes ``--no-bench`` so the refresh under test
    touches only the caches the test populated, never the repo's
    committed benchmark payloads.
    """
    cmd = [
        sys.executable,
        "-m",
        "repro.warehouse",
        "refresh",
        "--cache-dir",
        str(cache_dir),
    ]
    if results_dir is None:
        cmd.append("--no-bench")
    else:
        cmd += ["--results-dir", str(results_dir)]
    return subprocess.Popen(
        cmd,
        env=_subprocess_env(faultpoints),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_exit(proc: subprocess.Popen, timeout: float = 180.0) -> int:
    """Block until the subprocess exits; kill and fail loudly on timeout."""
    try:
        proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        raise
    return proc.returncode


def wait_for(
    predicate,
    timeout: float = 60.0,
    interval: float = 0.02,
    message: str = "condition",
):
    """Poll ``predicate`` until truthy; raises ``TimeoutError`` otherwise."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"timed out after {timeout}s waiting for {message}")


def sigkill(proc: subprocess.Popen) -> None:
    """The external power-cut: SIGKILL, no signal handlers, no cleanup."""
    os.kill(proc.pid, 9)
