"""Integration tests: the paper's qualitative claims on pressured workloads.

These run at MEDIUM_SCALE so the 32 KB L1-I and 2K-entry BTB are genuinely
over-subscribed; each asserts a *shape* from the paper's evaluation, not an
absolute number.
"""

import pytest

from repro import Simulator, make_config


class TestFigure1Shape:
    def test_perfect_l1i_meaningful_gain(self, medium_workload, sim_cache):
        base = sim_cache.run(medium_workload, "none")
        perfect = sim_cache.run(medium_workload, "none", perfect_l1i=True)
        assert perfect.speedup_over(base) > 1.08  # paper: +11..47%

    def test_perfect_btb_adds_on_top(self, medium_oltp_workload, sim_cache):
        base = sim_cache.run(medium_oltp_workload, "none")
        p1 = sim_cache.run(medium_oltp_workload, "none", perfect_l1i=True)
        p2 = sim_cache.run(
            medium_oltp_workload, "none", perfect_l1i=True, perfect_btb=True
        )
        assert p2.speedup_over(base) > p1.speedup_over(base) + 0.03  # paper: +6..40%

    def test_streaming_smallest_opportunity(
        self, medium_streaming_workload, medium_oltp_workload, sim_cache
    ):
        s_base = sim_cache.run(medium_streaming_workload, "none")
        s_perf = sim_cache.run(medium_streaming_workload, "none", perfect_l1i=True)
        d_base = sim_cache.run(medium_oltp_workload, "none")
        d_perf = sim_cache.run(medium_oltp_workload, "none", perfect_l1i=True)
        assert s_perf.speedup_over(s_base) < d_perf.speedup_over(d_base)


class TestFigure7Shape:
    def test_l1i_only_schemes_keep_btb_squashes(self, medium_oltp_workload, sim_cache):
        base = sim_cache.run(medium_oltp_workload, "none")
        for mech in ("next_line", "dip", "fdip", "shift"):
            res = sim_cache.run(medium_oltp_workload, mech)
            assert res.btb_squashes_per_kilo > 0.5 * base.btb_squashes_per_kilo, mech

    def test_boomerang_eliminates_btb_squashes(self, medium_oltp_workload, sim_cache):
        res = sim_cache.run(medium_oltp_workload, "boomerang")
        assert res.squashes_btb == 0

    def test_confluence_eliminates_most(self, medium_oltp_workload, sim_cache):
        base = sim_cache.run(medium_oltp_workload, "none")
        conf = sim_cache.run(medium_oltp_workload, "confluence")
        # Paper: >85% at full scale; the scaled-down test workload gives
        # the prefetcher less recurrence, so the bar here is "most".
        assert conf.squashes_btb < 0.25 * base.squashes_btb

    def test_complete_schemes_halve_total_squashes(self, medium_oltp_workload, sim_cache):
        fdip = sim_cache.run(medium_oltp_workload, "fdip")
        boom = sim_cache.run(medium_oltp_workload, "boomerang")
        assert boom.squashes_per_kilo < 0.75 * fdip.squashes_per_kilo


class TestFigure8Shape:
    @pytest.mark.parametrize("mech", ["next_line", "dip", "fdip", "pif", "shift",
                                      "confluence", "boomerang"])
    def test_everyone_covers_some_stalls(self, mech, medium_workload, sim_cache):
        base = sim_cache.run(medium_workload, "none")
        res = sim_cache.run(medium_workload, mech)
        assert res.coverage_over(base) > 0.15, mech

    def test_fdip_beats_next_line(self, medium_workload, sim_cache):
        base = sim_cache.run(medium_workload, "none")
        nl = sim_cache.run(medium_workload, "next_line")
        fdip = sim_cache.run(medium_workload, "fdip")
        assert fdip.coverage_over(base) > nl.coverage_over(base)

    def test_pif_beats_shift(self, medium_workload, sim_cache):
        """SHIFT pays LLC latency on stream redirects; PIF does not."""
        base = sim_cache.run(medium_workload, "none")
        pif = sim_cache.run(medium_workload, "pif")
        shift = sim_cache.run(medium_workload, "shift")
        assert pif.coverage_over(base) >= shift.coverage_over(base)


class TestFigure9Shape:
    def test_boomerang_beats_fdip(self, medium_oltp_workload, sim_cache):
        base = sim_cache.run(medium_oltp_workload, "none")
        fdip = sim_cache.run(medium_oltp_workload, "fdip")
        boom = sim_cache.run(medium_oltp_workload, "boomerang")
        assert boom.speedup_over(base) > fdip.speedup_over(base)

    def test_complete_schemes_beat_l1i_only(self, medium_oltp_workload, sim_cache):
        base = sim_cache.run(medium_oltp_workload, "none")
        shift = sim_cache.run(medium_oltp_workload, "shift")
        conf = sim_cache.run(medium_oltp_workload, "confluence")
        boom = sim_cache.run(medium_oltp_workload, "boomerang")
        assert conf.speedup_over(base) > shift.speedup_over(base)
        assert boom.speedup_over(base) > shift.speedup_over(base)

    def test_every_mechanism_speeds_up(self, medium_workload, sim_cache):
        base = sim_cache.run(medium_workload, "none")
        for mech in ("next_line", "dip", "fdip", "pif", "shift", "confluence",
                     "boomerang"):
            res = sim_cache.run(medium_workload, mech)
            assert res.speedup_over(base) > 1.0, mech


class TestLatencySensitivity:
    """Figure 11 shape: lower LLC latency shrinks absolute gains."""

    def test_crossbar_shrinks_gains(self, medium_workload):
        from dataclasses import replace

        def xbar(cfg):
            return replace(
                cfg,
                memory=replace(
                    cfg.memory, noc=replace(cfg.memory.noc, kind="crossbar")
                ),
            )

        base_mesh = Simulator(medium_workload, make_config("none")).run()
        boom_mesh = Simulator(medium_workload, make_config("boomerang")).run()
        base_xbar = Simulator(medium_workload, xbar(make_config("none"))).run()
        boom_xbar = Simulator(medium_workload, xbar(make_config("boomerang"))).run()
        assert boom_xbar.speedup_over(base_xbar) < boom_mesh.speedup_over(base_mesh)
        assert boom_xbar.speedup_over(base_xbar) > 1.0


class TestThrottleShape:
    """Figure 10 shape: some sequential prefetch under a BTB miss helps OLTP."""

    def test_throttle_two_beats_none_on_oltp(self, medium_oltp_workload):
        from dataclasses import replace

        def with_throttle(n):
            cfg = make_config("boomerang")
            return replace(cfg, prefetch=replace(cfg.prefetch, throttle_blocks=n))

        none = Simulator(medium_oltp_workload, with_throttle(0)).run()
        two = Simulator(medium_oltp_workload, with_throttle(2)).run()
        assert two.ipc > none.ipc


class TestBoomerangInternals:
    def test_btb_prefetch_buffer_consumed(self, medium_oltp_workload, sim_cache):
        res = sim_cache.run(medium_oltp_workload, "boomerang")
        assert res.raw["btb_pfb_hits"] > 0
        assert res.raw["btb_pfb_hits"] <= res.raw["btb_pfb_inserts"]

    def test_predecode_fetches_happen(self, medium_oltp_workload, sim_cache):
        res = sim_cache.run(medium_oltp_workload, "boomerang")
        assert res.raw["predecode_fetches"] > 0

    def test_prefetch_buffer_promotions(self, medium_workload, sim_cache):
        res = sim_cache.run(medium_workload, "boomerang")
        assert res.raw["l1i_pb_promotions"] > 0
