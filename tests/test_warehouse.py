"""Warehouse suite: consolidation state machine, queries, tiers, gate.

The contracts under test, in order:

* **Schema round-trip** — a warehouse written by this code is re-opened
  by this code; one written under a different ``WAREHOUSE_SCHEMA`` is
  refused, never misread.
* **Consolidation state machine** — a seeded property test interleaves
  cache puts/overwrites with ``compact`` / ``prune`` / stale-tag decay
  and asserts, after every cycle, that the incrementally-refreshed
  warehouse is *exactly* what a from-scratch rebuild of the same stores
  produces (the ``test_shards.py`` idiom, lifted to the SQL layer).
* **Layout independence** — the acceptance criterion: ``contour
  dense-latency-btb`` renders bit-identically whether the cache is flat
  loose records, compacted shards, or a mixed layout.
* **Tier interplay** — analytic cells surface their
  ``analytic_rel_err_bound`` and can never shadow an exact row (the PR 8
  isolation invariant, enforced by the lookup SQL).
* **Revision history** — every applied change writes exactly one
  revision; converged refreshes write none.
* **Gate** — tracked benchmark metrics drift → exit 1; within tolerance
  → exit 0; ``--update`` round-trips.

Golden fixtures live under ``tests/golden/`` and are compared
bit-for-bit; regenerate them only for a deliberate format change.
"""

from __future__ import annotations

import json
import random
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.analytic.store import ANALYTIC_SCHEMA_TAG, AnalyticStore
from repro.core.results import SimulationResult
from repro.errors import ConfigError
from repro.experiments.common import get_scale
from repro.experiments.sweeps import get_sweep
from repro.runtime import SimJob, compact_cache
from repro.runtime.cache import SCHEMA_TAG, ResultCache, prune_cache
from repro.warehouse import (
    QUERY_NAMES,
    WAREHOUSE_SCHEMA,
    connect,
    db_path,
    lookup_cell,
    read_status,
    refresh_warehouse,
)
from repro.warehouse.gate import collect_metrics, run_gate, write_baseline
from repro.warehouse.queries import QUERIES, render_contour, render_trajectory

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

SCALE_TOK = "0.25"
STALE_TAG = "engine-v1-000000000000"


def _digest(rng: random.Random) -> str:
    return "".join(rng.choice("0123456789abcdef") for _ in range(64))


def _result(workload: str, cycles: float, mechanism: str = "fdip") -> SimulationResult:
    return SimulationResult(
        workload=workload,
        mechanism=mechanism,
        raw={"cycles": cycles, "retired_instrs": 1500.0},
    )


def _put_stale(cache_dir: Path, workload: str, digest: str, cycles: float) -> None:
    """A loose record under a stale (pruneable) engine schema tag."""
    path = cache_dir / STALE_TAG / workload / f"s{SCALE_TOK}__{digest[:16]}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "schema": STALE_TAG,
                "workload": workload,
                "scale": SCALE_TOK,
                "config_digest": digest,
                "mechanism": "fdip",
                "raw": {"cycles": cycles, "retired_instrs": 1500.0},
            }
        )
    )


def _active_cells(cache_dir: Path) -> dict[tuple[str, str, str, str], str]:
    """(workload, scale, digest, tag) -> raw JSON, active exact cells only."""
    conn = connect(cache_dir)
    try:
        return {
            (str(r[0]), str(r[1]), str(r[2]), str(r[3])): str(r[4])
            for r in conn.execute(
                "SELECT workload, scale, config_digest, schema_tag, raw"
                " FROM cells WHERE active = 1"
            )
        }
    finally:
        conn.close()


def _rebuild_active(cache_dir: Path, scratch: Path) -> dict[tuple[str, str, str, str], str]:
    """A from-scratch warehouse over a copy of the same stores."""
    clone = scratch / "rebuild"
    if clone.exists():
        shutil.rmtree(clone)
    shutil.copytree(
        cache_dir, clone, ignore=shutil.ignore_patterns("warehouse.sqlite*")
    )
    refresh_warehouse(clone)
    return _active_cells(clone)


# ---------------------------------------------------------------------------
# Schema round-trip
# ---------------------------------------------------------------------------


class TestSchema:
    def test_empty_refresh_roundtrips(self, tmp_path):
        stats = refresh_warehouse(tmp_path)
        assert stats.changes == 0
        conn = connect(tmp_path)
        status = read_status(conn)
        conn.close()
        assert status.schema == WAREHOUSE_SCHEMA
        assert status.active_cells == 0
        assert status.refreshes == 1

    def test_foreign_schema_is_refused(self, tmp_path):
        connect(tmp_path).close()
        raw = sqlite3.connect(db_path(tmp_path))
        raw.execute("UPDATE meta SET value = 'warehouse-v0' WHERE key = 'schema'")
        raw.commit()
        raw.close()
        with pytest.raises(ConfigError, match="warehouse-v0"):
            connect(tmp_path)

    def test_query_registry_matches_names(self):
        assert set(QUERY_NAMES) == set(QUERIES)


# ---------------------------------------------------------------------------
# Consolidation state machine (property test)
# ---------------------------------------------------------------------------


class TestConsolidationStateMachine:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_lifecycle_always_equals_rebuild(self, tmp_path, seed):
        """Puts, overwrites, compaction, stale decay, pruning and repeated
        refreshes, in random interleavings: after every cycle the
        incrementally-consolidated warehouse must equal both the test's
        own model of the stores and a from-scratch rebuild."""
        rng = random.Random(seed)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        cache = ResultCache(cache_dir)
        workloads = ("wlA", "wlB", "wlC")
        #: (workload, scale, digest, tag) -> cycles, mirroring the stores.
        expected: dict[tuple[str, str, str, str], float] = {}
        graveyard: dict[tuple[str, str, str, str], float] = {}
        for cycle in range(6):
            for _ in range(rng.randrange(1, 6)):
                wl = rng.choice(workloads)
                digest = _digest(rng)
                cycles = float(rng.randrange(500, 5000))
                cache.put(wl, SCALE_TOK, digest, _result(wl, cycles))
                expected[(wl, SCALE_TOK, digest, SCHEMA_TAG)] = cycles
            current = sorted(k for k in expected if k[3] == SCHEMA_TAG)
            if current and rng.random() < 0.7:
                key = rng.choice(current)
                cycles = float(rng.randrange(5000, 9000))
                cache.put(key[0], key[1], key[2], _result(key[0], cycles))
                expected[key] = cycles
            action = rng.choice(
                ("compact", "stale-put", "prune-stale", "reactivate", "noop")
            )
            if action == "compact":
                compact_cache(cache_dir)
            elif action == "stale-put":
                digest = _digest(rng)
                cycles = float(rng.randrange(100, 400))
                _put_stale(cache_dir, "wlA", digest, cycles)
                expected[("wlA", SCALE_TOK, digest, STALE_TAG)] = cycles
            elif action == "prune-stale":
                prune_cache(cache_dir)
                for key in [k for k in expected if k[3] == STALE_TAG]:
                    graveyard[key] = expected.pop(key)
            elif action == "reactivate" and graveyard:
                key = rng.choice(sorted(graveyard))
                cycles = graveyard.pop(key)
                _put_stale(cache_dir, key[0], key[2], cycles)
                expected[key] = cycles
            refresh_warehouse(cache_dir)
            active = _active_cells(cache_dir)
            assert set(active) == set(expected), f"cycle {cycle} ({action})"
            for key, raw_json in active.items():
                assert json.loads(raw_json)["cycles"] == expected[key]
            assert active == _rebuild_active(cache_dir, tmp_path)
        # Converged: one more refresh applies nothing.
        assert refresh_warehouse(cache_dir).changes == 0

    def test_revision_history_is_exactly_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"wl{i}", SCALE_TOK, f"{i:064x}", _result(f"wl{i}", 1000.0 + i))
        first = refresh_warehouse(tmp_path)
        assert (first.inserted, first.changes) == (5, 5)
        # Overwrite one, drop nothing: exactly one update revision.
        cache.put("wl0", SCALE_TOK, f"{0:064x}", _result("wl0", 4242.0))
        second = refresh_warehouse(tmp_path)
        assert (second.inserted, second.updated, second.deactivated) == (0, 1, 0)
        third = refresh_warehouse(tmp_path)
        assert third.changes == 0
        conn = connect(tmp_path)
        try:
            actions = [
                (str(r[0]), int(r[1]))
                for r in conn.execute(
                    "SELECT action, COUNT(*) FROM revisions GROUP BY action"
                    " ORDER BY action"
                )
            ]
            assert actions == [("insert", 5), ("update", 1)]
            assert read_status(conn).refreshes == 3
        finally:
            conn.close()

    def test_prune_then_reput_is_deactivate_then_reactivate(self, tmp_path):
        _put_stale(Path(tmp_path), "wl", "a" * 64, 777.0)
        refresh_warehouse(tmp_path)
        prune_cache(tmp_path)
        stats = refresh_warehouse(tmp_path)
        assert stats.deactivated == 1
        _put_stale(Path(tmp_path), "wl", "a" * 64, 777.0)
        stats = refresh_warehouse(tmp_path)
        assert (stats.reactivated, stats.inserted) == (1, 0)
        conn = connect(tmp_path)
        try:
            actions = [
                str(r[0])
                for r in conn.execute("SELECT action FROM revisions ORDER BY revision_id")
            ]
            assert actions == ["insert", "deactivate", "reactivate"]
        finally:
            conn.close()


# ---------------------------------------------------------------------------
# Layout independence (the acceptance criterion) and golden queries
# ---------------------------------------------------------------------------


def _synthetic_records(sweep: str) -> list[tuple[str, str, str, str, dict]]:
    """Deterministic synthetic results for every unique cell of a sweep.

    Cycles are a pure function of (workload index, mechanism, llc, btb),
    so the expected query output is frozen by the sweep definition alone —
    independent of config digests, schema tags, or insertion order.
    """
    spec = get_sweep(sweep)
    scale = get_scale("quick")
    workloads = spec.workloads("paper")
    records: dict[tuple[str, str, str], tuple[str, str, str, str, dict]] = {}
    for point in spec.points(scale):
        settings = dict(point.settings)
        llc = int(str(settings.get("llc_latency", 30)))
        btb = int(str(settings.get("btb_entries", 8192)))
        for iw, wl in enumerate(workloads):
            base_cycles = 1000.0 + 3.0 * llc + 7.0 * btb.bit_length() + 13.0 * iw
            mech_factor = {"fdip": 0.84, "boomerang": 0.78}.get(point.mechanism, 0.9)
            for cfg, mech, cycles in (
                (point.baseline(), "none", base_cycles),
                (point.config(), point.mechanism, base_cycles * mech_factor + llc / 8),
            ):
                key = SimJob(wl, cfg, scale.workload_scale).key
                records[key] = (
                    key[0],
                    key[1],
                    key[2],
                    mech,
                    {"cycles": cycles, "retired_instrs": 1200.0},
                )
    return list(records.values())


def _seed_layout(
    cache_dir: Path,
    records: list[tuple[str, str, str, str, dict]],
    layout: str,
) -> None:
    cache = ResultCache(cache_dir)
    for wl, scale_tok, digest, mech, raw in records:
        cache.put(wl, scale_tok, digest, SimulationResult(wl, mech, dict(raw)))
    if layout in ("shard", "mixed"):
        compact_cache(cache_dir)
    if layout == "mixed":
        # Every third record also gets a fresh loose copy beside the shard
        # (the state right after new results land on a compacted cache).
        for wl, scale_tok, digest, mech, raw in records[::3]:
            cache.put(wl, scale_tok, digest, SimulationResult(wl, mech, dict(raw)))


class TestLayoutIndependence:
    def test_dense_contour_bit_identical_across_layouts(self, tmp_path):
        records = _synthetic_records("dense-latency-btb")
        assert len(records) == 720  # the full ROADMAP grid, baselines included
        outputs = {}
        for layout in ("flat", "shard", "mixed"):
            cache_dir = tmp_path / layout
            cache_dir.mkdir()
            _seed_layout(cache_dir, records, layout)
            refresh_warehouse(cache_dir)
            conn = connect(cache_dir)
            try:
                assert read_status(conn).active_cells == 720
                outputs[layout] = render_contour(
                    conn, "dense-latency-btb", scale="quick", workload_set="paper"
                )
            finally:
                conn.close()
        assert outputs["flat"] == outputs["shard"] == outputs["mixed"]
        assert "#### fdip" in outputs["flat"] and "#### boomerang" in outputs["flat"]
        assert "no consolidated result yet" not in outputs["flat"]  # grid complete

    def test_contour_smoke_matches_golden(self, tmp_path):
        """The smoke-sweep contour, bit-for-bit against the committed
        fixture. Only a deliberate rendering/format change may touch the
        golden file."""
        records = _synthetic_records("smoke")
        _seed_layout(tmp_path, records, "flat")
        refresh_warehouse(tmp_path)
        conn = connect(tmp_path)
        try:
            output = render_contour(conn, "smoke", scale="quick", workload_set="paper")
        finally:
            conn.close()
        golden = (GOLDEN_DIR / "contour_smoke.md").read_text()
        assert output == golden


# ---------------------------------------------------------------------------
# Analytic/exact tier interplay at the SQL layer
# ---------------------------------------------------------------------------


def _analytic_result(workload: str, cycles: float, bound: float) -> SimulationResult:
    return SimulationResult(
        workload=workload,
        mechanism="fdip",
        raw={
            "cycles": cycles,
            "retired_instrs": 1500.0,
            "analytic": 1.0,
            "analytic_rel_err_bound": bound,
        },
    )


class TestTierInterplay:
    def test_exact_row_never_shadowed_by_analytic(self, tmp_path):
        digest = "ab" * 32
        ResultCache(tmp_path).put(
            "wl", SCALE_TOK, digest, _result("wl", 1000.0)
        )
        AnalyticStore(tmp_path).put(
            "wl", SCALE_TOK, digest, _analytic_result("wl", 900.0, 0.05)
        )
        refresh_warehouse(tmp_path)
        conn = connect(tmp_path)
        try:
            status = read_status(conn)
            assert status.active_cells == 2  # both tiers consolidated...
            view = lookup_cell(conn, "wl", SCALE_TOK, digest)
            assert view is not None
            assert view.fidelity == "exact"  # ...but exact always wins
            assert view.ipc == 1500.0 / 1000.0
            assert view.rel_err_bound == 0.0
            by_tier = dict(
                (tag, count) for tag, _, count in status.by_tag
            )
            assert by_tier == {SCHEMA_TAG: 1, ANALYTIC_SCHEMA_TAG: 1}
        finally:
            conn.close()

    def test_analytic_only_cell_surfaces_its_bound(self, tmp_path):
        digest = "cd" * 32
        AnalyticStore(tmp_path).put(
            "wl", SCALE_TOK, digest, _analytic_result("wl", 800.0, 0.0123)
        )
        refresh_warehouse(tmp_path)
        conn = connect(tmp_path)
        try:
            view = lookup_cell(conn, "wl", SCALE_TOK, digest)
            assert view is not None
            assert view.fidelity == "analytic"
            assert view.rel_err_bound == 0.0123
        finally:
            conn.close()

    def test_contour_marks_analytic_cells_and_reports_bound(self, tmp_path):
        """Smoke grid with exact baselines but analytic mechanism cells:
        every rendered value carries the ``~`` mark and the footer states
        the worst combined error bound."""
        spec = get_sweep("smoke")
        scale = get_scale("quick")
        workloads = spec.workloads("paper")
        cache = ResultCache(tmp_path)
        analytic = AnalyticStore(tmp_path)
        for point in spec.points(scale):
            for wl in workloads:
                base_key = SimJob(wl, point.baseline(), scale.workload_scale).key
                cache.put(*base_key, _result(wl, 1000.0, mechanism="none"))
                mech_key = SimJob(wl, point.config(), scale.workload_scale).key
                analytic.put(*mech_key, _analytic_result(wl, 800.0, 0.02))
        refresh_warehouse(tmp_path)
        conn = connect(tmp_path)
        try:
            output = render_contour(conn, "smoke", scale="quick", workload_set="paper")
        finally:
            conn.close()
        assert "1.2500~" in output  # 1000/800, marked as estimated
        assert "worst combined rel. err bound 0.0200" in output
        assert "no consolidated result yet" not in output


# ---------------------------------------------------------------------------
# Bench ingestion, trajectory, and the regression gate
# ---------------------------------------------------------------------------


def _write_bench(results_dir: Path, name: str, payload: dict) -> None:
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestBenchAndGate:
    def test_trajectory_tracks_payload_changes(self, tmp_path):
        results = tmp_path / "results"
        _write_bench(results, "demo", {"cells": 10, "speedup": 2.0})
        refresh_warehouse(tmp_path, results_dir=results)
        refresh_warehouse(tmp_path, results_dir=results)  # unchanged: no row
        _write_bench(results, "demo", {"cells": 10, "speedup": 2.5})
        refresh_warehouse(tmp_path, results_dir=results)
        conn = connect(tmp_path)
        try:
            history = conn.execute(
                "SELECT refresh_id, speedup FROM bench_history ORDER BY refresh_id"
            ).fetchall()
            assert [(int(r[0]), float(r[1])) for r in history] == [(1, 2.0), (3, 2.5)]
            output = render_trajectory(conn)
        finally:
            conn.close()
        assert "| demo | 1 |" in output and "| demo | 3 |" in output
        assert "2.5000" in output

    def test_gate_passes_within_tolerance_and_fails_on_drift(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline.json"
        _write_bench(
            results,
            "demo",
            {"cells": 100, "max_rel_err": 0.010, "bounds_ok": True, "speedup": 3.0},
        )
        refresh_warehouse(tmp_path, results_dir=results)
        conn = connect(tmp_path)
        try:
            metrics = collect_metrics(conn)
            # Wall-clock speedup is untracked by design; the rest are.
            assert set(metrics) == {
                "demo.cells",
                "demo.max_rel_err",
                "demo.bounds_ok",
            }
            code, _ = run_gate(conn, baseline, update=True)
            assert code == 0
            code, lines = run_gate(conn, baseline, tolerance=0.05)
            assert code == 0 and lines[-1].startswith("gate passed")
        finally:
            conn.close()
        # Drift one tracked metric past tolerance, flip the invariant bool.
        _write_bench(
            results,
            "demo",
            {"cells": 100, "max_rel_err": 0.020, "bounds_ok": False, "speedup": 3.0},
        )
        refresh_warehouse(tmp_path, results_dir=results)
        conn = connect(tmp_path)
        try:
            code, lines = run_gate(conn, baseline, tolerance=0.05)
        finally:
            conn.close()
        assert code == 1
        report = "\n".join(lines)
        assert "FAIL demo.max_rel_err" in report
        assert "FAIL demo.bounds_ok" in report
        assert "ok   demo.cells" in report

    def test_gate_fails_when_tracked_bench_vanishes(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline.json"
        _write_bench(results, "gone", {"cells": 5})
        refresh_warehouse(tmp_path, results_dir=results)
        conn = connect(tmp_path)
        try:
            write_baseline(baseline, collect_metrics(conn))
        finally:
            conn.close()
        (results / "BENCH_gone.json").unlink()
        refresh_warehouse(tmp_path, results_dir=results)
        conn = connect(tmp_path)
        try:
            code, lines = run_gate(conn, baseline)
        finally:
            conn.close()
        assert code == 1
        assert any("missing from warehouse" in line for line in lines)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def _main(self, *argv: str) -> int:
        from repro.warehouse.__main__ import main

        return main(list(argv))

    def test_refresh_status_roundtrip(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("wl", SCALE_TOK, "e" * 64, _result("wl", 1000.0))
        assert self._main("refresh", "--cache-dir", str(tmp_path), "--no-bench") == 0
        out = capsys.readouterr().out
        assert "+1 inserted" in out
        assert self._main("status", "--cache-dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert WAREHOUSE_SCHEMA in out and "1 active" in out

    def test_queries_and_gate_require_a_warehouse(self, tmp_path, capsys):
        assert self._main("status", "--cache-dir", str(tmp_path)) == 1
        assert (
            self._main("trajectory", "--cache-dir", str(tmp_path)) == 1
        )
        baseline = tmp_path / "baseline.json"
        assert (
            self._main(
                "gate", "--cache-dir", str(tmp_path), "--baseline", str(baseline)
            )
            == 1
        )

    def test_sensitivity_rejects_axis_sweeps(self, tmp_path, capsys):
        refresh_warehouse(tmp_path)
        assert (
            self._main("sensitivity", "smoke", "--cache-dir", str(tmp_path)) == 1
        )
        err = capsys.readouterr().err
        assert "knob axes" in err
