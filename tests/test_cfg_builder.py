"""Tests for the static CFG model and the synthetic program builder."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.builder import build_cfg, reachable_blocks
from repro.workloads.cfg import ControlFlowGraph, Function, StaticBlock
from repro.workloads.isa import BranchKind, block_of
from repro.workloads.profiles import ALL_PROFILES, APACHE, get_profile


@pytest.fixture(scope="module")
def cfg() -> ControlFlowGraph:
    return build_cfg(APACHE.scaled(0.1))


class TestStaticBlock:
    def test_branch_pc_is_last_instruction(self):
        blk = StaticBlock(start=0x100, n_instrs=4, kind=BranchKind.COND,
                          target=0x200, func_id=0)
        assert blk.branch_pc == 0x10C

    def test_fallthrough_follows_branch(self):
        blk = StaticBlock(start=0x100, n_instrs=4, kind=BranchKind.COND,
                          target=0x200, func_id=0)
        assert blk.fallthrough == 0x110

    def test_size_bytes(self):
        blk = StaticBlock(start=0, n_instrs=5, kind=BranchKind.JUMP,
                          target=0x40, func_id=0)
        assert blk.size_bytes == 20

    def test_is_loop_requires_cond(self):
        blk = StaticBlock(start=0, n_instrs=2, kind=BranchKind.JUMP,
                          target=0x40, func_id=0, loop_mean=5.0)
        assert not blk.is_loop


class TestBuilderStructure:
    def test_deterministic(self):
        a = build_cfg(APACHE.scaled(0.1))
        b = build_cfg(APACHE.scaled(0.1))
        assert sorted(a.blocks) == sorted(b.blocks)
        assert a.entry == b.entry

    def test_validates(self, cfg):
        cfg.validate()  # must not raise

    def test_entry_is_driver_dispatch(self, cfg):
        driver = cfg.functions[0]
        assert driver.name == "driver"
        assert cfg.entry == driver.entry

    def test_driver_is_indirect_dispatch_loop(self, cfg):
        driver = cfg.functions[0]
        dispatch = cfg.blocks[driver.block_starts[0]]
        tail = cfg.blocks[driver.block_starts[1]]
        assert dispatch.kind == BranchKind.IND_CALL
        assert tail.kind == BranchKind.JUMP
        assert tail.target == dispatch.start

    def test_driver_dispatches_all_transaction_types(self, cfg):
        profile = APACHE.scaled(0.1)
        driver = cfg.functions[0]
        dispatch = cfg.blocks[driver.block_starts[0]]
        assert len(dispatch.indirect_targets) == profile.n_transaction_types

    def test_every_function_ends_with_ret(self, cfg):
        for func in cfg.functions[1:]:
            last = cfg.blocks[func.block_starts[-1]]
            assert last.kind == BranchKind.RET

    def test_blocks_within_function_are_contiguous(self, cfg):
        for func in cfg.functions:
            for a, b in zip(func.block_starts, func.block_starts[1:]):
                assert cfg.blocks[a].fallthrough == b

    def test_functions_do_not_overlap(self, cfg):
        spans = sorted(
            (func.block_starts[0], cfg.blocks[func.block_starts[-1]].fallthrough)
            for func in cfg.functions
        )
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_code_footprint_close_to_profile(self, cfg):
        profile = APACHE.scaled(0.1)
        assert cfg.code_bytes == pytest.approx(profile.code_kb * 1024, rel=0.25)

    def test_conditional_targets_are_forward_or_loops(self, cfg):
        for blk in cfg.blocks.values():
            if blk.kind != BranchKind.COND:
                continue
            if blk.is_loop:
                assert blk.target < blk.start
            else:
                assert blk.target > blk.start

    def test_calls_target_lower_layer_entries(self, cfg):
        entry_layers = {f.entry: f.layer for f in cfg.functions}
        func_layers = {f.func_id: f.layer for f in cfg.functions}
        for blk in cfg.blocks.values():
            if blk.kind == BranchKind.CALL:
                assert blk.target in entry_layers
                assert entry_layers[blk.target] > func_layers[blk.func_id]

    def test_loops_have_call_free_bodies(self, cfg):
        starts = {f.func_id: list(f.block_starts) for f in cfg.functions}
        for blk in cfg.blocks.values():
            if not blk.is_loop:
                continue
            fn_starts = starts[blk.func_id]
            body = [s for s in fn_starts if blk.target <= s < blk.start]
            for s in body:
                assert cfg.blocks[s].kind not in (BranchKind.CALL, BranchKind.IND_CALL)

    def test_branch_map_covers_all_blocks(self, cfg):
        total = sum(
            len(cfg.branches_in_cache_block(cb))
            for cb in {block_of(b.branch_pc) for b in cfg.blocks.values()}
        )
        assert total == len(cfg.blocks)

    def test_branch_map_sorted_by_pc(self, cfg):
        for blk in list(cfg.blocks.values())[:200]:
            entries = cfg.branches_in_cache_block(block_of(blk.branch_pc))
            pcs = [e.branch_pc for e in entries]
            assert pcs == sorted(pcs)

    def test_n_static_branches_equals_blocks(self, cfg):
        assert cfg.n_static_branches == cfg.n_blocks

    def test_block_at_raises_for_unknown(self, cfg):
        with pytest.raises(WorkloadError):
            cfg.block_at(1)


class TestReachability:
    def test_entry_reachable(self, cfg):
        assert cfg.entry in reachable_blocks(cfg)

    def test_handlers_reachable(self, cfg):
        reachable = reachable_blocks(cfg)
        for func in cfg.functions:
            if func.layer == 1:
                assert func.entry in reachable

    def test_most_code_reachable(self, cfg):
        reachable = reachable_blocks(cfg)
        assert len(reachable) / cfg.n_blocks > 0.5


class TestAllProfilesBuild:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_builds_and_validates(self, profile):
        small = profile.scaled(0.05)
        cfg = build_cfg(small)
        cfg.validate()
        assert cfg.n_blocks > 50


class TestValidationCatchesCorruption:
    def test_bad_target_rejected(self):
        blocks = {
            0x100: StaticBlock(0x100, 2, BranchKind.JUMP, 0x999, 0),
        }
        funcs = [Function(0, "f", 0x100, 0, (0x100,))]
        cfg = ControlFlowGraph(blocks=blocks, functions=funcs, entry=0x100)
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_bad_entry_rejected(self):
        blocks = {0x100: StaticBlock(0x100, 2, BranchKind.RET, 0, 0)}
        funcs = [Function(0, "f", 0x100, 0, (0x100,))]
        cfg = ControlFlowGraph(blocks=blocks, functions=funcs, entry=0x500)
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_indirect_without_targets_rejected(self):
        blocks = {
            0x100: StaticBlock(0x100, 2, BranchKind.IND_JUMP, 0x100, 0),
        }
        funcs = [Function(0, "f", 0x100, 0, (0x100,))]
        cfg = ControlFlowGraph(blocks=blocks, functions=funcs, entry=0x100)
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_empty_block_rejected(self):
        blocks = {0x100: StaticBlock(0x100, 0, BranchKind.RET, 0, 0)}
        funcs = [Function(0, "f", 0x100, 0, (0x100,))]
        cfg = ControlFlowGraph(blocks=blocks, functions=funcs, entry=0x100)
        with pytest.raises(WorkloadError):
            cfg.validate()
