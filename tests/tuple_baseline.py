"""The seed repo's tuple-list trace implementation, frozen as a baseline.

Two consumers compare the columnar trace subsystem against this reference:

* ``tests/test_trace.py`` — bit-identical record equivalence over the
  golden_quick workloads (same PRNG draw order);
* ``benchmarks/test_trace_columnar.py`` — the generation+iteration timing
  guard.

Keep this verbatim to the pre-columnar implementation: it defines what
"equivalent" and "no slower" mean. It intentionally reuses the walker's
private tuning constants so the baselines cannot drift from the real
implementation's behavioural parameters.
"""

from __future__ import annotations

import random

from repro.workloads.isa import BranchKind, EntryKind, blocks_spanned
from repro.workloads.trace import _draw_trips, _INDIRECT_STICKINESS, _MAX_CALL_DEPTH


def tuple_walk(cfg, n_instrs, seed):
    """The seed tuple-list walker (pre-columnar ``generate_trace`` body)."""
    rng = random.Random(seed)
    blocks = cfg.blocks
    records = []
    append = records.append
    stack = []
    loop_remaining = {}
    loop_trips = {}
    sticky_target = {}
    last_outcome = {}

    def choose_indirect(blk):
        previous = sticky_target.get(blk.start)
        if previous is not None and rng.random() < _INDIRECT_STICKINESS:
            return previous
        targets = [t for t, _ in blk.indirect_targets]
        weights = [w for _, w in blk.indirect_targets]
        choice = rng.choices(targets, weights=weights, k=1)[0]
        sticky_target[blk.start] = choice
        return choice

    pc = cfg.entry
    executed = 0
    entry_kind = int(EntryKind.SEQUENTIAL)
    while executed < n_instrs:
        blk = blocks[pc]
        kind = blk.kind
        taken = 1
        if kind == BranchKind.COND:
            if blk.loop_mean > 0:
                remaining = loop_remaining.get(pc)
                if remaining is None:
                    remaining = loop_trips.get(pc)
                    if remaining is None:
                        remaining = _draw_trips(rng, blk.loop_mean)
                        loop_trips[pc] = remaining
                if remaining > 0:
                    taken = 1
                    loop_remaining[pc] = remaining - 1
                else:
                    taken = 0
                    loop_remaining.pop(pc, None)
            elif blk.corr_src:
                src_out = last_outcome.get(blk.corr_src)
                if src_out is None:
                    taken = 1 if rng.random() < 0.5 else 0
                else:
                    taken = src_out ^ 1 if blk.corr_invert else src_out
            else:
                taken = 1 if rng.random() < blk.bias else 0
            last_outcome[pc] = taken
            next_pc = blk.target if taken else blk.fallthrough
        elif kind == BranchKind.JUMP:
            next_pc = blk.target
        elif kind == BranchKind.CALL:
            next_pc = blk.target
            if len(stack) < _MAX_CALL_DEPTH:
                stack.append(blk.fallthrough)
        elif kind == BranchKind.IND_CALL:
            next_pc = choose_indirect(blk)
            if len(stack) < _MAX_CALL_DEPTH:
                stack.append(blk.fallthrough)
        elif kind == BranchKind.IND_JUMP:
            next_pc = choose_indirect(blk)
        else:  # RET
            next_pc = stack.pop() if stack else cfg.entry
        append((pc, blk.n_instrs, int(kind), taken, next_pc, entry_kind))
        executed += blk.n_instrs
        if not taken:
            entry_kind = int(EntryKind.SEQUENTIAL)
        elif kind == BranchKind.COND:
            entry_kind = int(EntryKind.CONDITIONAL)
        else:
            entry_kind = int(EntryKind.UNCONDITIONAL)
        pc = next_pc
    return records, executed


def tuple_summarize(records):
    """The seed summarize loop over a tuple-list trace."""
    kind_counts = {}
    taken = 0
    cond = 0
    cond_taken = 0
    unique_bbs = set()
    unique_blocks = set()
    for rec in records:
        kind = rec[2]
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        taken += rec[3]
        if kind == BranchKind.COND:
            cond += 1
            cond_taken += rec[3]
        unique_bbs.add(rec[0])
        unique_blocks.update(blocks_spanned(rec[0], rec[1]))
    return kind_counts, taken, cond, cond_taken, unique_bbs, unique_blocks
