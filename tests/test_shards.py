"""Shard compaction: round-trip invariants, layout equivalence, CLI.

The load-bearing invariant everywhere: ``scan_cache`` reports the same
record set before and after any number of interleaved ``compact`` /
read / ``prune`` / overwrite cycles, and every record remains readable
with identical content regardless of which layout (flat, sharded, or
mixed) it currently lives in.
"""

from __future__ import annotations

import random

import pytest

from repro.core.results import SimulationResult
from repro.runtime import ExperimentRuntime, compact_cache, prune_cache, scan_cache
from repro.runtime.cache import SCHEMA_TAG, ResultCache
from repro.runtime.__main__ import main
from repro.runtime.shards import read_shard, shard_path

#: A plausible stale tag (same major, different source fingerprint).
STALE_TAG = "engine-v1-000000000000"


def _digest(rng: random.Random) -> str:
    return "".join(rng.choice("0123456789abcdef") for _ in range(64))


def _result(workload: str, value: float) -> SimulationResult:
    return SimulationResult(workload, "none", {"cycles": value, "retired_instrs": 2 * value})


# ---------------------------------------------------------------------------
# Property-style randomized round trips
# ---------------------------------------------------------------------------


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_compact_read_prune_cycles(self, tmp_path, seed):
        """Seeded random batches of records, with compaction, re-reads,
        overwrites and stale-tag pruning interleaved: the visible record
        set must never change except by the puts themselves."""
        rng = random.Random(seed)
        workloads = ("alpha", "beta", "gamma")
        scales = ("0.25", "1.0")
        cache = ResultCache(tmp_path)
        expected: dict[tuple[str, str, str], float] = {}
        for cycle in range(6):
            # A batch of fresh records, plus occasional overwrites of an
            # existing key (which compaction must resolve loose-wins).
            for _ in range(rng.randrange(1, 12)):
                if expected and rng.random() < 0.2:
                    key = rng.choice(sorted(expected))
                    expected[key] += 1000.0
                else:
                    key = (rng.choice(workloads), rng.choice(scales), _digest(rng))
                    expected[key] = float(rng.randrange(1, 10**6))
                cache.put(key[0], key[1], key[2], _result(key[0], expected[key]))
            before = sum(i.records for i in scan_cache(tmp_path) if i.current)
            assert before == len(expected)
            action = rng.randrange(4)
            if action == 0:
                compact_cache(tmp_path)
            elif action == 1:
                compact_cache(tmp_path, dry_run=True)
            elif action == 2:
                # A stale tag appearing and being pruned is invisible to
                # the current tag's records.
                stale = tmp_path / STALE_TAG / "alpha"
                stale.mkdir(parents=True, exist_ok=True)
                (stale / "s1.0__0000000000000000.json").write_text("{}")
                prune_cache(tmp_path)
            after = sum(i.records for i in scan_cache(tmp_path) if i.current)
            assert after == len(expected), f"cycle {cycle} changed the record set"
            # Every record readable with its latest value, via a fresh
            # cache instance (no warm shard index to hide behind).
            reader = ResultCache(tmp_path)
            for (wl, tok, digest), value in expected.items():
                got = reader.get(wl, tok, digest)
                assert got is not None, (cycle, wl, digest[:8])
                assert got.raw["cycles"] == value
            assert reader.misses == 0
        # Terminal full compaction: everything sharded, nothing lost.
        compact_cache(tmp_path)
        info = next(i for i in scan_cache(tmp_path) if i.current)
        assert info.loose_records == 0
        assert info.shard_records == len(expected)

    def test_compact_is_idempotent(self, tmp_path):
        rng = random.Random(3)
        cache = ResultCache(tmp_path)
        for i in range(10):
            cache.put("wl", "1.0", _digest(rng), _result("wl", float(i)))
        first = compact_cache(tmp_path)
        assert sum(s.loose_folded for s in first) == 10
        second = compact_cache(tmp_path)
        assert sum(s.loose_folded for s in second) == 0
        assert all(s.entries_before == s.entries_after for s in second)

    def test_concurrent_compactor_is_locked_out(self, tmp_path):
        """Two overlapping compactors could otherwise lose records (a
        stale-snapshot rewrite clobbering a peer's fresh shard after the
        peer unlinked the loose copies); the per-workload flock makes the
        second one skip instead."""
        fcntl = pytest.importorskip("fcntl")
        rng = random.Random(9)
        cache = ResultCache(tmp_path)
        for i in range(6):
            cache.put("wl", "1.0", _digest(rng), _result("wl", float(i)))
        wdir = tmp_path / SCHEMA_TAG / "wl"
        import os

        holder = os.open(wdir / ".compact.lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(holder, fcntl.LOCK_EX | fcntl.LOCK_NB)
            (stat,) = compact_cache(tmp_path)
            assert stat.skipped_locked and stat.loose_folded == 0
            assert scan_cache(tmp_path)[0].loose_records == 6  # untouched
        finally:
            os.close(holder)
        (stat,) = compact_cache(tmp_path)  # lock released: folds normally
        assert stat.loose_folded == 6 and not stat.skipped_locked
        assert scan_cache(tmp_path)[0].shard_records == 6

    def test_dry_run_changes_nothing_on_disk(self, tmp_path):
        rng = random.Random(4)
        cache = ResultCache(tmp_path)
        for i in range(8):
            cache.put("wl", "1.0", _digest(rng), _result("wl", float(i)))
        stats = compact_cache(tmp_path, dry_run=True)
        assert sum(s.loose_folded for s in stats) == 8
        info = scan_cache(tmp_path)[0]
        assert info.loose_records == 8 and info.shard_records == 0
        assert not shard_path(tmp_path / SCHEMA_TAG / "wl").exists()


# ---------------------------------------------------------------------------
# Layout equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------


def _fill(cache_dir, keys, base: int = 0) -> None:
    cache = ResultCache(cache_dir)
    for i, (wl, tok, digest) in enumerate(keys, start=base):
        cache.put(wl, tok, digest, _result(wl, float(i + 1)))


class TestLayoutEquivalence:
    def test_flat_sharded_mixed_report_identical_contents(self, tmp_path):
        rng = random.Random(5)
        keys = [
            (wl, "0.25", _digest(rng))
            for wl in ("alpha", "beta")
            for _ in range(6)
        ]
        flat, sharded, mixed = tmp_path / "flat", tmp_path / "shard", tmp_path / "mix"
        _fill(flat, keys)
        _fill(sharded, keys)
        compact_cache(sharded)
        _fill(mixed, keys[:6])
        compact_cache(mixed)
        _fill(mixed, keys[6:], base=6)  # later records stay loose
        infos = {d.name: scan_cache(d)[0] for d in (flat, sharded, mixed)}
        assert [i.records for i in infos.values()] == [12, 12, 12]
        assert infos["flat"].shard_records == 0
        assert infos["shard"].loose_records == 0
        assert infos["mix"].loose_records and infos["mix"].shard_records
        for d in (flat, sharded, mixed):
            reader = ResultCache(d)
            for i, (wl, tok, digest) in enumerate(keys):
                assert reader.get(wl, tok, digest).raw["cycles"] == float(i + 1)

    def test_prune_reports_shard_records_like_loose_ones(self, tmp_path):
        """A stale tag's record count must not depend on its layout."""
        rng = random.Random(6)
        keys = [("wl", "1.0", _digest(rng)) for _ in range(7)]
        _fill(tmp_path, keys)
        compact_cache(tmp_path)
        # Rename the (sharded) current tag into a stale one.
        (tmp_path / SCHEMA_TAG).rename(tmp_path / STALE_TAG)
        removed = prune_cache(tmp_path)
        assert [(i.tag, i.records) for i in removed] == [(STALE_TAG, 7)]
        assert not (tmp_path / STALE_TAG).exists()

    def test_compaction_reduces_file_count_10x(self, tmp_path):
        """A quick sweep's worth of records per workload must fold into
        one file per workload — a >= 10x file-count drop."""
        rng = random.Random(7)
        for wl in ("alpha", "beta"):
            _fill(tmp_path, [(wl, "0.25", _digest(rng)) for _ in range(20)])
        stats = compact_cache(tmp_path)
        files_before = sum(s.files_before for s in stats)
        files_after = sum(s.files_after for s in stats)
        assert files_before == 40 and files_after == 2
        assert files_before / files_after >= 10
        assert sum(i.records for i in scan_cache(tmp_path)) == 40

    def test_shards_serve_warm_runtime_hits(self, tmp_path):
        """The real write path: a runtime populates the cache, compaction
        folds it, and a fresh runtime still resolves everything from disk
        without simulating."""
        rt = ExperimentRuntime(cache_dir=tmp_path)
        from repro.core.mechanisms import make_config

        rt.run_one("streaming", make_config("none"), 0.05)
        assert rt.executed == 1
        stats = compact_cache(tmp_path)
        assert sum(s.loose_folded for s in stats) == 1
        warm = ExperimentRuntime(cache_dir=tmp_path)
        warm.run_one("streaming", make_config("none"), 0.05)
        assert warm.executed == 0
        assert warm.disk.hits == 1


# ---------------------------------------------------------------------------
# The compact CLI
# ---------------------------------------------------------------------------


class TestCompactCli:
    def _populate(self, cache_dir, n=12):
        rng = random.Random(8)
        _fill(cache_dir, [("wl", "1.0", _digest(rng)) for _ in range(n)])

    def test_compact_output_and_effect(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["compact", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "folded 12 loose record(s)" in out
        assert "[compact: files 12 -> 1 (12.0x), 12 records]" in out
        info = scan_cache(tmp_path)[0]
        assert info.loose_records == 0 and info.shard_records == 12

    def test_dry_run_reports_without_rewriting(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["compact", "--cache-dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would fold 12 loose record(s)" in out
        assert "dry run" in out
        assert scan_cache(tmp_path)[0].loose_records == 12

    def test_nothing_to_compact(self, tmp_path, capsys):
        self._populate(tmp_path)
        main(["compact", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["compact", "--cache-dir", str(tmp_path)]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_list_shows_layout_breakdown(self, tmp_path, capsys):
        self._populate(tmp_path)
        main(["compact", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(0 loose + 12 in 1 shard(s))" in out
