"""Tests for the L1-I prefetcher family."""

import pytest

from repro.prefetch.base import InstructionPrefetcher
from repro.prefetch.dip import DiscontinuityPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.stream import PIFPrefetcher, SHIFTPrefetcher, TemporalStreamPrefetcher


def drain(pf, now=0, limit=100):
    out = []
    while len(out) < limit:
        block = pf.next_prefetch(now)
        if block is None:
            break
        out.append(block)
    return out


class TestBaseEmission:
    def test_dedup_window(self):
        pf = InstructionPrefetcher(dedup_window=4)
        pf._emit(10, 0)
        pf._emit(10, 0)
        assert drain(pf) == [10]

    def test_ready_time_respected(self):
        pf = InstructionPrefetcher()
        pf._emit(10, ready=5)
        assert pf.next_prefetch(0) is None
        assert pf.next_prefetch(5) == 10

    def test_pending(self):
        pf = InstructionPrefetcher()
        pf._emit(1, 0)
        pf._emit(2, 0)
        assert pf.pending() == 2


class TestNextLine:
    def test_emits_next_n(self):
        pf = NextLinePrefetcher(degree=2)
        pf.on_fetch_block(100, 0, 99, False)
        assert drain(pf) == [101, 102]

    def test_degree_four(self):
        pf = NextLinePrefetcher(degree=4)
        pf.on_fetch_block(10, 0, 9, False)
        assert drain(pf) == [11, 12, 13, 14]

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_no_metadata(self):
        assert NextLinePrefetcher().storage_bits() == 0


class TestDIP:
    def test_learns_discontinuity_on_miss(self):
        pf = DiscontinuityPrefetcher(table_entries=16, next_line_degree=1)
        pf.on_demand_miss(500, 0, prev_block=100, discontinuity=True)
        drain(pf)
        pf.on_fetch_block(100, 10, 99, False)
        assert 500 in drain(pf, now=10)

    def test_ignores_sequential_misses(self):
        pf = DiscontinuityPrefetcher(table_entries=16)
        pf.on_demand_miss(101, 0, prev_block=100, discontinuity=False)
        pf.on_fetch_block(100, 10, 99, False)
        assert 101 in drain(pf, now=10)  # via next-line only
        assert pf.table_inserts == 0

    def test_table_capacity_lru(self):
        pf = DiscontinuityPrefetcher(table_entries=2)
        pf.on_demand_miss(500, 0, 1, True)
        pf.on_demand_miss(600, 0, 2, True)
        pf.on_demand_miss(700, 0, 3, True)
        assert 1 not in pf._table
        assert pf._table[3] == 700

    def test_includes_next_line_helper(self):
        pf = DiscontinuityPrefetcher(next_line_degree=2)
        pf.on_fetch_block(50, 0, 49, False)
        emitted = drain(pf)
        assert 51 in emitted and 52 in emitted

    def test_storage_is_8k_entries(self):
        bits = DiscontinuityPrefetcher(table_entries=8192).storage_bits()
        assert bits == 8192 * 80


class TestTemporalStream:
    def test_replays_recurring_sequence(self):
        pf = TemporalStreamPrefetcher(lookahead=4)
        sequence = [1, 2, 3, 4, 5, 6, 7, 8]
        for b in sequence:           # first traversal: record only
            pf.on_retired_block(b, 0)
        drain(pf)
        pf.on_retired_block(1, 100)  # second traversal: redirect + replay
        emitted = drain(pf, now=200)
        assert set(emitted) & {2, 3, 4, 5}

    def test_in_stream_advance_extends_window(self):
        pf = TemporalStreamPrefetcher(lookahead=2)
        for b in [1, 2, 3, 4, 5, 6]:
            pf.on_retired_block(b, 0)
        pf.on_retired_block(1, 10)
        pf.on_retired_block(2, 11)
        assert pf.in_stream_advances >= 1

    def test_skip_tolerance_survives_small_divergence(self):
        pf = TemporalStreamPrefetcher(lookahead=4)
        for b in [1, 2, 3, 4, 5, 6, 7, 8]:
            pf.on_retired_block(b, 0)
        pf.on_retired_block(1, 10)
        before = pf.redirects
        pf.on_retired_block(3, 11)  # skipped 2: should stay on stream
        assert pf.redirects == before

    def test_consecutive_duplicates_ignored(self):
        pf = TemporalStreamPrefetcher()
        for b in [1, 1, 1, 2]:
            pf.on_retired_block(b, 0)
        assert pf._history[-2:] == [1, 2]

    def test_unknown_block_clears_replay(self):
        pf = TemporalStreamPrefetcher()
        for b in [1, 2, 3]:
            pf.on_retired_block(b, 0)
        pf.on_retired_block(99, 1)
        assert pf._replay_pos is None

    def test_two_deep_index_avoids_frontier(self):
        """Redirecting at a hot block must replay a past traversal."""
        pf = TemporalStreamPrefetcher(lookahead=4)
        loop = [1, 2, 3, 4]
        now = 0
        for _ in range(3):
            for b in loop:
                pf.on_retired_block(b, now)
                now += 20
        drain(pf, now=now)
        pf.on_retired_block(9, now)       # fall off stream
        pf.on_retired_block(1, now + 20)  # redirect at hot block 1
        emitted = drain(pf, now=now + 100)
        assert 2 in emitted  # replayed a traversal with a real future

    def test_time_windowed_dedup_allows_reemission(self):
        pf = TemporalStreamPrefetcher(lookahead=2)
        pf._emit(10, 0)
        pf._emit(10, 5)     # in-window: suppressed
        pf._emit(10, 100)   # out of window: allowed
        assert drain(pf, now=200) == [10, 10]

    def test_history_memory_bounded(self):
        pf = TemporalStreamPrefetcher(history_entries=64)
        for i in range(1000):
            pf.on_retired_block(i, 0)
        assert len(pf._history) <= 128

    def test_index_capacity(self):
        pf = TemporalStreamPrefetcher(index_entries=8)
        for i in range(100):
            pf.on_retired_block(i, 0)
        assert len(pf._index) <= 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TemporalStreamPrefetcher(history_entries=1)
        with pytest.raises(ValueError):
            TemporalStreamPrefetcher(lookahead=0)


class TestPIFvsSHIFT:
    def test_pif_redirects_immediately(self):
        pf = PIFPrefetcher(lookahead=4)
        for b in [1, 2, 3, 4, 5]:
            pf.on_retired_block(b, 0)
        drain(pf)
        pf.on_retired_block(1, 100)
        assert pf.next_prefetch(100) is not None

    def test_shift_redirect_pays_llc_latency(self):
        pf = SHIFTPrefetcher(lookahead=4, llc_round_trip=30)
        for b in [1, 2, 3, 4, 5]:
            pf.on_retired_block(b, 0)
        drain(pf)
        pf.on_retired_block(1, 100)
        assert pf.next_prefetch(100) is None       # metadata still in flight
        assert pf.next_prefetch(130) is not None   # available after the LLC trip

    def test_storage_exceeds_200kb(self):
        assert PIFPrefetcher().storage_bits() / 8 > 200 * 1024
