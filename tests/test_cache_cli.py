"""Tests for the result-cache lifecycle CLI (``python -m repro.runtime``)."""

from __future__ import annotations

import pytest

from repro.core.mechanisms import make_config
from repro.runtime import SCHEMA_TAG, ExperimentRuntime, prune_cache, scan_cache
from repro.runtime.__main__ import main

WL = "streaming"
SCALE = 0.05

#: A plausible stale tag: same major, different source fingerprint.
STALE_TAG = "engine-v1-000000000000"


def _populate(cache_dir, n_stale=2):
    """One real record under the current tag + fabricated stale records."""
    rt = ExperimentRuntime(cache_dir=cache_dir)
    rt.run_one(WL, make_config("none"), SCALE)
    stale_dir = cache_dir / STALE_TAG / WL
    stale_dir.mkdir(parents=True)
    for i in range(n_stale):
        (stale_dir / f"s0.05__{i:016x}.json").write_text("{}")


class TestScanAndPrune:
    def test_scan_reports_tags_current_first(self, tmp_path):
        _populate(tmp_path)
        infos = scan_cache(tmp_path)
        assert [i.tag for i in infos] == [SCHEMA_TAG, STALE_TAG]
        assert infos[0].current and not infos[1].current
        assert infos[0].records == 1 and infos[1].records == 2
        assert infos[1].size_bytes > 0

    def test_scan_missing_dir_is_empty(self, tmp_path):
        assert scan_cache(tmp_path / "nope") == []

    def test_foreign_directories_never_scanned_or_pruned(self, tmp_path):
        """A mis-pointed --cache-dir must not treat (or delete) arbitrary
        directories as stale schema tags."""
        _populate(tmp_path)
        precious = tmp_path / "src"
        precious.mkdir()
        (precious / "keep.json").write_text("{}")
        assert all(i.tag != "src" for i in scan_cache(tmp_path))
        removed = prune_cache(tmp_path)
        assert [i.tag for i in removed] == [STALE_TAG]
        assert (precious / "keep.json").exists()

    def test_prune_removes_only_stale_tags(self, tmp_path):
        _populate(tmp_path)
        removed = prune_cache(tmp_path)
        assert [i.tag for i in removed] == [STALE_TAG]
        assert not (tmp_path / STALE_TAG).exists()
        assert (tmp_path / SCHEMA_TAG).exists()
        # The surviving record still serves warm hits.
        warm = ExperimentRuntime(cache_dir=tmp_path)
        warm.run_one(WL, make_config("none"), SCALE)
        assert warm.executed == 0

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        _populate(tmp_path)
        removed = prune_cache(tmp_path, dry_run=True)
        assert [i.tag for i in removed] == [STALE_TAG]
        assert (tmp_path / STALE_TAG).exists()

    def test_prune_specific_tag_can_target_current(self, tmp_path):
        _populate(tmp_path)
        removed = prune_cache(tmp_path, schema_tag=SCHEMA_TAG)
        assert [i.tag for i in removed] == [SCHEMA_TAG]
        assert (tmp_path / STALE_TAG).exists()


class TestCli:
    def test_list_output(self, tmp_path, capsys):
        _populate(tmp_path)
        assert main(["list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert SCHEMA_TAG in out and STALE_TAG in out
        assert "[current]" in out and "[stale]" in out
        assert "2 stale records reclaimable" in out

    def test_prune_then_list_empty_of_stale(self, tmp_path, capsys):
        _populate(tmp_path)
        assert main(["prune", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"removed {STALE_TAG}" in out
        assert main(["list", "--cache-dir", str(tmp_path)]) == 0
        assert STALE_TAG not in capsys.readouterr().out

    def test_cache_dir_from_env(self, tmp_path, capsys, monkeypatch):
        _populate(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["list"]) == 0
        assert SCHEMA_TAG in capsys.readouterr().out

    def test_no_cache_dir_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["list"])
