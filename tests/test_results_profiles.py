"""Tests for SimulationResult metrics and workload profiles/facade."""

import pytest

from repro.core.results import SimulationResult
from repro.errors import ConfigError
from repro.workloads import (
    ALL_PROFILES,
    clear_workload_cache,
    get_profile,
    load_workload,
    profile_names,
)
from repro.workloads.isa import EntryKind


def result(**raw) -> SimulationResult:
    base = {
        "cycles": 1000,
        "retired_instrs": 2000,
        "squash_btb": 4,
        "squash_cond": 3,
        "squash_target": 1,
        "stall_seq": 100,
        "stall_cond": 50,
        "stall_uncond": 30,
    }
    base.update(raw)
    return SimulationResult(workload="w", mechanism="m", raw=base)


class TestSimulationResult:
    def test_ipc(self):
        assert result().ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert result(cycles=0).ipc == 0.0

    def test_speedup_over(self):
        fast = result(cycles=500)
        slow = result(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_squash_split(self):
        r = result()
        assert r.squashes_btb == 4
        assert r.squashes_mispredict == 4
        assert r.squashes_total == 8

    def test_per_kilo(self):
        r = result()
        assert r.squashes_per_kilo == pytest.approx(4.0)
        assert r.btb_squashes_per_kilo == pytest.approx(2.0)

    def test_stall_cycles_sum(self):
        assert result().stall_cycles == 180

    def test_stall_by_kind(self):
        kinds = result().stall_cycles_by_kind()
        assert kinds[EntryKind.SEQUENTIAL] == 100
        assert kinds[EntryKind.CONDITIONAL] == 50
        assert kinds[EntryKind.UNCONDITIONAL] == 30

    def test_coverage_over(self):
        base = result(stall_seq=200, stall_cond=0, stall_uncond=0)
        better = result(stall_seq=50, stall_cond=0, stall_uncond=0)
        assert better.coverage_over(base) == pytest.approx(0.75)

    def test_coverage_clamped_non_negative(self):
        base = result(stall_seq=10, stall_cond=0, stall_uncond=0)
        worse = result(stall_seq=100, stall_cond=0, stall_uncond=0)
        assert worse.coverage_over(base) == 0.0

    def test_coverage_zero_baseline(self):
        base = result(stall_seq=0, stall_cond=0, stall_uncond=0)
        assert result().coverage_over(base) == 0.0

    def test_summary_line_mentions_names(self):
        line = result().summary_line()
        assert "w" in line and "m" in line


class TestProfiles:
    def test_six_profiles_in_paper_order(self):
        assert profile_names() == ("nutch", "streaming", "apache", "zeus", "oracle", "db2")

    def test_lookup_case_insensitive(self):
        assert get_profile("DB2").name == "db2"

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            get_profile("mysql")

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_mixtures_normalized(self, profile):
        assert sum(w for w, _ in profile.bias_mixture) == pytest.approx(1.0)
        assert sum(profile.cond_dist_weights) == pytest.approx(1.0)

    def test_oltp_biggest_footprints(self):
        web_max = max(p.code_kb for p in ALL_PROFILES if p.name not in ("oracle", "db2"))
        assert get_profile("oracle").code_kb > web_max
        assert get_profile("db2").code_kb > web_max

    def test_streaming_smallest(self):
        assert get_profile("streaming").code_kb == min(p.code_kb for p in ALL_PROFILES)

    def test_scaled_shrinks_together(self):
        p = get_profile("apache")
        s = p.scaled(0.5)
        assert s.code_kb == pytest.approx(p.code_kb * 0.5, abs=16)
        assert s.default_trace_instrs == pytest.approx(p.default_trace_instrs * 0.5, abs=1)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            get_profile("apache").scaled(0)

    def test_expected_taken_rate(self):
        p = get_profile("apache")
        assert 0.2 < p.expected_taken_cond_rate < 0.7


class TestWorkloadFacade:
    def test_cache_returns_same_object(self):
        a = load_workload("nutch", scale=0.05)
        b = load_workload("nutch", scale=0.05)
        assert a is b

    def test_different_scale_different_object(self):
        a = load_workload("nutch", scale=0.05)
        b = load_workload("nutch", scale=0.06)
        assert a is not b

    def test_explicit_length(self):
        wl = load_workload("nutch", n_instrs=30_000, scale=0.05)
        assert wl.trace.n_instrs >= 30_000

    def test_warmup_fraction(self):
        wl = load_workload("nutch", scale=0.05)
        expected = int(wl.trace.n_instrs * wl.profile.warmup_frac)
        assert wl.warmup_instrs == expected

    def test_clear_cache(self):
        a = load_workload("nutch", scale=0.05)
        clear_workload_cache()
        b = load_workload("nutch", scale=0.05)
        assert a is not b
        assert a.trace.records == b.trace.records  # still deterministic
