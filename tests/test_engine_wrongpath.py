"""Tests for wrong-path behaviour and front-end interplay in the engine.

Wrong-path excursions are a first-class effect in the paper (Section VI-B
credits FDIP/SHIFT coverage to wrong-path prefetches), so the engine's
wrong-path machinery gets its own tests.
"""

import pytest

from repro import Simulator, make_config
from repro.config import CoreParams, PredictorParams


class TestWrongPathAccounting:
    def test_wrong_path_cycles_follow_squashes(self, small_workload, sim_cache):
        """More squashes must mean more wrong-path cycles, not fewer."""
        res = sim_cache.run(small_workload, "none")
        assert res.raw["wp_cycles"] > 0
        assert res.squashes_total > 0

    def test_oracle_plus_perfect_btb_minimizes_wrong_path(self, small_workload):
        cfg = make_config(
            "none", perfect_btb=True, predictor=PredictorParams(kind="oracle")
        )
        res = Simulator(small_workload, cfg).run()
        # Indirect targets are perfect under perfect BTB; RAS handles
        # returns; oracle handles directions: no divergence sources remain.
        assert res.squashes_total == 0
        assert res.raw["wp_cycles"] == 0

    def test_never_taken_increases_wrong_path(self, small_workload, sim_cache):
        tage = sim_cache.run(small_workload, "none")
        never = sim_cache.run(
            small_workload, "none", predictor=PredictorParams(kind="never_taken")
        )
        assert never.raw["squash_cond"] > tage.raw["squash_cond"]
        assert never.ipc < tage.ipc


class TestWrongPathPrefetchEffect:
    def test_fdip_issues_more_prefetches_than_demand_misses(
        self, medium_workload, sim_cache
    ):
        res = sim_cache.run(medium_workload, "fdip")
        assert res.raw["l1i_prefetches_issued"] > 0
        # FDIP probes every FTQ block including wrong-path ones.
        assert res.raw["l1i_prefetches_issued"] >= res.raw["l1i_pb_promotions"]

    def test_prefetch_buffer_bounded_pollution(self, medium_workload, sim_cache):
        """Wrong-path prefetches can only pollute the FIFO buffer, not L1-I."""
        res = sim_cache.run(medium_workload, "fdip")
        assert res.raw["pb_evictions"] >= 0
        # Promotions (useful prefetches) dominate over a pressured run.
        assert res.raw["l1i_pb_promotions"] > 0


class TestResolveLatencyEffect:
    def test_longer_resolve_hurts(self, small_workload):
        fast = Simulator(
            small_workload, make_config("none", core=CoreParams(resolve_latency=6))
        ).run()
        slow = Simulator(
            small_workload, make_config("none", core=CoreParams(resolve_latency=30))
        ).run()
        assert slow.ipc < fast.ipc

    def test_squash_count_insensitive_to_resolve_latency(self, small_workload):
        """Resolve latency changes *cost* per squash, not the squash count."""
        a = Simulator(
            small_workload, make_config("none", core=CoreParams(resolve_latency=6))
        ).run()
        b = Simulator(
            small_workload, make_config("none", core=CoreParams(resolve_latency=30))
        ).run()
        assert a.squashes_total == pytest.approx(b.squashes_total, rel=0.15)


class TestDataStallModel:
    def test_data_stalls_reduce_ipc(self, small_workload):
        none = Simulator(
            small_workload,
            make_config("none", core=CoreParams(data_stall_bb_frac=0.0)),
        ).run()
        heavy = Simulator(
            small_workload,
            make_config(
                "none", core=CoreParams(data_stall_bb_frac=0.5, data_stall_cycles=30)
            ),
        ).run()
        assert heavy.ipc < none.ipc

    def test_data_stall_cycles_not_charged_as_fetch_stalls(self, small_workload):
        """Front-end stall metric must not absorb data-stall time."""
        light = Simulator(
            small_workload,
            make_config("none", core=CoreParams(data_stall_bb_frac=0.0)),
        ).run()
        heavy = Simulator(
            small_workload,
            make_config(
                "none", core=CoreParams(data_stall_bb_frac=0.5, data_stall_cycles=30)
            ),
        ).run()
        # Stall cycles should not grow with data-stall intensity.
        assert heavy.stall_cycles <= light.stall_cycles * 1.2


class TestContentionModel:
    def test_contention_penalty_slows_bursty_prefetch(self, medium_workload):
        from dataclasses import replace

        cfg = make_config("next_line")
        relaxed = replace(
            cfg, memory=replace(cfg.memory, llc_contention_free=10_000)
        )
        tight = replace(
            cfg,
            memory=replace(
                cfg.memory, llc_contention_free=1, llc_contention_penalty=10
            ),
        )
        fast = Simulator(medium_workload, relaxed).run()
        slow = Simulator(medium_workload, tight).run()
        assert slow.ipc <= fast.ipc + 0.01
