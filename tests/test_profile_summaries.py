"""Golden TraceSummary regression fixtures for every workload profile.

``tests/data/golden_summaries.json`` pins the full calibration summary
(taken rate, conditional fraction, footprint, kind mix, ...) of all ten
profiles — paper six plus extended four — at the quick experiment scale.
The workload pipeline is deterministic end to end, so any drift in the
builder, the walker's PRNG draw sequence, or the columnar representation
fails here exactly (floats included: the arithmetic is IEEE-deterministic
and JSON round-trips doubles losslessly).

Regenerate after an *intentional* workload-semantics change with::

    python - <<'EOF'
    import json, dataclasses
    from repro.workloads import load_workload, workload_set
    out = {"workload_scale": 0.25, "summaries": {}}
    for profile in workload_set("all"):
        s = load_workload(profile.name, scale=0.25).trace.summary()
        d = dataclasses.asdict(s)
        d["kind_counts"] = {str(k): v for k, v in d["kind_counts"].items()}
        out["summaries"][profile.name] = d
    with open("tests/data/golden_summaries.json", "w") as fh:
        json.dump(out, fh, indent=1, sort_keys=True)
        fh.write("\n")
    EOF
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.workloads import load_workload, workload_set

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_summaries.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


ALL_TEN = tuple(p.name for p in workload_set("all"))


def test_fixture_covers_every_profile(golden):
    assert sorted(golden["summaries"]) == sorted(ALL_TEN)


@pytest.mark.parametrize("name", ALL_TEN)
def test_summary_pinned(golden, name):
    workload = load_workload(name, scale=golden["workload_scale"])
    summary = dataclasses.asdict(workload.trace.summary())
    summary["kind_counts"] = {str(k): v for k, v in summary["kind_counts"].items()}
    want = golden["summaries"][name]
    assert summary == want, f"{name} trace summary diverged from golden fixture"
