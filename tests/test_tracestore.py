"""Tests for the persistent content-addressed workload store."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.workloads import (
    TRACE_SCHEMA_TAG,
    TraceStore,
    clear_workload_cache,
    configure_trace_store,
    get_profile,
    get_trace_store,
    load_workload,
    profile_digest,
    prune_trace_store,
    reset_trace_store,
    scan_trace_store,
)
from repro.workloads.builder import build_cfg
from repro.workloads.trace import generate_trace
from repro.workloads.tracestore import trace_seed

SCALE = 0.05


@pytest.fixture
def store_dir(tmp_path):
    """Point the process trace store at a temp dir; restore env resolution."""
    clear_workload_cache()
    configure_trace_store(tmp_path)
    yield tmp_path
    reset_trace_store()
    clear_workload_cache()


@pytest.fixture(scope="module")
def small_profile():
    return get_profile("apache").scaled(SCALE)


@pytest.fixture(scope="module")
def small_build(small_profile):
    cfg = build_cfg(small_profile)
    length = small_profile.default_trace_instrs
    trace = generate_trace(cfg, length, seed=trace_seed(small_profile))
    return small_profile, length, cfg, trace


class TestProfileDigest:
    def test_content_not_name(self, small_profile):
        same_name = replace(small_profile, avg_bb_instrs=9.0)
        assert same_name.name == small_profile.name
        assert profile_digest(same_name) != profile_digest(small_profile)

    def test_every_field_contributes(self, small_profile):
        tweaked = replace(small_profile, warmup_frac=0.31)
        assert profile_digest(tweaked) != profile_digest(small_profile)

    def test_deterministic(self, small_profile):
        copy = replace(small_profile)
        assert profile_digest(copy) == profile_digest(small_profile)


class TestStoreRoundTrip:
    def test_get_returns_bit_identical_build(self, tmp_path, small_build):
        profile, length, cfg, trace = small_build
        store = TraceStore(tmp_path)
        assert store.get(profile, length) is None  # cold
        store.put(profile, length, cfg, trace)
        loaded = store.get(profile, length)
        assert loaded is not None
        cfg2, trace2 = loaded
        assert trace2.records == trace.records
        assert trace2.n_instrs == trace.n_instrs
        assert trace2.seed == trace.seed
        assert cfg2.blocks == cfg.blocks
        assert cfg2.entry == cfg.entry
        assert cfg2.functions == cfg.functions
        assert store.misses == 1 and store.hits == 1 and store.stores == 1

    def test_other_length_is_a_miss(self, tmp_path, small_build):
        profile, length, cfg, trace = small_build
        store = TraceStore(tmp_path)
        store.put(profile, length, cfg, trace)
        assert store.get(profile, length + 1) is None

    def test_other_profile_content_is_a_miss(self, tmp_path, small_build):
        profile, length, cfg, trace = small_build
        store = TraceStore(tmp_path)
        store.put(profile, length, cfg, trace)
        assert store.get(replace(profile, seed=999), length) is None

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "bad_magic"],
        ids=str,
    )
    def test_corrupt_record_is_a_miss(self, tmp_path, small_build, corruption):
        profile, length, cfg, trace = small_build
        store = TraceStore(tmp_path)
        store.put(profile, length, cfg, trace)
        (record,) = store.root.glob("*.wkld")
        blob = record.read_bytes()
        if corruption == "truncate":
            record.write_bytes(blob[: len(blob) // 2])
        elif corruption == "garbage":
            record.write_bytes(b"\x00" * 128)
        else:
            record.write_bytes(b"XWKLD1\n" + blob[7:])
        assert store.get(profile, length) is None


class TestLoadWorkloadIntegration:
    def test_cold_build_populates_warm_load_hits(self, store_dir):
        first = load_workload("streaming", scale=SCALE)
        store = get_trace_store()
        assert store.stores == 1 and store.hits == 0
        clear_workload_cache()  # drop the memo: next load must come off disk
        second = load_workload("streaming", scale=SCALE)
        assert store.hits == 1
        assert second.trace.records == first.trace.records
        assert second.cfg.blocks == first.cfg.blocks

    def test_memo_keyed_by_content_not_name(self, store_dir):
        """Regression: a caller profile sharing a stock name must never be
        served the stock build (the old ``(name, scale, length)`` memo did
        exactly that)."""
        stock = get_profile("apache").scaled(SCALE)
        custom = replace(stock, avg_bb_instrs=9.0, loop_frac=0.2)
        stock_wl = load_workload(stock)
        custom_wl = load_workload(custom)
        assert stock_wl is not custom_wl
        assert custom_wl.trace.records != stock_wl.trace.records
        # And the memo returns each its own build, in either order.
        assert load_workload(custom) is custom_wl
        assert load_workload(stock) is stock_wl

    def test_disabled_without_configuration(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        reset_trace_store()
        assert get_trace_store() is None

    def test_env_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_trace_store()
        store = get_trace_store()
        assert store is not None and store.root.parent == tmp_path
        reset_trace_store()

    def test_explicit_configure_beats_env(self, tmp_path, monkeypatch):
        """configure_trace_store overrides the environment, and the
        effective directory is exposed so the pool runner can re-export it
        to spawn-started workers."""
        from repro.workloads.workload import trace_store_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        configure_trace_store(tmp_path / "explicit")
        try:
            assert trace_store_dir() == str(tmp_path / "explicit")
            assert get_trace_store().root.parent == tmp_path / "explicit"
        finally:
            reset_trace_store()
        assert trace_store_dir() == str(tmp_path / "env")

    def test_empty_env_var_means_explicitly_disabled(self, tmp_path, monkeypatch):
        """REPRO_TRACE_STORE='' (the pool runner's export of an explicit
        disable) must not fall back to REPRO_CACHE_DIR."""
        from repro.workloads.workload import trace_store_dir

        monkeypatch.setenv("REPRO_TRACE_STORE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_trace_store()
        assert trace_store_dir() is None
        assert get_trace_store() is None

    def test_env_value_export_tristate(self, tmp_path):
        from repro.workloads.workload import trace_store_env_value

        try:
            assert trace_store_env_value() is None  # env-driven: no export
            configure_trace_store(tmp_path)
            assert trace_store_env_value() == str(tmp_path)
            configure_trace_store(None)
            assert trace_store_env_value() == ""  # explicit disable
        finally:
            reset_trace_store()


class TestLifecycle:
    def test_scan_counts_current_tag(self, store_dir):
        load_workload("zeus", scale=SCALE)
        infos = scan_trace_store(store_dir)
        assert [i.tag for i in infos] == [TRACE_SCHEMA_TAG]
        assert infos[0].current and infos[0].records == 1
        assert infos[0].size_bytes > 0

    def test_scan_ignores_foreign_directories(self, store_dir):
        (store_dir / "engine-v1-0123456789ab").mkdir()  # result-cache tag
        (store_dir / "random-stuff").mkdir()
        load_workload("zeus", scale=SCALE)
        assert [i.tag for i in scan_trace_store(store_dir)] == [TRACE_SCHEMA_TAG]

    def test_prune_removes_stale_keeps_current(self, store_dir):
        load_workload("zeus", scale=SCALE)
        stale = store_dir / "trace-v0-000000000000"
        stale.mkdir()
        (stale / "old.wkld").write_bytes(b"x")
        removed = prune_trace_store(store_dir)
        assert [i.tag for i in removed] == ["trace-v0-000000000000"]
        assert not stale.exists()
        assert (store_dir / TRACE_SCHEMA_TAG).exists()

    def test_prune_dry_run_deletes_nothing(self, store_dir):
        stale = store_dir / "trace-v0-000000000000"
        stale.mkdir()
        removed = prune_trace_store(store_dir, dry_run=True)
        assert [i.tag for i in removed] == ["trace-v0-000000000000"]
        assert stale.exists()

    def test_prune_specific_tag_can_force_cold(self, store_dir):
        load_workload("zeus", scale=SCALE)
        removed = prune_trace_store(store_dir, schema_tag=TRACE_SCHEMA_TAG)
        assert [i.tag for i in removed] == [TRACE_SCHEMA_TAG]
        assert scan_trace_store(store_dir) == []
