"""Tests for the memory substrate: caches, prefetch buffer, NoC, hierarchy."""

import pytest

from repro.config import CacheParams, MemoryParams, NoCParams
from repro.memory.cache import SetAssocCache
from repro.memory.hierarchy import InstructionMemory
from repro.memory.noc import (
    CrossbarNoC,
    MeshNoC,
    average_round_trip,
    make_noc,
    mesh_average_hops,
)
from repro.memory.prefetch_buffer import PrefetchBuffer


def tiny_cache(sets=4, assoc=2):
    return SetAssocCache(CacheParams(sets * assoc * 64, assoc))


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = tiny_cache()
        assert not c.lookup(5)
        c.insert(5)
        assert c.lookup(5)

    def test_counters(self):
        c = tiny_cache()
        c.lookup(1)
        c.insert(1)
        c.lookup(1)
        assert c.misses == 1
        assert c.hits == 1

    def test_lru_eviction_order(self):
        c = tiny_cache(sets=1, assoc=2)
        c.insert(0)
        c.insert(1)
        c.lookup(0)          # 0 becomes MRU
        victim = c.insert(2)
        assert victim == 1   # 1 was LRU

    def test_insert_existing_refreshes(self):
        c = tiny_cache(sets=1, assoc=2)
        c.insert(0)
        c.insert(1)
        c.insert(0)          # refresh, no eviction
        assert c.evictions == 0
        victim = c.insert(2)
        assert victim == 1

    def test_set_isolation(self):
        c = tiny_cache(sets=4, assoc=1)
        c.insert(0)
        c.insert(1)  # different set
        assert c.contains(0) and c.contains(1)

    def test_conflict_within_set(self):
        c = tiny_cache(sets=4, assoc=1)
        c.insert(0)
        c.insert(4)  # same set (4 % 4 == 0)
        assert not c.contains(0)

    def test_invalidate(self):
        c = tiny_cache()
        c.insert(3)
        assert c.invalidate(3)
        assert not c.contains(3)
        assert not c.invalidate(3)

    def test_occupancy_and_reset(self):
        c = tiny_cache()
        for b in range(5):
            c.insert(b)
        assert c.occupancy() == 5
        c.reset()
        assert c.occupancy() == 0
        assert c.hits == 0

    def test_contains_does_not_touch_lru(self):
        c = tiny_cache(sets=1, assoc=2)
        c.insert(0)
        c.insert(1)
        c.contains(0)        # must NOT refresh 0
        victim = c.insert(2)
        assert victim == 0

    def test_resident_blocks_snapshot(self):
        c = tiny_cache()
        c.insert(1)
        c.insert(9)
        assert c.resident_blocks() == {1, 9}

    def test_capacity_respected(self):
        c = tiny_cache(sets=2, assoc=2)
        for b in range(20):
            c.insert(b)
        assert c.occupancy() <= 4


class TestPrefetchBuffer:
    def test_fifo_eviction(self):
        pb = PrefetchBuffer(2)
        pb.insert(1)
        pb.insert(2)
        victim = pb.insert(3)
        assert victim == 1
        assert 2 in pb and 3 in pb

    def test_promote_removes(self):
        pb = PrefetchBuffer(4)
        pb.insert(7)
        assert pb.promote(7)
        assert 7 not in pb
        assert pb.promotions == 1

    def test_promote_missing_is_false(self):
        pb = PrefetchBuffer(4)
        assert not pb.promote(7)

    def test_duplicate_insert_is_noop(self):
        pb = PrefetchBuffer(2)
        pb.insert(1)
        pb.insert(1)
        assert len(pb) == 1
        assert pb.inserts == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)

    def test_reset(self):
        pb = PrefetchBuffer(2)
        pb.insert(1)
        pb.reset()
        assert len(pb) == 0 and pb.inserts == 0


class TestNoC:
    def test_mesh_average_hops_4x4(self):
        assert mesh_average_hops(4) == pytest.approx(2.5)

    def test_mesh_round_trip_is_thirty(self):
        assert average_round_trip(NoCParams(), 5) == 30

    def test_crossbar_round_trip(self):
        p = NoCParams(kind="crossbar")
        assert average_round_trip(p, 5) == 23

    def test_make_noc_dispatch(self):
        assert isinstance(make_noc(NoCParams()), MeshNoC)
        assert isinstance(make_noc(NoCParams(kind="crossbar")), CrossbarNoC)

    def test_mesh_class_rejects_crossbar_params(self):
        with pytest.raises(ValueError):
            MeshNoC(NoCParams(kind="crossbar"))

    def test_bigger_mesh_is_slower(self):
        small = average_round_trip(NoCParams(mesh_dim=2), 5)
        large = average_round_trip(NoCParams(mesh_dim=8), 5)
        assert large > small


def make_mem(**kwargs) -> InstructionMemory:
    return InstructionMemory(MemoryParams(**kwargs))


class TestInstructionMemory:
    def test_cold_miss_pays_llc_plus_memory(self):
        mem = make_mem()
        ready = mem.demand_access(100, now=0)
        assert ready == mem.llc_round_trip + mem.memory_latency

    def test_llc_hit_after_first_touch(self):
        mem = make_mem()
        mem.demand_access(100, now=0)
        mem.drain_arrivals(10_000)
        mem.l1i.invalidate(100)
        ready = mem.demand_access(100, now=10_000)
        assert ready == 10_000 + mem.llc_round_trip

    def test_demand_hit_after_fill(self):
        mem = make_mem()
        ready = mem.demand_access(100, now=0)
        mem.drain_arrivals(ready)
        assert mem.demand_access(100, now=ready) == ready

    def test_prefetch_fills_buffer_not_l1i(self):
        mem = make_mem()
        assert mem.prefetch_probe(100, now=0)
        mem.drain_arrivals(10_000)
        assert 100 in mem.pb
        assert not mem.l1i.contains(100)

    def test_demand_promotes_prefetched_block(self):
        mem = make_mem()
        mem.prefetch_probe(100, now=0)
        mem.drain_arrivals(10_000)
        ready = mem.demand_access(100, now=10_000)
        assert ready == 10_000
        assert mem.l1i.contains(100)
        assert 100 not in mem.pb
        assert mem.pb_promotions == 1

    def test_probe_on_resident_block_declines(self):
        mem = make_mem()
        ready = mem.demand_access(100, now=0)
        mem.drain_arrivals(ready)
        assert not mem.prefetch_probe(100, now=ready)

    def test_probe_on_inflight_declines(self):
        mem = make_mem()
        mem.prefetch_probe(100, now=0)
        assert not mem.prefetch_probe(100, now=1)

    def test_demand_merges_with_inflight_prefetch(self):
        """The partial-coverage effect: demand waits only the residue."""
        mem = make_mem()
        mem.prefetch_probe(100, now=0)
        full = mem.llc_round_trip + mem.memory_latency
        ready = mem.demand_access(100, now=full - 10)
        assert ready == full
        assert mem.demand_merged == 1
        mem.drain_arrivals(full)
        assert mem.l1i.contains(100)  # upgraded fill lands in the L1-I

    def test_data_ready_immediate_when_resident(self):
        mem = make_mem()
        ready = mem.demand_access(100, now=0)
        mem.drain_arrivals(ready)
        assert mem.data_ready(100, now=ready) == ready

    def test_data_ready_fetches_when_absent(self):
        mem = make_mem()
        ready = mem.data_ready(100, now=0)
        assert ready > 0
        mem.drain_arrivals(ready)
        assert 100 in mem.pb

    def test_perfect_mode_never_stalls(self):
        mem = InstructionMemory(MemoryParams(), perfect=True)
        assert mem.demand_access(1, 5) == 5
        assert not mem.prefetch_probe(2, 5)
        assert mem.data_ready(3, 5) == 5

    def test_counters_keys(self):
        mem = make_mem()
        mem.demand_access(1, 0)
        counters = mem.counters()
        assert counters["l1i_demand_misses"] == 1
        assert "llc_misses_to_memory" in counters

    def test_latency_override(self):
        mem = InstructionMemory(MemoryParams(llc_round_trip_override=7))
        assert mem.llc_round_trip == 7

    def test_is_resident_or_inflight(self):
        mem = make_mem()
        assert not mem.is_resident_or_inflight(50)
        mem.prefetch_probe(50, now=0)
        assert mem.is_resident_or_inflight(50)
