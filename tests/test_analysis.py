"""Tests for the analysis layer: storage accounting and table rendering."""

import pytest

from repro.analysis.storage import (
    boomerang_cost,
    btb_prefetch_buffer_bytes,
    confluence_cost,
    fdip_cost,
    ftq_bytes,
    pif_cost,
    rdip_cost,
    shift_cost,
    storage_comparison,
    two_level_btb_cost,
)
from repro.analysis.tables import format_bar, format_bar_chart, format_table, human_bytes
from repro.config import SimConfig


class TestPaperStorageNumbers:
    """Section VI-D quotes exact numbers; we must reproduce them."""

    def test_ftq_is_204_bytes(self):
        assert ftq_bytes(32) == pytest.approx(204, abs=1)

    def test_btb_prefetch_buffer_is_336_bytes(self):
        assert btb_prefetch_buffer_bytes(32) == pytest.approx(336, abs=1)

    def test_boomerang_total_is_540_bytes(self):
        assert boomerang_cost(SimConfig()).total_bytes == pytest.approx(540, abs=2)

    def test_pif_exceeds_200_kb(self):
        assert pif_cost(SimConfig()).per_core_bytes > 200 * 1024

    def test_rdip_is_60_kb(self):
        assert rdip_cost().per_core_bytes == 60 * 1024

    def test_shift_exceeds_400_kb(self):
        assert shift_cost(SimConfig()).total_bytes > 400 * 1024

    def test_confluence_llc_extension_is_240kb_scale(self):
        cost = confluence_cost(SimConfig())
        assert cost.shared_bytes == pytest.approx(240 * 1024, rel=0.01)

    def test_boomerang_vs_confluence_ratio(self):
        boom = boomerang_cost(SimConfig()).total_bytes
        conf = confluence_cost(SimConfig()).total_bytes
        assert conf / boom > 400  # orders of magnitude, per the paper's pitch

    def test_workload_consolidation_scales_carve(self):
        one = confluence_cost(SimConfig(), n_workloads=1)
        four = confluence_cost(SimConfig(), n_workloads=4)
        assert four.llc_carve_bytes == pytest.approx(4 * one.llc_carve_bytes)
        # Boomerang is flat in the number of workloads.
        assert boomerang_cost(SimConfig()).total_bytes == pytest.approx(540, abs=2)

    def test_fdip_is_just_the_ftq(self):
        assert fdip_cost(SimConfig()).per_core_bytes == ftq_bytes(32)

    def test_two_level_btb_hundreds_of_kb(self):
        assert two_level_btb_cost(16384).per_core_bytes > 150 * 1024

    def test_comparison_covers_all_schemes(self):
        names = {c.mechanism for c in storage_comparison()}
        assert {"boomerang", "confluence", "pif", "shift", "dip", "fdip"} <= names


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.1]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_fmt(self):
        text = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_format_bar_scales(self):
        assert format_bar(5, 10, width=10) == "#####"
        assert format_bar(20, 10, width=10) == "#" * 10

    def test_format_bar_zero_scale(self):
        assert format_bar(5, 0) == ""

    def test_bar_chart_rows(self):
        chart = format_bar_chart(["a", "bb"], [1.0, 2.0])
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("bb")

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_human_bytes(self):
        assert human_bytes(540) == "540 B"
        assert human_bytes(240 * 1024) == "240.0 KB"
        assert human_bytes(2 * 1024 * 1024) == "2.00 MB"
