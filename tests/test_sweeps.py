"""Declarative sweep grids: spec geometry, registry integrity, execution."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core.mechanisms import MECHANISMS, make_config
from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS
from repro.experiments.common import SCALES, ExperimentScale, get_scale
from repro.experiments.sweeps import KNOBS, SWEEPS, SweepSpec, get_sweep
from repro.experiments.sweeps.__main__ import main

#: A scale small enough to actually execute a sweep in a unit test.
TINY = ExperimentScale(
    name="tiny",
    workload_scale=0.05,
    latency_points=(1, 30),
    btb_sizes=(2048,),
    fig3_btb_sizes=(2048,),
)


@pytest.fixture
def tiny_scale(monkeypatch):
    monkeypatch.setitem(SCALES, "tiny", TINY)
    return TINY


class TestRegistryIntegrity:
    def test_names_match_keys(self):
        for name, spec in SWEEPS.items():
            assert spec.name == name

    def test_every_exhibit_reference_is_real(self):
        for spec in SWEEPS.values():
            if spec.exhibit is not None:
                assert spec.exhibit in EXPERIMENTS, spec.name

    def test_roadmap_dense_grid_shape(self):
        """The ROADMAP's 8-point latency x 5-point BTB grid, as promised."""
        spec = SWEEPS["dense-latency-btb"]
        axes = dict(spec.axes)
        assert len(axes["llc_latency"]) == 8
        assert len(axes["btb_entries"]) == 5
        # fdip + boomerang + matched baseline over 6 workloads x 40 points
        assert spec.job_count(get_scale("default")) == 3 * 8 * 5 * 6

    def test_ablation_matrix_covers_all_profiles_and_mechanisms(self):
        spec = SWEEPS["ablation-matrix"]
        assert spec.workload_set == "all"
        assert len(spec.workloads()) == 10
        assert set(spec.mechanisms) == set(MECHANISMS) - {"none"}

    def test_get_sweep_unknown_name_lists_known(self):
        with pytest.raises(ConfigError) as err:
            get_sweep("nope")
        assert "smoke" in str(err.value)


class TestSpecValidation:
    def test_unknown_mechanism_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unknown mechanisms"):
            SweepSpec("x", "t", "d", mechanisms=("warp-drive",))

    def test_unknown_axis_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unknown axes"):
            SweepSpec("x", "t", "d", mechanisms=("fdip",), axes=(("hyper", (1,)),))

    def test_unknown_workload_set_rejected(self):
        with pytest.raises(ConfigError, match="workload set"):
            SweepSpec("x", "t", "d", mechanisms=("fdip",), workload_set="imaginary")


class TestGridGeometry:
    def test_points_are_cartesian_product(self, tiny_scale):
        spec = SweepSpec(
            "x", "t", "d",
            mechanisms=("fdip", "boomerang"),
            axes=(("llc_latency", "scale"), ("btb_entries", (2048, 8192))),
        )
        points = spec.points(tiny_scale)
        assert len(points) == 2 * 2 * 2  # mechanisms x latencies x btb sizes
        assert len({p.settings for p in points}) == 4

    def test_shared_knobs_reach_the_baseline(self):
        spec = SweepSpec(
            "x", "t", "d",
            mechanisms=("boomerang",),
            axes=(("llc_latency", (55,)), ("throttle_blocks", (4,))),
        )
        point = spec.points(get_scale("quick"))[0]
        cfg = point.config()
        assert cfg.memory.llc_round_trip_override == 55
        assert cfg.prefetch.throttle_blocks == 4
        base = point.baseline()
        # Machine-shaping knob follows; mechanism-local knob does not.
        assert base.memory.llc_round_trip_override == 55
        assert base.prefetch.throttle_blocks == make_config("none").prefetch.throttle_blocks

    def test_every_knob_applies_cleanly(self):
        samples = {
            "btb_entries": 8192,
            "llc_latency": 10,
            "noc_kind": "crossbar",
            "predictor": "bimodal",
            "ftq_depth": 16,
            "predecode_latency": 6,
            "throttle_blocks": 1,
            "btb_prefetch_buffer": 8,
        }
        assert set(samples) == set(KNOBS)
        base = make_config("boomerang")
        for knob, value in samples.items():
            cfg = KNOBS[knob].apply(base, value)
            assert isinstance(cfg, SimConfig)
            assert cfg != base

    def test_job_count_collapses_duplicate_baselines(self, tiny_scale):
        spec = SweepSpec(
            "x", "t", "d",
            mechanisms=("fdip", "boomerang"),
            axes=(("throttle_blocks", (0, 2)),),
        )
        # 4 points x 6 workloads, but all share ONE baseline per workload
        # (throttle_blocks is mechanism-local): 24 + 6, not 24 + 24.
        assert spec.job_count(tiny_scale) == 30


class TestSweepExecution:
    def test_run_produces_speedups_and_gmean_rows(self, tiny_scale):
        spec = SweepSpec(
            "x", "t", "d",
            mechanisms=("fdip",),
            axes=(("llc_latency", (30,)),),
        )
        result = spec.run("tiny")
        assert result.headers == ["workload", "mechanism", "llc_latency", "ipc", "speedup"]
        assert len(result.rows) == 6 + 1  # per-workload rows + gmean
        gmean = result.rows[-1]
        assert gmean[0] == "gmean"
        assert gmean[-1] > 1.0  # FDIP beats no-prefetch
        for row in result.rows[:-1]:
            assert row[1] == "fdip" and row[2] == 30
            assert 0 < row[3] <= 3  # IPC within the 3-wide machine


class TestSweepCLI:
    def test_list_and_show_run_cleanly(self, capsys):
        assert main(["list"]) == 0
        assert main(["show", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "dense-latency-btb" in out
        assert "fdip, boomerang" in out

    def test_run_unknown_sweep_fails_cleanly_with_known_names(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "known sweeps" in err and "smoke" in err

    def test_run_stale_backend_fails_cleanly(self, capsys, monkeypatch):
        from repro.runtime import runner

        monkeypatch.setattr(runner, "_RUNTIME", None)
        assert main(["run", "smoke", "--backend", "slurm"]) == 2
        assert "valid backends" in capsys.readouterr().err
