"""Batched grid execution: golden equivalence, planning, dispatch, profiling.

The load-bearing property is **bit-identity**: a
:class:`~repro.core.batch.BatchedEngine` pass over N configs must produce
exactly the per-cell engine's statistics for every lane — across all 8
mechanisms and every paper workload — because batched results land in the
per-cell result cache under unchanged keys. Everything else here guards
the machinery around that property: batch planning, option resolution,
cost-aware broker scheduling, the runtime fan-out/fan-in, manifest resume
with batched fill, and the ``--profile-stages`` collector.
"""

from __future__ import annotations

import pytest

from repro.core import profiling
from repro.core.mechanisms import MECHANISMS, make_config
from repro.errors import BrokerError
from repro.experiments.common import SCALES, ExperimentScale
from repro.experiments.sweeps import SWEEPS, SweepSpec
from repro.experiments.sweeps.__main__ import main
from repro.experiments.sweeps.manifest import (
    load_manifest,
    missing_cells,
    write_manifest,
)
from repro.runtime import (
    DEFAULT_BATCH_WIDTH,
    BatchJob,
    ExperimentRuntime,
    SimJob,
    configure_runtime,
    estimate_job_cost,
    execute_batch_job,
    execute_job,
    plan_batch_units,
    resolve_options,
)
from repro.runtime import runner as runner_mod
from repro.runtime.broker import BrokerQueue, job_from_spec, job_spec
from repro.runtime.cache import SCHEMA_TAG, ResultCache
from repro.workloads.workload import reset_trace_store

#: The paper's six workloads (PROFILE_SETS["paper"]).
PAPER_WORKLOADS = ("nutch", "streaming", "apache", "zeus", "oracle", "db2")

#: Small enough that the full 6 x 8 matrix executes inside a unit test.
SCALE = 0.06


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Fresh process-wide runtime per test; never leak an active profiler."""
    monkeypatch.setattr(runner_mod, "_RUNTIME", None)
    yield
    profiling.disable()
    runner_mod._RUNTIME = None
    reset_trace_store()


def _job(llc: int, workload: str = "streaming", scale: float = 0.05) -> SimJob:
    return SimJob(workload, make_config("none").with_llc_latency(llc), scale)


def _claim_all(queue: BrokerQueue) -> list[str]:
    order = []
    while (claimed := queue.claim()) is not None:
        order.append(claimed.job_id)
    return order


# ---------------------------------------------------------------------------
# Golden equivalence: batched vs per-cell, bit-identical
# ---------------------------------------------------------------------------


class TestGoldenEquivalence:
    @pytest.mark.parametrize("workload", PAPER_WORKLOADS)
    def test_all_mechanisms_bit_identical(self, workload):
        """One batched pass over all 8 mechanisms == 8 per-cell runs."""
        configs = tuple(make_config(mech) for mech in MECHANISMS)
        batched = execute_batch_job(BatchJob(workload, configs, SCALE))
        assert len(batched) == len(MECHANISMS)
        for mech, config, got in zip(MECHANISMS, configs, batched):
            expect = execute_job(SimJob(workload, config, SCALE))
            assert got.workload == expect.workload == workload
            assert got.mechanism == expect.mechanism == mech
            assert got.raw == expect.raw, f"{workload}/{mech} diverged"

    def test_knob_variants_bit_identical(self):
        """Lanes differing only in knobs (latency, BTB size, predictor)
        must not bleed into each other through the shared trace walk."""
        variants = (
            make_config("fdip").with_llc_latency(10),
            make_config("fdip").with_llc_latency(70),
            make_config("boomerang").with_btb_entries(1024),
            make_config("boomerang").with_btb_entries(8192),
            make_config("none").with_predictor("bimodal"),
            make_config("confluence").with_llc_latency(50),
        )
        batched = execute_batch_job(BatchJob("apache", variants, 0.2))
        for config, got in zip(variants, batched):
            expect = execute_job(SimJob("apache", config, 0.2))
            assert got.raw == expect.raw

    def test_batch_width_does_not_matter(self):
        """Splitting the same grid into different batch shapes is
        invisible: each lane's stats depend only on its own config."""
        configs = tuple(make_config(m) for m in ("none", "fdip", "boomerang", "pif"))
        whole = execute_batch_job(BatchJob("oracle", configs, SCALE))
        halves = execute_batch_job(
            BatchJob("oracle", configs[:2], SCALE)
        ) + execute_batch_job(BatchJob("oracle", configs[2:], SCALE))
        assert [r.raw for r in whole] == [r.raw for r in halves]


# ---------------------------------------------------------------------------
# Batch planning
# ---------------------------------------------------------------------------


class TestBatchPlanning:
    def test_groups_by_workload_in_first_appearance_order(self):
        cfg = make_config("none")
        jobs = [
            SimJob("apache", cfg, 0.1),
            SimJob("oracle", cfg, 0.1),
            SimJob("apache", make_config("fdip"), 0.1),
            SimJob("apache", make_config("pif"), 0.1),
            SimJob("oracle", make_config("fdip"), 0.1),
        ]
        units, positions = plan_batch_units(jobs, width=2)
        assert positions == [[0, 2], [3], [1, 4]]
        assert isinstance(units[0], BatchJob) and units[0].workload == "apache"
        assert units[1] is jobs[3]  # singleton leftover stays a plain SimJob
        assert isinstance(units[2], BatchJob) and units[2].workload == "oracle"
        assert units[0].configs == (jobs[0].config, jobs[2].config)

    def test_scale_splits_groups(self):
        cfg = make_config("none")
        jobs = [SimJob("apache", cfg, 0.1), SimJob("apache", make_config("fdip"), 0.2)]
        units, positions = plan_batch_units(jobs, width=4)
        # Different scales walk different traces — never one batch.
        assert units == jobs and positions == [[0], [1]]

    def test_width_caps_the_chunk(self):
        jobs = [SimJob("apache", make_config(m), 0.1) for m in MECHANISMS]
        units, positions = plan_batch_units(jobs, width=3)
        assert [len(chunk) for chunk in positions] == [3, 3, 2]
        assert all(isinstance(u, BatchJob) for u in units)

    def test_width_below_two_rejected(self):
        with pytest.raises(ValueError, match=">= 2"):
            plan_batch_units([], width=1)

    def test_batch_key_shape_and_sensitivity(self):
        configs = (make_config("none"), make_config("fdip"))
        batch = BatchJob("apache", configs, 0.1)
        workload, scale_tok, digest = batch.key
        assert workload == "apache" and scale_tok == "0.1"
        # Same 64-hex shape as a config digest: the digest[:16] job-id
        # grammar of the broker holds for batch units unchanged.
        assert len(digest) == 64 and int(digest, 16) >= 0
        flipped = BatchJob("apache", configs[::-1], 0.1)
        assert flipped.key[2] != digest

    def test_members_are_the_per_cell_jobs(self):
        configs = (make_config("none"), make_config("fdip"))
        batch = BatchJob("apache", configs, 0.1)
        assert batch.members == (
            SimJob("apache", configs[0], 0.1),
            SimJob("apache", configs[1], 0.1),
        )


# ---------------------------------------------------------------------------
# Option resolution (REPRO_BATCH / REPRO_BATCH_WIDTH)
# ---------------------------------------------------------------------------


class TestBatchOptions:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        for name in ("REPRO_BATCH", "REPRO_BATCH_WIDTH"):
            monkeypatch.delenv(name, raising=False)

    def test_defaults(self):
        options = resolve_options()
        assert options.batch is False
        assert options.batch_width == DEFAULT_BATCH_WIDTH

    def test_env_enables_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "4")
        options = resolve_options()
        assert options.batch is True and options.batch_width == 4

    @pytest.mark.parametrize("falsy", ["0", "false", "no"])
    def test_env_falsy_spellings_disable(self, monkeypatch, falsy):
        monkeypatch.setenv("REPRO_BATCH", falsy)
        assert resolve_options().batch is False

    def test_explicit_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "32")
        options = resolve_options(batch=False, batch_width=8)
        assert options.batch is False and options.batch_width == 8

    @pytest.mark.parametrize("bad", ["abc", "1", "0", "-3"])
    def test_env_width_validated(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BATCH_WIDTH", bad)
        with pytest.raises(ValueError, match="REPRO_BATCH_WIDTH"):
            resolve_options()

    def test_explicit_width_validated(self):
        with pytest.raises(ValueError, match=">= 2"):
            resolve_options(batch_width=1)
        with pytest.raises(ValueError, match=">= 2"):
            ExperimentRuntime(batch_width=1)


# ---------------------------------------------------------------------------
# Cost estimates and broker claim order
# ---------------------------------------------------------------------------


class TestBatchCostAndClaimOrder:
    def test_batch_cost_is_sum_of_member_costs(self):
        singles = [_job(30), _job(70)]
        batch = BatchJob(
            "streaming", tuple(job.config for job in singles), 0.05
        )
        member_costs = [estimate_job_cost(job) for job in singles]
        assert estimate_job_cost(batch) == sum(member_costs)

    def test_unknown_workload_propagates_none(self):
        batch = BatchJob(
            "no-such-workload", (make_config("none"), make_config("fdip")), 0.05
        )
        assert estimate_job_cost(batch) is None

    def test_cost_recorded_in_batch_spec(self):
        batch = BatchJob("streaming", (_job(30).config, _job(70).config), 0.05)
        assert job_spec(batch)["cost"] == estimate_job_cost(batch)

    def test_batch_unit_claims_before_singletons(self, tmp_path):
        """Longest-first: a batch of N lanes outranks each lane alone."""
        queue = BrokerQueue(tmp_path)
        single_ids = [queue.enqueue(_job(llc)) for llc in (30, 70)]
        batch_id = queue.enqueue(
            BatchJob("streaming", (_job(30).config, _job(70).config), 0.05)
        )
        assert _claim_all(queue) == [batch_id, single_ids[1], single_ids[0]]

    def test_fifo_scheduler_ignores_batch_cost(self, tmp_path):
        queue = BrokerQueue(tmp_path, scheduler="fifo")
        first = queue.enqueue(_job(30))
        batch_id = queue.enqueue(
            BatchJob("streaming", (_job(50).config, _job(70).config), 0.05)
        )
        assert _claim_all(queue) == [first, batch_id]

    def test_batch_spec_round_trips(self):
        configs = (make_config("fdip").with_llc_latency(10), make_config("none"))
        batch = BatchJob("streaming", configs, 0.05)
        spec = job_spec(batch)
        assert len(spec["configs"]) == len(spec["digests"]) == 2
        assert "config" not in spec
        rebuilt = job_from_spec(spec)
        assert rebuilt == batch

    def test_member_digest_mismatch_rejected(self):
        batch = BatchJob(
            "streaming", (make_config("none"), make_config("fdip")), 0.05
        )
        spec = job_spec(batch)
        spec["digests"][1] = "0" * 64
        with pytest.raises(BrokerError, match="digest mismatch"):
            job_from_spec(spec)


# ---------------------------------------------------------------------------
# Runtime dispatch: fan-out, fan-in, per-cell cache keys
# ---------------------------------------------------------------------------


def _grid(scale: float = 0.05) -> list[SimJob]:
    return [
        SimJob(workload, make_config(mech), scale)
        for workload in ("apache", "oracle")
        for mech in ("none", "fdip", "boomerang")
    ]


class TestRuntimeBatchDispatch:
    def test_batched_run_many_bit_identical(self):
        jobs = _grid()
        plain = ExperimentRuntime().run_many(jobs)
        runtime = ExperimentRuntime(batch=True, batch_width=2)
        batched = runtime.run_many(jobs)
        assert [r.raw for r in batched] == [r.raw for r in plain]
        assert runtime.executed == len(jobs)
        # 3 jobs per workload at width 2: one 2-lane batch + 1 singleton.
        assert runtime.backend_telemetry["batch_units"] == 2
        assert runtime.backend_telemetry["batched_jobs"] == 4

    def test_batched_results_land_under_per_cell_keys(self, tmp_path):
        jobs = _grid()
        runtime = ExperimentRuntime(cache_dir=tmp_path, batch=True, batch_width=4)
        first = runtime.run_many(jobs)
        assert runtime.executed == len(jobs)
        cache = ResultCache(tmp_path)
        for job in jobs:
            assert cache.get(*job.key) is not None
        # A fresh runtime (fresh process, effectively) resolves everything
        # from the per-cell cache — batching never executed anything.
        warm = ExperimentRuntime(cache_dir=tmp_path, batch=True, batch_width=4)
        again = warm.run_many(jobs)
        assert warm.executed == 0
        assert [r.raw for r in again] == [r.raw for r in first]

    def test_broker_backend_runs_batch_units(self, tmp_path):
        jobs = [
            SimJob("streaming", make_config(mech), 0.05)
            for mech in ("none", "fdip", "boomerang", "pif")
        ]
        expect = ExperimentRuntime().run_many(jobs)
        runtime = ExperimentRuntime(
            cache_dir=tmp_path, backend="broker", batch=True, batch_width=2
        )
        got = runtime.run_many(jobs)
        assert [r.raw for r in got] == [r.raw for r in expect]
        # execute_claimed mirrored every member under its per-cell key.
        cache = ResultCache(tmp_path)
        for job in jobs:
            assert cache.get(*job.key) is not None


# ---------------------------------------------------------------------------
# Manifest resume with batched fill
# ---------------------------------------------------------------------------

#: 12 unique jobs (6 fdip cells + 6 matched baselines) at a tiny scale.
TINY = ExperimentScale(
    name="btiny",
    workload_scale=0.05,
    latency_points=(1, 30),
    btb_sizes=(2048,),
    fig3_btb_sizes=(2048,),
)

BSPEC = SweepSpec(
    "btest", "batched resume test grid", "d",
    mechanisms=("fdip",),
    axes=(("llc_latency", (30,)),),
)


class TestResumeWithBatchedFill:
    @pytest.fixture(autouse=True)
    def _registered(self, monkeypatch):
        monkeypatch.setitem(SCALES, "btiny", TINY)
        monkeypatch.setitem(SWEEPS, "btest", BSPEC)

    def test_missing_cells_filled_by_batched_run(self, tmp_path, capsys):
        """Interrupt a plain run, resume it **batched**: the batched fill
        must be invisible — exactly the missing cells simulate, and the
        merged table is bit-identical to the uninterrupted run."""
        runtime = configure_runtime(cache_dir=tmp_path)
        manifest = write_manifest(tmp_path, BSPEC, "btiny", None)
        full_table = BSPEC.run("btiny").to_table()
        assert runtime.executed == 12

        # Loose records sort by workload directory, so dropping the first
        # half erases whole workloads — the interruption shape where the
        # batched fill actually forms multi-lane units.
        loose = sorted((tmp_path / SCHEMA_TAG).rglob("*.json"))
        assert len(loose) == 12
        for path in loose[:6]:
            path.unlink()

        runner_mod._RUNTIME = None  # a fresh process, effectively
        runtime = configure_runtime(cache_dir=tmp_path, batch=True, batch_width=3)
        missing = missing_cells(load_manifest(manifest.path), runtime.disk)
        assert len(missing) == 6
        runtime.run_many(missing)
        assert runtime.executed == 6  # exactly the missing cells
        assert runtime.backend_telemetry["batch_units"] >= 1
        assert BSPEC.run("btiny").to_table() == full_table

        # The CLI resume path with --batch on the now-complete cache.
        runner_mod._RUNTIME = None
        capsys.readouterr()
        assert main(
            ["run", "--resume", str(manifest.path), "--batch", "--no-table"]
        ) == 0
        out = capsys.readouterr().out
        assert "12/12 cells already cached, submitting 0 missing" in out


# ---------------------------------------------------------------------------
# Per-stage profiling
# ---------------------------------------------------------------------------


class TestProfiling:
    def test_profiled_per_cell_run_bit_identical(self):
        job = SimJob("apache", make_config("boomerang"), SCALE)
        plain = execute_job(job)
        profiling.enable()
        try:
            profiled = execute_job(job)
        finally:
            profiling.disable()
        assert profiled.raw == plain.raw

    def test_profiled_batched_run_bit_identical(self):
        batch = BatchJob(
            "apache", (make_config("none"), make_config("boomerang")), SCALE
        )
        plain = execute_batch_job(batch)
        profiling.enable()
        try:
            profiled = execute_batch_job(batch)
        finally:
            profiling.disable()
        assert [r.raw for r in profiled] == [r.raw for r in plain]

    def test_per_cell_table_attributes_every_stage(self):
        profiler = profiling.enable()
        try:
            execute_job(SimJob("apache", make_config("boomerang"), SCALE))
        finally:
            profiling.disable()
        table = profiler.table()
        for stage in ("fill", "squash", "retire", "decode",
                      "fetch", "bpu+miss-probe", "prefetch:ftq-scan"):
            assert stage in table
        assert "total" in table

    def test_batched_table_includes_fast_forward(self):
        profiler = profiling.enable()
        try:
            execute_batch_job(
                BatchJob("apache", (make_config("none"), make_config("fdip")), SCALE)
            )
        finally:
            profiling.disable()
        assert "fast-forward" in profiler.table()

    def test_empty_profiler_says_so(self):
        profiler = profiling.StageProfiler()
        assert "nothing executed" in profiler.table()

    def test_cli_flag_forces_serial_backend(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(SCALES, "btiny", TINY)
        monkeypatch.setitem(SWEEPS, "btest", BSPEC)
        assert main(
            ["run", "btest", "--scale", "btiny", "--batch",
             "--profile-stages", "--backend", "pool",
             "--cache-dir", str(tmp_path), "--no-table"]
        ) == 0
        captured = capsys.readouterr()
        assert "forces the serial backend" in captured.err
        assert "per-stage attribution" in captured.out
        assert "backend=serial" in captured.out
