"""The generated tables in docs/experiments.md must match the registries.

Same gate CI runs (`python scripts/generate_docs_tables.py --check`):
adding an exhibit, sweep, or paper claim without regenerating the docs is
a test failure, not a silent drift.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_generator():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        spec = importlib.util.spec_from_file_location(
            "generate_docs_tables", REPO_ROOT / "scripts" / "generate_docs_tables.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(REPO_ROOT / "scripts"))


def test_docs_tables_match_registries():
    generator = _load_generator()
    committed = generator.DOC_PATH.read_text()
    assert generator.render(committed) == committed, (
        "docs/experiments.md is stale — regenerate with "
        "`python scripts/generate_docs_tables.py`"
    )


def test_check_mode_reports_clean():
    generator = _load_generator()
    assert generator.main(["--check"]) == 0
