"""``scripts/bench_report.py``: malformed payloads warn, never vanish.

The report used to drop a ``BENCH_*.json`` file that parsed to a
non-object (a bare list, a number) without a word — a broken benchmark
writer would silently disappear from the perf trajectory. Both malformed
shapes must now warn on stderr while the report still renders from
whatever is valid.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_report",
    Path(__file__).resolve().parents[1] / "scripts" / "bench_report.py",
)
assert _SPEC is not None and _SPEC.loader is not None
bench_report = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_report", bench_report)
_SPEC.loader.exec_module(bench_report)


def _write(results_dir: Path, name: str, text: str) -> Path:
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(text)
    return path


def test_malformed_payloads_warn_on_stderr_but_report_renders(tmp_path, capsys):
    _write(tmp_path, "good", json.dumps({"cells": 7, "speedup": 2.5}))
    _write(tmp_path, "torn", '{"cells": 7, "spee')  # unparseable bytes
    _write(tmp_path, "list", json.dumps([1, 2, 3]))  # valid JSON, wrong shape
    payloads = bench_report.load_payloads(tmp_path)
    assert [name for name, _ in payloads] == ["good"]
    err = capsys.readouterr().err
    assert "skipping unreadable" in err and "BENCH_torn.json" in err
    assert "skipping malformed" in err and "BENCH_list.json" in err
    assert "not a JSON object (got list)" in err


def test_main_reports_valid_payloads_despite_malformed_neighbours(tmp_path, capsys):
    _write(tmp_path, "good", json.dumps({"cells": 7, "speedup": 2.5}))
    _write(tmp_path, "list", json.dumps("just a string"))
    assert bench_report.main(["--results-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "| good |" in captured.out
    assert "| list |" not in captured.out  # no row for the malformed file
    assert "not a JSON object (got str)" in captured.err


def test_main_fails_when_nothing_is_valid(tmp_path, capsys):
    _write(tmp_path, "list", json.dumps([1]))
    assert bench_report.main(["--results-dir", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "no BENCH_*.json payloads" in captured.err
