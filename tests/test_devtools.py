"""reprolint (repro.devtools): per-rule fixtures, suppressions, CLI.

Every rule gets a bad fixture (asserting the exact RPLxxx code fires)
and a good fixture (asserting it stays quiet), all built as tiny
synthetic package trees — plus the one test that matters most in CI:
the live tree lints clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import RULES, run_lint
from repro.devtools.__main__ import main as devtools_main
from repro.devtools.formats import format_facts, write_baseline
from repro.devtools.sources import load_context, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def make_tree(root: Path, files: dict[str, str]) -> Path:
    """Write a synthetic ``repro`` package tree and return its root."""
    package = root / "repro"
    for rel, text in files.items():
        path = package / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        init = path.parent / "__init__.py"
        walk = path.parent
        while walk != root:
            (walk / "__init__.py").touch()
            walk = walk.parent
    return package


def lint(package: Path, tmp_path: Path, **kwargs) -> list:
    """Lint a synthetic tree against an empty (absent) schema baseline."""
    kwargs.setdefault("schema_baseline", tmp_path / "no_baseline.json")
    return run_lint(package, **kwargs)


def codes_of(findings) -> set[str]:
    return {f.code for f in findings}


# ---------------------------------------------------------------------------
# RPL001 — env reads outside repro.envopts
# ---------------------------------------------------------------------------


class TestRPL001:
    def test_raw_reads_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "bad.py": """
                import os
                A = os.environ.get("REPRO_JOBS")
                B = os.getenv("REPRO_SCALE")
                """,
            },
        )
        findings = [f for f in lint(package, tmp_path) if f.code == "RPL001"]
        assert [(f.rel, f.line) for f in findings] == [
            ("bad.py", 3),
            ("bad.py", 4),
        ]

    def test_from_import_flagged(self, tmp_path):
        package = make_tree(
            tmp_path, {"bad.py": "from os import environ\n"}
        )
        assert "RPL001" in codes_of(lint(package, tmp_path))

    def test_envopts_itself_exempt(self, tmp_path):
        package = make_tree(
            tmp_path,
            {"envopts.py": "import os\nX = os.environ.get('REPRO_JOBS')\n"},
        )
        assert "RPL001" not in codes_of(lint(package, tmp_path))

    def test_routed_read_clean(self, tmp_path):
        package = make_tree(
            tmp_path,
            {"good.py": "from .envopts import env_str\nX = env_str('REPRO_JOBS')\n"},
        )
        assert "RPL001" not in codes_of(lint(package, tmp_path))


# ---------------------------------------------------------------------------
# RPL002 — durable writes outside atomicio
# ---------------------------------------------------------------------------

_BAD_CACHE = """
import os, tempfile

def put(path, record):
    with open(path, "w") as fh:
        fh.write(record)
    path.write_text(record)
    path.write_bytes(b"x")
    fd, tmp = tempfile.mkstemp()
    os.replace(tmp, path)
"""


class TestRPL002:
    def test_every_raw_write_idiom_flagged(self, tmp_path):
        package = make_tree(tmp_path, {"runtime/cache.py": _BAD_CACHE})
        findings = [f for f in lint(package, tmp_path) if f.code == "RPL002"]
        assert len(findings) == 5
        assert all(f.rel == "runtime/cache.py" for f in findings)

    def test_only_durable_modules_in_scope(self, tmp_path):
        package = make_tree(tmp_path, {"analysis/report.py": _BAD_CACHE})
        assert "RPL002" not in codes_of(lint(package, tmp_path))

    def test_reads_and_locks_are_fine(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "runtime/shards.py": """
                import os
                from .atomicio import atomic_writer

                def read_shard(path):
                    with path.open("r") as fh:
                        return fh.read()

                def lock(path):
                    return os.open(path, os.O_CREAT | os.O_RDWR)

                def write_shard(path, records):
                    with atomic_writer(path, fsync=True) as fh:
                        fh.write(records)
                """,
            },
        )
        assert "RPL002" not in codes_of(lint(package, tmp_path))


# ---------------------------------------------------------------------------
# RPL003 — confighash exhaustiveness
# ---------------------------------------------------------------------------


class TestRPL003:
    def test_uncanonicalizable_fields_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Nested:
                    xs: tuple[int, ...]
                    mapping: dict[str, int]

                @dataclass(frozen=True)
                class SimConfig:
                    a: int
                    b: Nested
                    anything: object
                """,
            },
        )
        findings = [f for f in lint(package, tmp_path) if f.code == "RPL003"]
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("Nested.mapping" in m for m in messages)
        assert any("SimConfig.anything" in m for m in messages)

    def test_unreachable_dataclass_not_checked(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "config.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Standalone:
                    anything: object

                @dataclass(frozen=True)
                class SimConfig:
                    a: int
                """,
            },
        )
        assert "RPL003" not in codes_of(lint(package, tmp_path))

    def test_good_annotations_clean(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "config.py": """
                from dataclasses import dataclass
                from typing import ClassVar

                @dataclass(frozen=True)
                class Inner:
                    pair: tuple[tuple[str, float], ...]

                @dataclass(frozen=True)
                class SimConfig:
                    KNOWN: ClassVar[dict] = {}
                    a: int
                    b: "Inner"
                    c: str | None
                    d: tuple[int, ...]
                """,
            },
        )
        assert "RPL003" not in codes_of(lint(package, tmp_path))

    def test_live_config_tree_is_exhaustive(self):
        ctx = load_context(PACKAGE_ROOT)
        assert RULES["RPL003"].check(ctx) == []


# ---------------------------------------------------------------------------
# RPL004 — schema-tag drift
# ---------------------------------------------------------------------------

_TRACKED_CACHE = """
import re
_SCHEMA_MAJOR = "engine-v1"
_NAME_DIGEST_CHARS = 16
_TAG_DIR_RE = re.compile(r"engine-v\\d+")
_LOOSE_NAME_RE = re.compile(r".*")

def _path(root, digest):
    return root / digest[:_NAME_DIGEST_CHARS]

def put(path, payload):
    record = {"schema": _SCHEMA_MAJOR, "digest": "x", "payload": payload}
    return record
"""


class TestRPL004:
    def _lint_with_baseline(self, tmp_path, cache_src, baseline_from=None):
        package = make_tree(tmp_path, {"runtime/cache.py": cache_src})
        baseline = tmp_path / "schema_baseline.json"
        if baseline_from is not None:
            base_pkg = make_tree(tmp_path / "base", {"runtime/cache.py": baseline_from})
            ctx = load_context(base_pkg, schema_baseline=baseline)
            write_baseline(baseline, format_facts(ctx))
        return run_lint(package, schema_baseline=baseline)

    def test_unchanged_format_is_clean(self, tmp_path):
        findings = self._lint_with_baseline(
            tmp_path, _TRACKED_CACHE, baseline_from=_TRACKED_CACHE
        )
        assert "RPL004" not in codes_of(findings)

    def test_missing_baseline_reported(self, tmp_path):
        findings = self._lint_with_baseline(tmp_path, _TRACKED_CACHE)
        [finding] = [f for f in findings if f.code == "RPL004"]
        assert "no committed fingerprint baseline" in finding.message

    def test_format_change_without_tag_bump(self, tmp_path):
        changed = _TRACKED_CACHE.replace('"digest": "x"', '"sha": "x"')
        findings = self._lint_with_baseline(
            tmp_path, changed, baseline_from=_TRACKED_CACHE
        )
        [finding] = [f for f in findings if f.code == "RPL004"]
        assert "bump the tag" in finding.message
        assert "'engine-cache'" in finding.message

    def test_tag_bump_requires_baseline_refresh(self, tmp_path):
        bumped = _TRACKED_CACHE.replace(
            '_SCHEMA_MAJOR = "engine-v1"', '_SCHEMA_MAJOR = "engine-v2"'
        )
        findings = self._lint_with_baseline(
            tmp_path, bumped, baseline_from=_TRACKED_CACHE
        )
        [finding] = [f for f in findings if f.code == "RPL004"]
        assert "refresh the committed baseline" in finding.message

    def test_comments_and_docstrings_are_not_drift(self, tmp_path):
        reformatted = _TRACKED_CACHE.replace(
            "def put(path, payload):",
            'def put(path, payload):\n    "Write one record."  # noqa',
        ).replace("import re", "import re  # regex module")
        findings = self._lint_with_baseline(
            tmp_path, reformatted, baseline_from=_TRACKED_CACHE
        )
        assert "RPL004" not in codes_of(findings)

    def test_type_annotations_are_not_drift(self, tmp_path):
        # Annotating a tracked writer (the typing-gate ratchet) must not
        # read as an on-disk format change.
        annotated = _TRACKED_CACHE.replace(
            "def put(path, payload):",
            "def put(path: object, payload: dict) -> dict:",
        ).replace("def _path(root, digest):", "def _path(root, digest: str):")
        findings = self._lint_with_baseline(
            tmp_path, annotated, baseline_from=_TRACKED_CACHE
        )
        assert "RPL004" not in codes_of(findings)

    def test_live_baseline_matches_tree(self):
        # The committed schema_baseline.json must track the committed
        # formats — this is the check CI leans on.
        ctx = load_context(PACKAGE_ROOT)
        assert RULES["RPL004"].check(ctx) == []
        baseline = json.loads(
            (PACKAGE_ROOT / "devtools" / "schema_baseline.json").read_text()
        )
        assert set(baseline) == set(format_facts(ctx))


# ---------------------------------------------------------------------------
# RPL005 — counter-namespace collisions
# ---------------------------------------------------------------------------

_STAGES = """
class FetchUnit:
    def counters(self):
        return {"stalls": 1}

class BPUStage:
    def counters(self):
        return {"stalls": 2}

class SubBPU(BPUStage):
    pass

class QuietUnit:
    def counters(self):
        return {"quiet_hits": 3}
"""

_RESULTS = """
def aggregate_stage_counters(stages):
    counters = {"cycles": 0}
    counters["retired_instrs"] = 0
    return counters
"""


class TestRPL005:
    def _tree(self, tmp_path, mechanisms_src):
        return make_tree(
            tmp_path,
            {
                "core/stages/units.py": _STAGES,
                "core/results.py": _RESULTS,
                "core/mechanisms.py": mechanisms_src,
            },
        )

    def test_cross_stage_collision_flagged(self, tmp_path):
        package = self._tree(
            tmp_path,
            """
            def _compose(cfg):
                return [FetchUnit(), BPUStage()]
            STAGE_COMPOSERS = {"clash": _compose}
            """,
        )
        [finding] = [f for f in lint(package, tmp_path) if f.code == "RPL005"]
        assert "'stalls'" in finding.message
        assert "'clash'" in finding.message

    def test_collision_via_inherited_counters(self, tmp_path):
        # SubBPU declares no counters() of its own; it inherits BPUStage's
        # keys, which still collide with FetchUnit's.
        package = self._tree(
            tmp_path,
            """
            def _compose(cfg):
                return [FetchUnit(), SubBPU()]
            STAGE_COMPOSERS = {"clash": _compose}
            """,
        )
        assert "RPL005" in codes_of(lint(package, tmp_path))

    def test_reserved_aggregate_key_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "core/stages/units.py": """
                class CycleThief:
                    def counters(self):
                        return {"cycles": 9}
                """,
                "core/results.py": _RESULTS,
                "core/mechanisms.py": """
                def _compose(cfg):
                    return [CycleThief()]
                STAGE_COMPOSERS = {"thief": _compose}
                """,
            },
        )
        [finding] = [f for f in lint(package, tmp_path) if f.code == "RPL005"]
        assert "aggregate_stage_counters" in finding.message

    def test_composition_through_helpers_resolved(self, tmp_path):
        # Composers that delegate to shared helper functions (the _spine
        # idiom) are followed transitively.
        package = self._tree(
            tmp_path,
            """
            def _spine():
                return [FetchUnit()]
            def _compose(cfg):
                return _spine() + [BPUStage()]
            STAGE_COMPOSERS = {"clash": _compose}
            """,
        )
        assert "RPL005" in codes_of(lint(package, tmp_path))

    def test_disjoint_namespaces_clean(self, tmp_path):
        package = self._tree(
            tmp_path,
            """
            def _compose(cfg):
                return [FetchUnit(), QuietUnit()]
            STAGE_COMPOSERS = {"fine": _compose}
            """,
        )
        assert "RPL005" not in codes_of(lint(package, tmp_path))


# ---------------------------------------------------------------------------
# RPL006 — registry consistency
# ---------------------------------------------------------------------------


class TestRPL006:
    def test_mechanism_registry_drift_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "core/mechanisms.py": """
                MECHANISMS = ("none", "boomerang")
                FIGURE_MECHANISMS = ("none", "ghost")
                _TRAITS = {"none": 1}
                def _compose(cfg):
                    return []
                STAGE_COMPOSERS = {"none": _compose, "boomerang": _compose}
                """,
            },
        )
        findings = [f for f in lint(package, tmp_path) if f.code == "RPL006"]
        messages = " | ".join(f.message for f in findings)
        assert "_TRAITS keys disagree" in messages
        assert "FIGURE_MECHANISMS is not a subset" in messages
        assert "STAGE_COMPOSERS" not in messages  # those keys DO agree

    def test_env_choices_drift_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "envopts.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class EnvOption:
                    name: str
                    choices: tuple = ()

                OPTIONS = (
                    EnvOption("REPRO_BACKEND", choices=("auto", "serial")),
                )
                """,
                "runtime/executors.py": """
                BACKEND_NAMES = ("auto", "serial", "pool", "broker")
                """,
            },
        )
        [finding] = [f for f in lint(package, tmp_path) if f.code == "RPL006"]
        assert "REPRO_BACKEND choices disagree" in finding.message
        assert finding.rel == "envopts.py"

    def test_unknown_sweep_exhibit_flagged(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "experiments/__init__.py": """
                EXPERIMENTS = {"figure_7": object()}
                """,
                "experiments/sweeps/__init__.py": """
                class SweepSpec:
                    def __init__(self, **kw):
                        pass

                SPECS = (
                    SweepSpec(name="ok", exhibit="figure_7"),
                    SweepSpec(name="bad", exhibit="figure_99"),
                )
                """,
            },
        )
        [finding] = [f for f in lint(package, tmp_path) if f.code == "RPL006"]
        assert "'figure_99'" in finding.message

    def test_live_registries_consistent(self):
        ctx = load_context(PACKAGE_ROOT)
        assert RULES["RPL006"].check(ctx) == []


# ---------------------------------------------------------------------------
# RPL007 — docs drift
# ---------------------------------------------------------------------------


class TestRPL007:
    def _repo(self, tmp_path, *, marker=True, rule_doc=True, linked=True):
        repo = tmp_path / "fakerepo"
        package = make_tree(repo / "src", {"core.py": "X = 1\n"})
        (repo / "scripts").mkdir()
        (repo / "scripts" / "generate_docs_tables.py").write_text(
            'BLOCKS = {"exhibits": None}\n'
        )
        (repo / "docs").mkdir()
        body = "table\n"
        if marker:
            body = (
                "<!-- generated:begin exhibits -->\n"
                "table\n"
                "<!-- generated:end exhibits -->\n"
            )
        (repo / "docs" / "experiments.md").write_text(body)
        codes = " ".join(sorted(RULES)) if rule_doc else "RPL001 only"
        (repo / "docs" / "devtools.md").write_text(f"# reprolint\n{codes}\n")
        link = "see docs/devtools.md" if linked else "no link here"
        (repo / "README.md").write_text(link + "\n")
        (repo / "docs" / "architecture.md").write_text(link + "\n")
        return package, repo

    def test_missing_generated_marker_flagged(self, tmp_path):
        package, repo = self._repo(tmp_path, marker=False)
        findings = [
            f
            for f in lint(package, tmp_path, repo_root=repo)
            if f.code == "RPL007"
        ]
        assert len(findings) == 2  # begin + end markers both missing
        assert all("generated-table marker" in f.message for f in findings)

    def test_undocumented_rule_flagged(self, tmp_path):
        package, repo = self._repo(tmp_path, rule_doc=False)
        findings = [
            f
            for f in lint(package, tmp_path, repo_root=repo)
            if f.code == "RPL007"
        ]
        assert any("not documented in docs/devtools.md" in f.message for f in findings)

    def test_unlinked_doc_flagged(self, tmp_path):
        package, repo = self._repo(tmp_path, linked=False)
        findings = [
            f
            for f in lint(package, tmp_path, repo_root=repo)
            if f.code == "RPL007"
        ]
        assert {f.rel for f in findings} == {"README.md", "docs/architecture.md"}

    def test_complete_docs_clean(self, tmp_path):
        package, repo = self._repo(tmp_path)
        assert "RPL007" not in codes_of(lint(package, tmp_path, repo_root=repo))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_parse(self):
        per_line, per_file = parse_suppressions(
            "x = 1  # reprolint: disable=RPL001,RPL002\n"
            "# reprolint: disable-file=RPL004\n"
        )
        assert per_line == {1: {"RPL001", "RPL002"}}
        assert per_file == {"RPL004"}

    def test_line_suppression_silences_only_that_code(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "bad.py": """
                import os
                A = os.environ.get("REPRO_JOBS")  # reprolint: disable=RPL001
                B = os.getenv("REPRO_SCALE")
                """,
            },
        )
        findings = [f for f in lint(package, tmp_path) if f.code == "RPL001"]
        assert [f.line for f in findings] == [4]

    def test_file_suppression(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "bad.py": """
                # reprolint: disable-file=RPL001
                import os
                A = os.environ.get("REPRO_JOBS")
                B = os.getenv("REPRO_SCALE")
                """,
            },
        )
        assert "RPL001" not in codes_of(lint(package, tmp_path))

    def test_disable_all(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "bad.py": """
                import os
                A = os.environ.get("REPRO_JOBS")  # reprolint: disable=all
                """,
            },
        )
        assert "RPL001" not in codes_of(lint(package, tmp_path))


# ---------------------------------------------------------------------------
# CLI + the check that gates CI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        package = make_tree(tmp_path, {"fine.py": "X = 1\n"})
        code = devtools_main(["lint", "--package-root", str(package)])
        out = capsys.readouterr().out
        assert code == 0
        assert "reprolint: clean" in out

    def test_lint_bad_tree_exits_one_with_counts(self, tmp_path, capsys):
        package = make_tree(
            tmp_path,
            {"bad.py": "import os\nA = os.environ.get('REPRO_JOBS')\n"},
        )
        code = devtools_main(["lint", "--package-root", str(package)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad.py:2: RPL001" in out
        assert "RPL001 (env-precedence): 1" in out
        assert "reprolint: 1 finding(s)" in out

    def test_codes_filter(self, tmp_path, capsys):
        package = make_tree(
            tmp_path,
            {"bad.py": "import os\nA = os.environ.get('REPRO_JOBS')\n"},
        )
        code = devtools_main(
            ["lint", "--package-root", str(package), "--codes", "RPL002"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_code_rejected(self, tmp_path):
        package = make_tree(tmp_path, {"fine.py": "X = 1\n"})
        with pytest.raises(SystemExit):
            devtools_main(
                ["lint", "--package-root", str(package), "--codes", "RPL999"]
            )

    def test_baseline_command_fixes_drift(self, tmp_path, capsys):
        package = make_tree(tmp_path, {"runtime/cache.py": _TRACKED_CACHE})
        baseline = tmp_path / "schema_baseline.json"
        args = ["--package-root", str(package), "--baseline", str(baseline)]
        assert devtools_main(["lint", *args]) == 1  # no baseline yet: RPL004
        assert devtools_main(["baseline", *args]) == 0
        assert baseline.is_file()
        assert devtools_main(["lint", *args]) == 0
        capsys.readouterr()


class TestLiveTree:
    def test_live_tree_lints_clean(self):
        findings = run_lint(PACKAGE_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_every_rule_registered_and_documented_shape(self):
        assert len(RULES) >= 6
        for code, rule in RULES.items():
            assert code == rule.code
            assert rule.summary
