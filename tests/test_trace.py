"""Tests for the dynamic trace walker and its columnar representation."""

import json
import pathlib
from array import array

import pytest

from tuple_baseline import tuple_walk

from repro.errors import WorkloadError
from repro.workloads.builder import build_cfg
from repro.workloads.isa import BranchKind, EntryKind
from repro.workloads.profiles import APACHE, STREAMING, get_profile
from repro.workloads.trace import (
    COLUMN_SPECS,
    REC_ENTRY,
    REC_KIND,
    REC_NEXT,
    REC_NINSTR,
    REC_START,
    REC_TAKEN,
    TraceBuilder,
    TraceRecordView,
    generate_trace,
    summarize,
    taken_conditional_distances,
)
from repro.workloads.tracestore import trace_seed


@pytest.fixture(scope="module")
def cfg():
    return build_cfg(APACHE.scaled(0.1))


@pytest.fixture(scope="module")
def trace(cfg):
    return generate_trace(cfg, 40_000, seed=7)


class TestWalkerBasics:
    def test_length_reached(self, trace):
        assert trace.n_instrs >= 40_000

    def test_deterministic(self, cfg, trace):
        again = generate_trace(cfg, 40_000, seed=7)
        assert again.records == trace.records

    def test_seed_changes_walk(self, cfg, trace):
        other = generate_trace(cfg, 40_000, seed=8)
        assert other.records != trace.records

    def test_rejects_zero_length(self, cfg):
        with pytest.raises(WorkloadError):
            generate_trace(cfg, 0)

    def test_records_reference_real_blocks(self, cfg, trace):
        for rec in trace.records[:500]:
            assert rec[REC_START] in cfg.blocks

    def test_record_sizes_match_static(self, cfg, trace):
        for rec in trace.records[:500]:
            assert rec[REC_NINSTR] == cfg.blocks[rec[REC_START]].n_instrs


class TestControlFlowConsistency:
    def test_successors_are_consistent(self, cfg, trace):
        """next_pc of each record equals start of the next record."""
        for cur, nxt in zip(trace.records[:2000], trace.records[1:2001]):
            assert cur[REC_NEXT] == nxt[REC_START]

    def test_not_taken_goes_to_fallthrough(self, cfg, trace):
        for rec in trace.records[:2000]:
            if not rec[REC_TAKEN]:
                blk = cfg.blocks[rec[REC_START]]
                assert rec[REC_NEXT] == blk.fallthrough

    def test_direct_branches_go_to_static_target(self, cfg, trace):
        for rec in trace.records[:2000]:
            blk = cfg.blocks[rec[REC_START]]
            if rec[REC_TAKEN] and blk.kind in (BranchKind.COND, BranchKind.JUMP,
                                               BranchKind.CALL):
                assert rec[REC_NEXT] == blk.target

    def test_indirect_targets_come_from_target_set(self, cfg, trace):
        for rec in trace.records[:5000]:
            blk = cfg.blocks[rec[REC_START]]
            if blk.kind in (BranchKind.IND_CALL, BranchKind.IND_JUMP):
                allowed = {t for t, _ in blk.indirect_targets}
                assert rec[REC_NEXT] in allowed

    def test_unconditional_always_taken(self, trace):
        for rec in trace.records[:2000]:
            if rec[REC_KIND] != BranchKind.COND:
                assert rec[REC_TAKEN] == 1

    def test_calls_and_returns_balance(self, cfg, trace):
        """Returns always resume at the fall-through of a prior call."""
        stack = []
        for rec in trace.records:
            blk = cfg.blocks[rec[REC_START]]
            if blk.kind in (BranchKind.CALL, BranchKind.IND_CALL):
                stack.append(blk.fallthrough)
            elif blk.kind == BranchKind.RET and stack:
                assert rec[REC_NEXT] == stack.pop()


class TestEntryKinds:
    def test_first_record_sequential(self, trace):
        assert trace.records[0][REC_ENTRY] == EntryKind.SEQUENTIAL

    def test_entry_kind_matches_previous_branch(self, trace):
        for cur, nxt in zip(trace.records[:2000], trace.records[1:2001]):
            if not cur[REC_TAKEN]:
                expected = EntryKind.SEQUENTIAL
            elif cur[REC_KIND] == BranchKind.COND:
                expected = EntryKind.CONDITIONAL
            else:
                expected = EntryKind.UNCONDITIONAL
            assert nxt[REC_ENTRY] == expected


class TestLoopsAndCorrelation:
    def test_loop_branches_repeat_taken(self, cfg, trace):
        """A loop branch's taken-run should approximate its fixed trips."""
        from collections import defaultdict
        runs = defaultdict(list)
        current = defaultdict(int)
        for rec in trace.records:
            blk = cfg.blocks[rec[REC_START]]
            if not blk.is_loop:
                continue
            if rec[REC_TAKEN]:
                current[blk.start] += 1
            else:
                runs[blk.start].append(current[blk.start])
                current[blk.start] = 0
        # Trips are fixed per site: every completed activation has equal length.
        checked = 0
        for site, lengths in runs.items():
            if len(lengths) >= 2:
                assert len(set(lengths)) == 1, f"site {site:#x} trips vary: {lengths}"
                checked += 1
        assert checked > 0

    def test_correlated_branches_follow_source(self, cfg, trace):
        last = {}
        checked = 0
        for rec in trace.records:
            blk = cfg.blocks[rec[REC_START]]
            if blk.kind == BranchKind.COND and blk.corr_src and blk.corr_src in last:
                expected = last[blk.corr_src] ^ (1 if blk.corr_invert else 0)
                assert rec[REC_TAKEN] == expected
                checked += 1
            if blk.kind == BranchKind.COND:
                last[rec[REC_START]] = rec[REC_TAKEN]
        assert checked > 0


class TestSummary:
    def test_counts_add_up(self, trace):
        s = summarize(trace)
        assert s.n_records == len(trace.records)
        assert sum(s.kind_counts.values()) == s.n_records
        assert s.cond_frac + s.uncond_frac == pytest.approx(1.0)

    def test_footprint_positive(self, trace):
        s = summarize(trace)
        assert s.footprint_kb > 0
        assert s.unique_basic_blocks > 0

    def test_avg_bb_consistent(self, trace):
        s = summarize(trace)
        assert s.avg_bb_instrs == pytest.approx(trace.n_instrs / len(trace.records))


class TestColumnarRepresentation:
    def test_columns_match_specs(self, trace):
        assert len(trace.columns) == len(COLUMN_SPECS)
        for column, (_, typecode) in zip(trace.columns, COLUMN_SPECS):
            assert isinstance(column, array)
            assert column.typecode == typecode
            assert len(column) == len(trace)

    def test_view_indexing_materializes_tuples(self, trace):
        rec = trace.records[0]
        assert isinstance(rec, tuple) and len(rec) == len(COLUMN_SPECS)
        assert rec[REC_START] == trace.columns[REC_START][0]
        assert trace.records[-1][REC_NEXT] == trace.columns[REC_NEXT][-1]

    def test_view_slicing_returns_tuple_list(self, trace):
        head = trace.records[:10]
        assert isinstance(head, list) and len(head) == 10
        assert head == [trace.records[i] for i in range(10)]
        assert trace.records[5:8] == head[5:8]

    def test_view_iteration_matches_indexing(self, trace):
        for i, rec in enumerate(trace.records):
            assert tuple(rec) == trace.records[i]
            if i >= 100:
                break

    def test_view_equality_is_column_equality(self, cfg, trace):
        again = generate_trace(cfg, 40_000, seed=7)
        assert again.records == trace.records
        assert not (again.records != trace.records)
        assert trace.records == list(trace.records)
        assert trace.records != list(trace.records)[:-1]

    def test_len_and_iter_on_trace(self, trace):
        assert len(trace) == len(trace.records)
        first = next(iter(trace))
        assert tuple(first) == trace.records[0]

    def test_column_accessor(self, trace):
        assert trace.column(REC_KIND) is trace.columns[REC_KIND]

    def test_rejects_ragged_columns(self, cfg):
        from repro.workloads.trace import Trace

        columns = tuple(array(tc) for _, tc in COLUMN_SPECS)
        columns[REC_START].append(cfg.entry)
        with pytest.raises(WorkloadError):
            Trace(cfg=cfg, columns=columns, seed=1)


class TestTraceBuilder:
    def test_chunk_buffer_stays_bounded(self, cfg):
        from repro.workloads.trace import _EMIT_CHUNK

        builder = TraceBuilder()
        rec = (cfg.entry, 4, 0, 1, cfg.entry, 0)
        for i in range(_EMIT_CHUNK * 2 + 17):
            builder.append(rec)
            assert len(builder._buffer) < _EMIT_CHUNK
        assert len(builder) == _EMIT_CHUNK * 2 + 17

    def test_build_flushes_the_tail(self, cfg):
        builder = TraceBuilder()
        builder.extend([(cfg.entry, 2, 1, 1, cfg.entry, 0)] * 3)
        trace = builder.build(cfg, seed=5)
        assert len(trace) == 3
        assert trace.n_instrs == 6  # derived from the ninstr column
        assert trace.seed == 5


class TestColumnarTupleEquivalence:
    """The columnar walker is bit-identical to the tuple-list baseline over
    the golden_quick matrix's workloads (same scale the 8-mechanism golden
    engine harness in test_stages.py runs on)."""

    @pytest.fixture(scope="class")
    def golden_scale(self):
        path = pathlib.Path(__file__).parent / "data" / "golden_quick.json"
        with open(path) as fh:
            return json.load(fh)["workload_scale"]

    @pytest.mark.parametrize(
        "name", ["nutch", "streaming", "apache", "zeus", "oracle", "db2"]
    )
    def test_bit_identical_records(self, golden_scale, name):
        profile = get_profile(name).scaled(golden_scale)
        cfg = build_cfg(profile)
        seed = trace_seed(profile)
        want, executed = tuple_walk(cfg, profile.default_trace_instrs, seed)
        trace = generate_trace(cfg, profile.default_trace_instrs, seed=seed)
        assert trace.n_instrs == executed
        assert trace.records == want, f"{name}: columnar walk diverged"


class TestDistanceHistogram:
    def test_figure4_property_holds(self):
        cfg = build_cfg(STREAMING.scaled(0.15))
        trace = generate_trace(cfg, 60_000, seed=3)
        hist = taken_conditional_distances(trace)
        total = sum(hist.values())
        within4 = sum(v for d, v in hist.items() if d <= 4)
        assert within4 / total > 0.85  # paper: ~92%

    def test_histogram_counts_match_taken_conds(self, cfg, trace):
        hist = taken_conditional_distances(trace)
        taken_conds = sum(
            1 for r in trace.records
            if r[REC_KIND] == BranchKind.COND and r[REC_TAKEN]
        )
        assert sum(hist.values()) == taken_conds
