"""Functional tests for the cycle-level engine and simulator API."""

import pytest

from repro import Simulator, make_config, run_mechanism
from repro.core.mechanisms import (
    FIGURE_MECHANISMS,
    MECHANISMS,
    SHALLOW_FTQ_DEPTH,
    build_prefetcher,
    make_config as mk,
    traits_for,
)
from repro.errors import UnknownMechanismError


class TestMechanismRegistry:
    def test_all_mechanisms_have_traits(self):
        for mech in MECHANISMS:
            traits = traits_for(mech)
            assert traits.name == mech

    def test_unknown_mechanism_raises(self):
        with pytest.raises(UnknownMechanismError):
            traits_for("magic")

    def test_decoupled_set(self):
        assert traits_for("fdip").decoupled
        assert traits_for("boomerang").decoupled
        assert not traits_for("none").decoupled
        assert not traits_for("confluence").decoupled

    def test_btb_prefill_assignment(self):
        assert traits_for("boomerang").btb_prefill == "boomerang"
        assert traits_for("confluence").btb_prefill == "confluence"
        assert traits_for("fdip").btb_prefill is None

    def test_confluence_gets_16k_btb(self):
        assert mk("confluence").btb.entries == 16384

    def test_coupled_mechanisms_get_shallow_ftq(self):
        assert mk("none").core.ftq_depth == SHALLOW_FTQ_DEPTH
        assert mk("boomerang").core.ftq_depth == 32

    def test_overrides_pass_through(self):
        cfg = mk("boomerang", perfect_l1i=True)
        assert cfg.perfect_l1i

    def test_build_prefetcher_kinds(self):
        assert build_prefetcher(mk("none"), 30) is None
        assert build_prefetcher(mk("fdip"), 30) is None  # FTQ-scan, not event-driven
        assert build_prefetcher(mk("next_line"), 30).name == "next_line"
        assert build_prefetcher(mk("dip"), 30).name == "dip"
        assert build_prefetcher(mk("pif"), 30).name == "pif"
        assert build_prefetcher(mk("shift"), 30).name == "shift"
        assert build_prefetcher(mk("confluence"), 30).name == "shift"

    def test_shift_redirect_delay_tracks_llc(self):
        pf = build_prefetcher(mk("shift"), 42)
        assert pf.redirect_delay == 42


class TestEngineBasics:
    def test_retires_whole_trace(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none")
        assert res.instructions > 0
        assert res.raw["retired_instrs"] + res.raw["warmup_instrs"] == pytest.approx(
            small_workload.trace.n_instrs
        )

    def test_deterministic(self, small_workload):
        a = Simulator(small_workload, make_config("boomerang")).run()
        b = Simulator(small_workload, make_config("boomerang")).run()
        assert a.raw == b.raw

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_every_mechanism_completes(self, mech, small_workload, sim_cache):
        res = sim_cache.run(small_workload, mech)
        assert res.cycles > 0
        assert 0 < res.ipc < 3.0

    def test_max_instructions_cap(self, small_workload):
        res = Simulator(small_workload, make_config("none")).run(max_instructions=5000)
        total = res.raw["retired_instrs"] + res.raw["warmup_instrs"]
        assert total <= 5200  # may overshoot by at most one basic block

    def test_warmup_excluded_from_measurement(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none")
        assert res.raw["warmup_instrs"] > 0
        assert res.raw["cycles"] < res.raw["total_cycles"]

    def test_run_mechanism_helper(self, small_workload):
        res = run_mechanism("next_line", small_workload)
        assert res.mechanism == "next_line"
        assert res.workload == small_workload.name


class TestPerfectModes:
    def test_perfect_l1i_has_no_stalls(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none", perfect_l1i=True)
        assert res.stall_cycles == 0
        assert res.raw["l1i_demand_misses"] == 0

    def test_perfect_btb_has_no_btb_squashes(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none", perfect_btb=True)
        assert res.squashes_btb == 0

    def test_perfect_l1i_is_faster(self, small_workload, sim_cache):
        base = sim_cache.run(small_workload, "none")
        perfect = sim_cache.run(small_workload, "none", perfect_l1i=True)
        assert perfect.ipc > base.ipc

    def test_perfect_both_is_fastest(self, small_workload, sim_cache):
        p1 = sim_cache.run(small_workload, "none", perfect_l1i=True)
        p2 = sim_cache.run(small_workload, "none", perfect_l1i=True, perfect_btb=True)
        assert p2.ipc >= p1.ipc


class TestSquashAccounting:
    def test_squash_causes_partition(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none")
        assert res.squashes_total == (
            res.raw["squash_btb"] + res.raw["squash_cond"] + res.raw["squash_target"]
        )

    def test_baseline_has_btb_squashes(self, small_oltp_workload, sim_cache):
        res = sim_cache.run(small_oltp_workload, "none")
        assert res.squashes_btb > 0

    def test_boomerang_eliminates_btb_squashes(self, small_oltp_workload, sim_cache):
        res = sim_cache.run(small_oltp_workload, "boomerang")
        assert res.squashes_btb == 0

    def test_boomerang_stalls_instead(self, small_oltp_workload, sim_cache):
        res = sim_cache.run(small_oltp_workload, "boomerang")
        assert res.raw["btb_miss_stall_cycles"] > 0
        assert res.raw["btb_pfb_inserts"] > 0

    def test_confluence_reduces_btb_squashes(self, small_oltp_workload, sim_cache):
        base = sim_cache.run(small_oltp_workload, "none")
        conf = sim_cache.run(small_oltp_workload, "confluence")
        assert conf.squashes_btb < base.squashes_btb * 0.5

    def test_oracle_predictor_removes_direction_squashes(self, small_workload, sim_cache):
        from repro.config import PredictorParams

        res = sim_cache.run(
            small_workload, "none", predictor=PredictorParams(kind="oracle")
        )
        assert res.raw["squash_cond"] == 0


class TestStallClassification:
    def test_stall_classes_partition_total(self, small_workload, sim_cache):
        res = sim_cache.run(small_workload, "none")
        assert res.stall_cycles == (
            res.raw["stall_seq"] + res.raw["stall_cond"] + res.raw["stall_uncond"]
        )

    def test_baseline_sequential_share_dominant(self, medium_workload, sim_cache):
        """Paper Figure 3: sequential misses dominate the baseline."""
        res = sim_cache.run(medium_workload, "none")
        kinds = res.stall_cycles_by_kind()
        seq = max(kinds.values())
        from repro.workloads.isa import EntryKind
        assert kinds[EntryKind.SEQUENTIAL] == seq

    def test_prefetching_reduces_stalls(self, small_workload, sim_cache):
        base = sim_cache.run(small_workload, "none")
        nl = sim_cache.run(small_workload, "next_line")
        assert nl.stall_cycles < base.stall_cycles


class TestBTBSizeEffects:
    def test_bigger_btb_fewer_squashes(self, medium_oltp_workload, sim_cache):
        from repro.config import BTBParams
        small = sim_cache.run(medium_oltp_workload, "none")
        big = sim_cache.run(
            medium_oltp_workload, "none", btb=BTBParams(entries=32768, assoc=4)
        )
        assert big.squashes_btb < small.squashes_btb

    def test_llc_latency_increases_stall_cost(self, small_workload):
        fast = Simulator(
            small_workload, make_config("none").with_llc_latency(5)
        ).run()
        slow = Simulator(
            small_workload, make_config("none").with_llc_latency(60)
        ).run()
        assert slow.stall_cycles > fast.stall_cycles
        assert slow.ipc < fast.ipc
