"""Fault-injection suite: SIGKILLed workers and compactors lose nothing.

Every test here kills a *real* subprocess — a broker worker or a shard
compactor — either deterministically (``REPRO_FAULTPOINTS``) or with an
external SIGKILL, then asserts the system's crash contracts:

* a killed worker's job is recovered and executed **exactly once**, and
  the recovered result is bit-identical to an undisturbed run;
* a killed compactor never corrupts a shard: the cache reads the same
  records before, during and after the crash, and a later compaction
  finishes the fold;
* torn shard data (truncated lines) never surfaces as a result.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

import faultinject
from repro.core.mechanisms import make_config
from repro.core.results import SimulationResult
from repro.runtime import SimJob, compact_cache, execute_job, run_worker, scan_cache
from repro.runtime.broker import BrokerQueue
from repro.runtime.cache import ResultCache
from repro.runtime.shards import read_shard, shard_path
from repro.workloads.workload import reset_trace_store

WL = "streaming"
SCALE = 0.05

#: SIGKILL'd subprocesses report a negative signal return code.
KILLED = -signal.SIGKILL


@pytest.fixture(autouse=True)
def _restore_trace_store():
    """In-process run_worker pins the trace store; undo it per test."""
    yield
    reset_trace_store()


def _job(llc: int | None = None) -> SimJob:
    cfg = make_config("none")
    if llc is not None:
        cfg = cfg.with_llc_latency(llc)
    return SimJob(WL, cfg, SCALE)


def _backdate(path, seconds: float) -> None:
    past = time.time() - seconds
    os.utime(path, (past, past))


def _drain_in_process(cache_dir) -> int:
    """A healthy rescuer worker, run in-process for determinism."""
    return run_worker(
        cache_dir, worker_id="fi-rescue", drain=True, max_idle=0.2, poll_seconds=0.05
    )


# ---------------------------------------------------------------------------
# Worker crashes mid-lease
# ---------------------------------------------------------------------------


class TestWorkerKilledMidLease:
    def test_deterministic_kill_after_claim_recovers_exactly_once(self, tmp_path):
        """The worker dies the instant it owns the lease: nothing ran, the
        claim file is orphaned, and recovery must hand the job to someone
        else exactly once with a bumped attempt count."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _job()
        job_id = queue.enqueue(job)
        proc = faultinject.spawn_worker(
            tmp_path, worker_id="fi-victim", faultpoints="worker-claimed:1"
        )
        assert faultinject.wait_exit(proc) == KILLED
        counts = queue.counts()
        assert counts["claimed"] == 1 and counts["done"] == 0
        # The lease is still fresh — a live worker must never be robbed.
        assert queue.recover_expired() == 0
        _backdate(next(queue.claimed.glob("*.json")), seconds=60)
        assert queue.recover_expired() == 1
        assert _drain_in_process(tmp_path) == 1
        record = queue.read_done(job_id)
        assert record is not None
        assert record["attempts"] == 2  # the victim's claim counted
        assert record["result"]["raw"] == execute_job(job).raw
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1, "failed": 0}

    def test_external_sigkill_mid_flight_loses_nothing(self, tmp_path):
        """A worker killed from outside at an arbitrary point (claiming,
        building the workload, simulating, or just done) must leave the
        queue recoverable to exactly one correct done record."""
        queue = BrokerQueue(tmp_path, lease_seconds=30)
        job = _job()
        job_id = queue.enqueue(job)
        proc = faultinject.spawn_worker(tmp_path, worker_id="fi-victim")
        faultinject.wait_for(
            lambda: queue.counts()["claimed"] >= 1 or queue.counts()["done"] >= 1,
            message="worker to claim the job",
        )
        faultinject.sigkill(proc)
        assert faultinject.wait_exit(proc) == KILLED
        # Recover whatever state the kill left: an expired lease requeues,
        # a completed-but-unreleased claim is deleted as a leftover.
        for path in queue.claimed.glob("*.json"):
            _backdate(path, seconds=60)
        queue.recover_expired()
        _drain_in_process(tmp_path)
        record = queue.read_done(job_id)
        assert record is not None
        assert record["result"]["raw"] == execute_job(job).raw
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1, "failed": 0}

    def test_surviving_worker_finishes_a_killed_peers_batch(self, tmp_path):
        """Two real workers; one dies holding a lease. The survivor must
        recover the orphan via the normal lease path and complete every
        job exactly once — no duplicates, no terminal failures."""
        queue = BrokerQueue(tmp_path, lease_seconds=2)
        first = _job()
        ids = [queue.enqueue(first)]
        victim = faultinject.spawn_worker(
            tmp_path,
            worker_id="fi-victim",
            faultpoints="worker-claimed:1",
            lease_seconds=2,
        )
        assert faultinject.wait_exit(victim) == KILLED
        assert queue.counts()["claimed"] == 1
        ids += [queue.enqueue(_job(llc)) for llc in (15, 45)]
        survivor = faultinject.spawn_worker(
            tmp_path,
            worker_id="fi-survivor",
            drain=True,
            max_idle=10,
            lease_seconds=2,
        )
        assert faultinject.wait_exit(survivor) == 0
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 3, "failed": 0}
        for job_id in ids:
            record = queue.read_done(job_id)
            assert record is not None
            assert record["worker"] == "fi-survivor"
        # The orphaned job carries the victim's attempt; the rest are clean.
        assert sorted(
            queue.read_done(job_id)["attempts"] for job_id in ids
        ) == [1, 1, 2]


class TestDrainWaitsOutPeerLeases:
    def test_drain_worker_outlives_a_dead_peers_lease(self, tmp_path):
        """A draining worker whose max_idle is shorter than the lease must
        not exit while a crashed peer still holds a claim: the lease will
        expire, the job requeue, and this worker must be the one to run
        it. Before the fix the idle clock conflated "queue empty" with
        "all jobs leased by peers" and the last drain worker exited with
        the job stranded in claimed/."""
        queue = BrokerQueue(tmp_path, lease_seconds=3)
        job = _job()
        job_id = queue.enqueue(job)
        victim = faultinject.spawn_worker(
            tmp_path,
            worker_id="fi-victim",
            faultpoints="worker-claimed:1",
            lease_seconds=3,
        )
        assert faultinject.wait_exit(victim) == KILLED
        assert queue.counts()["claimed"] == 1
        rescuer = faultinject.spawn_worker(
            tmp_path,
            worker_id="fi-rescuer",
            drain=True,
            max_idle=1,  # far shorter than the 3 s lease
            lease_seconds=3,
        )
        assert faultinject.wait_exit(rescuer) == 0
        record = queue.read_done(job_id)
        assert record is not None
        assert record["worker"] == "fi-rescuer"
        assert record["attempts"] == 2  # the victim's claim counted
        assert queue.counts() == {"pending": 0, "claimed": 0, "done": 1, "failed": 0}

    def test_drain_exit_is_capped_when_a_live_peer_grinds_on(self, tmp_path):
        """The lease-wait extension is bounded: with a healthy peer
        heartbeating its claim forever, a draining worker still exits
        after DRAIN_LEASE_WAIT_FACTOR leases instead of pinning."""
        from repro.runtime.broker import DRAIN_LEASE_WAIT_FACTOR

        queue = BrokerQueue(tmp_path, lease_seconds=0.4)
        queue.enqueue(_job())
        claimed = queue.claim("fi-peer")  # a peer holds this, "alive"
        stop = False

        def _beat():
            while not stop:
                queue.heartbeat(claimed)
                time.sleep(0.05)

        import threading

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        started = time.time()
        completed = run_worker(
            tmp_path,
            worker_id="fi-drain",
            drain=True,
            max_idle=0.2,
            poll_seconds=0.05,
            lease_seconds=0.4,
        )
        elapsed = time.time() - started
        stop = True
        beater.join()
        assert completed == 0
        # Waited past plain max_idle, but no longer than the cap (plus
        # generous scheduling slack).
        assert elapsed >= DRAIN_LEASE_WAIT_FACTOR * 0.4 - 0.05
        assert elapsed < 30


# ---------------------------------------------------------------------------
# Compactor crashes mid-shard-write
# ---------------------------------------------------------------------------


def _digest(i: int) -> str:
    return f"{i:016x}" + "0" * 48


def _populate(cache: ResultCache, start: int, count: int, workload: str = "wl"):
    for i in range(start, start + count):
        cache.put(
            workload,
            "0.25",
            _digest(i),
            SimulationResult(workload, "none", {"cycles": float(i + 1)}),
        )


def _assert_all_readable(cache_dir, count: int, workload: str = "wl"):
    fresh = ResultCache(cache_dir)
    for i in range(count):
        result = fresh.get(workload, "0.25", _digest(i))
        assert result is not None, f"record {i} lost"
        assert result.raw == {"cycles": float(i + 1)}


class TestCompactionKilledMidWrite:
    def test_kill_before_first_shard_exists_loses_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, 0, 40)
        before = scan_cache(tmp_path)[0]
        proc = faultinject.spawn_compact(tmp_path, faultpoints="shard-entry:7")
        assert faultinject.wait_exit(proc) == KILLED
        mid = scan_cache(tmp_path)[0]
        # The torn temp file is invisible: same records, same layout.
        assert (mid.records, mid.loose_records, mid.shard_records) == (
            before.records,
            40,
            0,
        )
        _assert_all_readable(tmp_path, 40)
        compact_cache(tmp_path)
        after = scan_cache(tmp_path)[0]
        assert (after.records, after.loose_records, after.shard_records) == (40, 0, 40)
        _assert_all_readable(tmp_path, 40)

    def test_kill_mid_rewrite_never_corrupts_existing_shard(self, tmp_path):
        """With a live shard already on disk, a crashed rewrite must leave
        the *old* shard fully intact — the replace never happened."""
        cache = ResultCache(tmp_path)
        _populate(cache, 0, 30)
        compact_cache(tmp_path)
        _populate(cache, 30, 10)  # new loose records since the last fold
        proc = faultinject.spawn_compact(tmp_path, faultpoints="shard-entry:15")
        assert faultinject.wait_exit(proc) == KILLED
        mid = scan_cache(tmp_path)[0]
        assert (mid.records, mid.loose_records, mid.shard_records) == (40, 10, 30)
        _assert_all_readable(tmp_path, 40)
        spath = shard_path(tmp_path / mid.tag / "wl")
        assert len(read_shard(spath)) == 30  # old shard untouched
        compact_cache(tmp_path)
        _assert_all_readable(tmp_path, 40)
        assert len(read_shard(spath)) == 40

    def test_torn_shard_line_never_surfaces_and_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, 0, 5)
        compact_cache(tmp_path)
        tag = scan_cache(tmp_path)[0].tag
        spath = shard_path(tmp_path / tag / "wl")
        with spath.open("a") as fh:
            fh.write('{"schema": "engine-v1-000000000000", "config_d')  # torn
        assert scan_cache(tmp_path)[0].records == 5  # torn line not a record
        _assert_all_readable(tmp_path, 5)
        _populate(cache, 5, 1)
        compact_cache(tmp_path)  # rewrite drops the torn tail for good
        lines = spath.read_text().splitlines()
        assert len(lines) == 6
        for line in lines:
            json.loads(line)  # every surviving line is complete
        _assert_all_readable(tmp_path, 6)


class TestWarehouseRefreshKilledMidConsolidation:
    """SIGKILL inside the warehouse consolidation transaction.

    The contract (``repro.warehouse.core``): the whole refresh — the
    provenance row, every cell mutation, every revision — commits
    atomically, so a refresh killed at any instant (a) leaves the
    previous snapshot fully readable and (b) contributes *zero* rows,
    and the next refresh converges with an exactly-once change history.
    """

    def _status(self, cache_dir):
        from repro.warehouse import connect, read_status

        conn = connect(cache_dir)
        try:
            return read_status(conn)
        finally:
            conn.close()

    def _integrity_ok(self, cache_dir) -> bool:
        import sqlite3

        from repro.warehouse import db_path

        conn = sqlite3.connect(db_path(cache_dir))
        try:
            row = conn.execute("PRAGMA integrity_check").fetchone()
            return row is not None and row[0] == "ok"
        finally:
            conn.close()

    def test_first_refresh_killed_leaves_empty_snapshot_then_converges(
        self, tmp_path
    ):
        from repro.warehouse import refresh_warehouse

        cache = ResultCache(tmp_path)
        _populate(cache, 0, 40)
        proc = faultinject.spawn_warehouse_refresh(
            tmp_path, faultpoints="warehouse-refresh:7"
        )
        assert faultinject.wait_exit(proc) == KILLED
        # The snapshot survives the kill readable — and empty: the dead
        # refresh committed nothing, not even its own provenance row.
        assert self._integrity_ok(tmp_path)
        status = self._status(tmp_path)
        assert (status.active_cells, status.revisions, status.refreshes) == (0, 0, 0)
        stats = refresh_warehouse(tmp_path)
        assert (stats.inserted, stats.changes) == (40, 40)
        assert self._status(tmp_path).revisions == 40  # exactly-once history
        assert refresh_warehouse(tmp_path).changes == 0

    def test_kill_mid_refresh_preserves_previous_snapshot(self, tmp_path):
        from repro.warehouse import refresh_warehouse

        cache = ResultCache(tmp_path)
        _populate(cache, 0, 30)
        refresh_warehouse(tmp_path)
        _populate(cache, 30, 10)  # new results since the last consolidation
        proc = faultinject.spawn_warehouse_refresh(
            tmp_path, faultpoints="warehouse-refresh:4"
        )
        assert faultinject.wait_exit(proc) == KILLED
        assert self._integrity_ok(tmp_path)
        status = self._status(tmp_path)
        # The pre-kill snapshot, bit for bit: 30 cells, their 30 insert
        # revisions, the one completed refresh — nothing half-applied.
        assert (status.active_cells, status.revisions, status.refreshes) == (
            30,
            30,
            1,
        )
        stats = refresh_warehouse(tmp_path)
        assert (stats.inserted, stats.unchanged) == (10, 30)
        status = self._status(tmp_path)
        assert (status.active_cells, status.revisions, status.refreshes) == (
            40,
            40,
            2,
        )
        # Every record is still readable through the cache as well.
        _assert_all_readable(tmp_path, 40)
