"""Exception types for the Boomerang reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload/CFG cannot be built or is malformed."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an impossible state."""


class BrokerError(ReproError):
    """Raised when the distributed job broker cannot complete a batch."""


class UnknownMechanismError(ConfigError):
    """Raised when a mechanism name is not in the registry."""

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown control-flow delivery mechanism {name!r}; "
            f"known mechanisms: {', '.join(known)}"
        )
