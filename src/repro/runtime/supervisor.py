"""Supervised service mode: an autoscaling worker fleet + live status.

The broker (:mod:`repro.runtime.broker`) made distributed execution
possible; this module makes it *operable*. Instead of a human starting
``python -m repro.runtime worker`` processes by hand and polling
``queue`` counts, a :class:`Supervisor` watches the queue and runs the
fleet itself:

* **Autoscaling** — the pending backlog's cost estimates (the same
  ``__w`` weight tokens the longest-first scheduler reads) determine how
  many workers can actually shorten the makespan: with longest-first
  claiming the critical path is the single longest pending job, so
  workers beyond ``ceil(total_cost / longest_cost)`` cannot help.
  :func:`desired_workers` clamps that ideal to configured min/max
  bounds; spawns respect a cooldown so a transient spike does not fork
  a thundering herd. Surge workers are started with ``--drain``, so
  scale-*down* is self-service: an idle worker retires on its own and
  the supervisor just reaps it.
* **Crash restarts with bounded backoff** — a worker that exits
  non-zero is counted, and the next spawn round is pushed out by an
  exponentially growing delay (capped at :data:`BACKOFF_CAP_SECONDS`),
  so a crash-looping configuration cannot hot-spin the fleet. A clean
  exit resets the streak. The supervisor also runs the broker's lease
  recovery each tick, so a SIGKILLed worker's claim is requeued and
  picked up by its replacement.
* **Observability** — :func:`build_status` assembles one JSON-ready
  snapshot of everything service mode can see (queue depths, per-worker
  throughput from done-record telemetry, live lease ages, cache /
  trace-store stats, supervisor state, and per-cell sweep progress with
  an ETA); :func:`render_status` turns it into the dashboard behind
  ``python -m repro.runtime status [--watch] [--json]``. Watch mode
  repaints with one atomic full-screen write per frame — no flicker,
  no partial lines.

Sweep progress joins the *active sweep manifest*
(:mod:`repro.experiments.sweeps.manifest`) against the live queue
directories and the result cache: every cell is in exactly one of
:data:`CELL_STATES` (``unsubmitted → pending → claimed → done/failed``),
and the ETA divides the remaining cost estimate by the fleet's observed
seconds-per-cost-unit (completed cells' ``run_s`` telemetry). Cells of a
``--batch`` run travel under batch job ids, so they step straight from
``unsubmitted`` to ``done`` (via the cache) without visiting the
per-cell queue states — still monotonic, just coarser.

:func:`serve_sweep` ties it together: one call (or ``python -m
repro.runtime serve <sweep>``) starts the sweep coordinator as a
subprocess (with coordinator stealing disabled, so the fleet does the
work), autoscales workers while it runs, and winds the fleet down to
zero afterwards. The results are bit-identical to hand-started workers
— the supervisor only decides *how many* workers run, never *what* they
compute.

The supervisor's own durable state (``<cache-dir>/queue/supervisor.json``
— fleet counters plus a bounded event timeline) is written atomically
via :mod:`repro.runtime.atomicio` like every other queue record, so a
status reader can never observe a torn snapshot.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
import time
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..envopts import exported, read_env
from ..errors import ConfigError
from .atomicio import atomic_write_json
from .broker import BrokerQueue, _parse_job_name, _read_json, broker_env_options
from .cache import SCHEMA_TAG, ResultCache, scan_cache

if TYPE_CHECKING:  # pragma: no cover - cycle guard (sweeps import runtime)
    from ..experiments.sweeps.manifest import ManifestCell, SweepManifest

#: Durable supervisor-state record version (``queue/supervisor.json``).
SUPERVISOR_SCHEMA = "supervisor-v1"

#: ``status --json`` snapshot format version.
STATUS_SCHEMA = "status-v1"

#: Every state a sweep cell can be in, in lifecycle order. A cell only
#: ever moves rightward through this tuple (``failed`` is terminal like
#: ``done``); batched runs may skip the queue states entirely.
CELL_STATES: tuple[str, ...] = (
    "unsubmitted",
    "pending",
    "claimed",
    "done",
    "failed",
)

#: Defaults, overridable via REPRO_SUPERVISOR_* (see :func:`supervisor_options`).
DEFAULT_MIN_WORKERS = 0
DEFAULT_MAX_WORKERS = 4
DEFAULT_COOLDOWN_SECONDS = 2.0
DEFAULT_BACKOFF_SECONDS = 1.0
DEFAULT_WORKER_IDLE_SECONDS = 10.0

#: Upper bound on the crash-restart backoff, however long the streak.
BACKOFF_CAP_SECONDS = 30.0

#: Timeline events kept in the durable state (oldest dropped first).
TIMELINE_CAP = 200


# ---------------------------------------------------------------------------
# Option resolution (explicit args beat REPRO_SUPERVISOR_* beat defaults)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorOptions:
    """Resolved autoscaling tunables (build via :func:`supervisor_options`)."""

    #: Fleet floor: workers kept running even with an empty queue. Floor
    #: workers are persistent (no ``--drain``); surge workers above the
    #: floor retire themselves when idle.
    min_workers: int = DEFAULT_MIN_WORKERS
    #: Fleet ceiling, whatever the backlog demands.
    max_workers: int = DEFAULT_MAX_WORKERS
    #: Minimum delay between scale-up rounds.
    cooldown_seconds: float = DEFAULT_COOLDOWN_SECONDS
    #: Base crash-restart delay; doubles per consecutive crash, capped
    #: at :data:`BACKOFF_CAP_SECONDS`.
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS
    #: ``--max-idle`` handed to surge workers: how long an idle worker
    #: waits before retiring (also bounds the serve wind-down tail).
    worker_idle_seconds: float = DEFAULT_WORKER_IDLE_SECONDS


def _env_int(name: str) -> int | None:
    raw = read_env(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str) -> float | None:
    raw = read_env(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigError(f"{name} must be a number, got {raw!r}") from None


def supervisor_options(
    min_workers: int | None = None,
    max_workers: int | None = None,
    cooldown_seconds: float | None = None,
    backoff_seconds: float | None = None,
    worker_idle_seconds: float | None = None,
) -> SupervisorOptions:
    """Resolve and validate the supervisor tunables.

    Standard precedence (the documented resolution point for the
    ``REPRO_SUPERVISOR_*`` options): an explicit argument beats the
    environment variable beats the default.
    """
    resolved = SupervisorOptions(
        min_workers=(
            min_workers
            if min_workers is not None
            else _env_int("REPRO_SUPERVISOR_MIN") or DEFAULT_MIN_WORKERS
        ),
        max_workers=(
            max_workers
            if max_workers is not None
            else _env_int("REPRO_SUPERVISOR_MAX") or DEFAULT_MAX_WORKERS
        ),
        cooldown_seconds=(
            cooldown_seconds
            if cooldown_seconds is not None
            else _pick(_env_float("REPRO_SUPERVISOR_COOLDOWN"), DEFAULT_COOLDOWN_SECONDS)
        ),
        backoff_seconds=(
            backoff_seconds
            if backoff_seconds is not None
            else _pick(_env_float("REPRO_SUPERVISOR_BACKOFF"), DEFAULT_BACKOFF_SECONDS)
        ),
        worker_idle_seconds=(
            worker_idle_seconds
            if worker_idle_seconds is not None
            else _pick(_env_float("REPRO_SUPERVISOR_IDLE"), DEFAULT_WORKER_IDLE_SECONDS)
        ),
    )
    if resolved.min_workers < 0:
        raise ConfigError(
            f"supervisor min_workers must be >= 0, got {resolved.min_workers}"
        )
    if resolved.max_workers < 1:
        raise ConfigError(
            f"supervisor max_workers must be >= 1, got {resolved.max_workers}"
        )
    if resolved.max_workers < resolved.min_workers:
        raise ConfigError(
            f"supervisor max_workers ({resolved.max_workers}) must be >= "
            f"min_workers ({resolved.min_workers})"
        )
    if resolved.cooldown_seconds < 0 or resolved.backoff_seconds < 0:
        raise ConfigError("supervisor cooldown/backoff must be >= 0 seconds")
    if resolved.worker_idle_seconds <= 0:
        raise ConfigError(
            f"supervisor worker_idle_seconds must be positive, got "
            f"{resolved.worker_idle_seconds}"
        )
    return resolved


def _pick(env_value: float | None, default: float) -> float:
    """Unlike ``or``, preserves an explicit ``0`` from the environment."""
    return env_value if env_value is not None else default


# ---------------------------------------------------------------------------
# Scaling policy
# ---------------------------------------------------------------------------


def pending_costs(queue: BrokerQueue) -> list[int | None]:
    """The backlog's per-job cost estimates, straight from one listdir.

    The queue filename grammar carries each job's deterministic cost as
    its ``__w`` weight token, so sizing the fleet needs no spec reads.
    Jobs without an estimate read as ``None``.
    """
    try:
        names = os.listdir(queue.pending)
    except OSError:
        return []
    out: list[int | None] = []
    for name in names:
        if not name.endswith(".json"):
            continue
        parsed = _parse_job_name(name)
        if parsed is None:
            continue
        out.append(parsed[1])
    return out


def desired_workers(
    costs: Sequence[int | None], options: SupervisorOptions
) -> int:
    """How many workers the current backlog can actually keep busy.

    Under longest-first scheduling the batch cannot finish faster than
    its single longest job, so workers beyond ``ceil(total / longest)``
    only idle: the ideal fleet is ``min(backlog, ceil(total/longest))``,
    clamped to the configured bounds. Jobs without a cost estimate are
    assumed longest-sized (the conservative direction — more workers),
    and an all-unknown backlog falls back to one worker per job.
    """
    backlog = len(costs)
    if backlog == 0:
        ideal = 0
    else:
        known = [c for c in costs if c]
        if known:
            longest = max(known)
            total = sum(known) + longest * (backlog - len(known))
            ideal = min(backlog, math.ceil(total / longest))
        else:
            ideal = backlog
    return max(options.min_workers, min(options.max_workers, ideal))


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


@dataclass
class WorkerProcess:
    """One live fleet member (a ``python -m repro.runtime worker``)."""

    worker_id: str
    proc: subprocess.Popen[bytes]
    started_at: float
    #: Floor workers run without ``--drain`` and never retire themselves.
    persistent: bool


class Supervisor:
    """Spawn, scale, reap and restart a broker worker fleet.

    Drive it by calling :meth:`tick` from a loop (``serve_sweep`` does);
    every tick recovers expired leases, reaps exited workers, applies
    the scaling policy, and persists the durable state snapshot.

    ``worker_command`` substitutes the spawned command line (the test
    harness uses stubs to exercise lifecycle without the engine);
    ``env`` is passed through to the subprocesses (``None`` inherits).
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str],
        options: SupervisorOptions | None = None,
        worker_command: Sequence[str] | None = None,
        env: dict[str, str] | None = None,
    ):
        self.cache_dir = Path(cache_dir)
        self.options = options or supervisor_options()
        broker_env = broker_env_options()
        self.queue = BrokerQueue(
            cache_dir,
            broker_env["lease_seconds"],
            broker_env["max_attempts"],
            broker_env["scheduler"],
        )
        self.worker_command = (
            list(worker_command) if worker_command is not None else None
        )
        self.env = dict(env) if env is not None else None
        self.workers: list[WorkerProcess] = []
        self.timeline: list[dict[str, Any]] = []
        self.started_at = time.time()
        self.spawned = 0
        self.retired = 0
        self.crashes = 0
        self.peak_live = 0
        self._next_worker = 0
        self._next_spawn_at = 0.0
        self._consecutive_crashes = 0

    @property
    def state_path(self) -> Path:
        return self.queue.root / "supervisor.json"

    @property
    def live(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------- events

    def _event(self, event: str, worker: str | None, **detail: Any) -> None:
        record: dict[str, Any] = {
            "t": round(time.time() - self.started_at, 3),
            "event": event,
            "worker": worker,
            "live": len(self.workers),
        }
        record.update(detail)
        self.timeline.append(record)
        del self.timeline[:-TIMELINE_CAP]

    # -------------------------------------------------------------- fleet

    def _spawn_one(self, pending: int) -> WorkerProcess:
        self._next_worker += 1
        worker_id = f"sv{os.getpid()}-{self._next_worker}"
        persistent = len(self.workers) < self.options.min_workers
        if self.worker_command is not None:
            cmd = list(self.worker_command)
        else:
            cmd = [
                sys.executable,
                "-m",
                "repro.runtime",
                "worker",
                "--cache-dir",
                str(self.cache_dir),
                "--worker-id",
                worker_id,
            ]
            if not persistent:
                cmd += [
                    "--drain",
                    "--max-idle",
                    str(self.options.worker_idle_seconds),
                ]
        proc: subprocess.Popen[bytes] = subprocess.Popen(cmd, env=self.env)
        worker = WorkerProcess(worker_id, proc, time.time(), persistent)
        self.workers.append(worker)
        self.spawned += 1
        self.peak_live = max(self.peak_live, len(self.workers))
        self._event(
            "spawn",
            worker_id,
            pid=proc.pid,
            persistent=persistent,
            pending=pending,
        )
        return worker

    def reap(self) -> None:
        """Collect exited workers; a non-zero exit arms the backoff gate."""
        exited = [w for w in self.workers if w.proc.poll() is not None]
        if not exited:
            return
        self.workers = [w for w in self.workers if w.proc.poll() is None]
        for worker in exited:
            returncode = worker.proc.returncode
            if returncode == 0:
                self.retired += 1
                self._consecutive_crashes = 0
                self._event("retire", worker.worker_id, returncode=0)
                continue
            self.crashes += 1
            self._consecutive_crashes += 1
            backoff = min(
                BACKOFF_CAP_SECONDS,
                self.options.backoff_seconds
                * 2 ** (self._consecutive_crashes - 1),
            )
            self._next_spawn_at = max(
                self._next_spawn_at, time.time() + backoff
            )
            self._event(
                "crash",
                worker.worker_id,
                returncode=returncode,
                backoff_s=round(backoff, 3),
            )

    def tick(self, scale_up: bool = True) -> dict[str, Any]:
        """One supervision round; returns the persisted state record.

        Lease recovery runs first, so a crashed worker's claim is back
        in ``pending/`` — and therefore visible to the scaling policy —
        before the fleet size is decided. Replacing a crashed worker is
        just scale-up seeing its requeued job, gated by the crash
        backoff armed in :meth:`reap`.
        """
        self.queue.recover_expired()
        self.reap()
        costs = pending_costs(self.queue)
        desired = desired_workers(costs, self.options)
        now = time.time()
        if (
            scale_up
            and desired > len(self.workers)
            and now >= self._next_spawn_at
        ):
            while len(self.workers) < desired:
                self._spawn_one(pending=len(costs))
            self._next_spawn_at = time.time() + self.options.cooldown_seconds
        return self.write_state()

    def _stop_workers(self, workers: list[WorkerProcess]) -> None:
        for worker in workers:
            if worker.proc.poll() is None:
                try:
                    worker.proc.terminate()
                except OSError:
                    pass
        for worker in workers:
            try:
                worker.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait(timeout=10)
            self._event(
                "stop", worker.worker_id, returncode=worker.proc.returncode
            )

    def stop(self, persistent_only: bool = False) -> None:
        """Terminate workers (all, or just the non-draining floor).

        Surge workers normally retire themselves; this is for wind-down
        of floor workers (which never exit on their own) and for
        abandoning the fleet after a failed coordinator. Stopped workers
        are not counted as crashes.
        """
        stopping = [
            w for w in self.workers if w.persistent or not persistent_only
        ]
        self.workers = [w for w in self.workers if w not in stopping]
        self._stop_workers(stopping)
        self.write_state()

    # -------------------------------------------------------------- state

    def _state_record(self) -> dict[str, Any]:
        """The durable snapshot (``queue/supervisor.json``)."""
        now = time.time()
        return {
            "schema": SUPERVISOR_SCHEMA,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": now,
            "min_workers": self.options.min_workers,
            "max_workers": self.options.max_workers,
            "live": len(self.workers),
            "peak_live": self.peak_live,
            "spawned": self.spawned,
            "retired": self.retired,
            "crashes": self.crashes,
            "workers": [
                {
                    "id": w.worker_id,
                    "pid": w.proc.pid,
                    "age_s": round(now - w.started_at, 3),
                    "persistent": w.persistent,
                }
                for w in self.workers
            ],
            "timeline": list(self.timeline),
        }

    def write_state(self) -> dict[str, Any]:
        record = self._state_record()
        atomic_write_json(self.state_path, record)
        return record


# ---------------------------------------------------------------------------
# Sweep progress (manifest ⋈ queue ⋈ cache) and ETA
# ---------------------------------------------------------------------------


def cell_job_id(cell: ManifestCell) -> str:
    """A manifest cell's broker job id (must match ``BrokerQueue.job_id``)."""
    return f"{cell.workload}__s{cell.scale_tok}__{cell.digest[:16]}"


def _queue_index(queue: BrokerQueue, now: float) -> dict[str, dict[str, Any]]:
    """job id → live queue position, parsed from the two active dirs."""
    index: dict[str, dict[str, Any]] = {}
    for state, directory in (
        ("pending", queue.pending),
        ("claimed", queue.claimed),
    ):
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            if not name.endswith(".json"):
                continue
            parsed = _parse_job_name(name)
            if parsed is None:
                continue
            job_id, cost, attempts = parsed
            entry: dict[str, Any] = {
                "state": state,
                "attempts": attempts,
                "cost": cost,
            }
            if state == "claimed":
                try:
                    entry["lease_age_s"] = round(
                        now - (directory / name).stat().st_mtime, 3
                    )
                except OSError:
                    continue  # released concurrently; not claimed anymore
            index[job_id] = entry
    return index


def sweep_progress(
    cache_dir: str | os.PathLike[str],
    manifest: SweepManifest,
    active_workers: int = 1,
    now: float | None = None,
) -> dict[str, Any]:
    """Per-cell states and an ETA for ``manifest`` against the live queue.

    Each cell lands in exactly one :data:`CELL_STATES` entry: a current
    done record or a cache hit is ``done``, a terminal failure record is
    ``failed``, a live queue file is ``pending``/``claimed`` (with lease
    age and attempts), anything else is ``unsubmitted``.

    The ETA calibrates seconds-per-cost-unit from cells that completed
    *this run* (done records carrying ``run_s``) and divides the
    remaining cells' cost estimates across ``active_workers``. Before
    any telemetry exists it is ``None`` — an honest "no data yet" —
    and it reaches ``0.0`` exactly when no runnable cells remain, so
    the final prediction error is bounded by the longest single job.
    """
    from .runner import estimate_job_cost

    now = time.time() if now is None else now
    queue = BrokerQueue(cache_dir)
    cache = ResultCache(cache_dir)
    index = _queue_index(queue, now)
    cells: list[dict[str, Any]] = []
    counts: dict[str, int] = dict.fromkeys(CELL_STATES, 0)
    known_costs: list[int] = []
    telemetry_run_s = 0.0
    telemetry_cost = 0
    remaining_cost = 0
    remaining_unknown = 0
    for cell in manifest.cells:
        job_id = cell_job_id(cell)
        cost: int | None
        try:
            cost = estimate_job_cost(cell.job())
        except ConfigError:
            cost = None  # digest drift: progress must render, not raise
        state = "unsubmitted"
        attempts = 0
        lease_age_s: float | None = None
        run_s: float | None = None
        worker: str | None = None
        record = queue.read_done(job_id)
        position = index.get(job_id)
        if record is not None:
            state = "done"
            attempts = int(record.get("attempts", 1))
            run_s = float(record.get("run_s", 0.0))
            worker = record.get("worker")
        elif position is not None:
            state = str(position["state"])
            attempts = int(position["attempts"])
            lease_age_s = position.get("lease_age_s")
            if cost is None:
                cost = position["cost"]
        elif queue.read_failed(job_id) is not None:
            failure = queue.read_failed(job_id) or {}
            state = "failed"
            attempts = int(failure.get("attempts", 0))
        elif cache.get(cell.workload, cell.scale_tok, cell.digest) is not None:
            state = "done"  # cached by an earlier run; no queue telemetry
        counts[state] += 1
        if cost is not None:
            known_costs.append(cost)
        if state == "done":
            if cost is not None and run_s is not None:
                telemetry_run_s += run_s
                telemetry_cost += cost
        elif state != "failed":
            if cost is not None:
                remaining_cost += cost
            else:
                remaining_unknown += 1
        cells.append(
            {
                "job_id": job_id,
                "workload": cell.workload,
                "state": state,
                "attempts": attempts,
                "lease_age_s": lease_age_s,
                "run_s": run_s,
                "worker": worker,
                "cost": cost,
            }
        )
    # Unknown-cost remaining cells are billed at the mean known cost —
    # better a rough term than silently dropping them from the ETA.
    if remaining_unknown and known_costs:
        remaining_cost += remaining_unknown * round(
            sum(known_costs) / len(known_costs)
        )
    runnable = counts["unsubmitted"] + counts["pending"] + counts["claimed"]
    secs_per_cost = (
        telemetry_run_s / telemetry_cost if telemetry_cost > 0 else None
    )
    eta_s: float | None
    if runnable == 0:
        eta_s = 0.0
    elif secs_per_cost is None:
        eta_s = None
    else:
        eta_s = round(
            remaining_cost * secs_per_cost / max(1, active_workers), 3
        )
    return {
        "manifest": str(manifest.path) if manifest.path else None,
        "sweep": manifest.sweep,
        "scale": manifest.scale,
        "workload_set": manifest.workload_set,
        "fidelity": manifest.fidelity,
        "cells": len(manifest.cells),
        "counts": counts,
        "remaining_cost": remaining_cost,
        "secs_per_cost": secs_per_cost,
        "active_workers": active_workers,
        "eta_s": eta_s,
        "cell_states": cells,
    }


def latest_manifest(cache_dir: str | os.PathLike[str]) -> SweepManifest | None:
    """The most recently written loadable manifest under ``cache_dir``."""
    from ..experiments.sweeps.manifest import load_manifest

    root = Path(cache_dir) / "manifests"

    def mtime(path: Path) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    for path in sorted(root.glob("*.json"), key=mtime, reverse=True):
        try:
            return load_manifest(path)
        except ConfigError:
            continue
    return None


# ---------------------------------------------------------------------------
# Status snapshot + dashboard rendering
# ---------------------------------------------------------------------------


def _worker_rows(queue: BrokerQueue, now: float) -> dict[str, dict[str, Any]]:
    """Per-worker throughput, aggregated from done-record telemetry."""
    rows: dict[str, dict[str, Any]] = {}
    try:
        names = os.listdir(queue.done)
    except OSError:
        return rows
    for name in names:
        if not name.endswith(".json"):
            continue
        record = _read_json(queue.done / name)
        if record is None:
            continue
        worker = record.get("worker")
        if not isinstance(worker, str):
            continue
        row = rows.setdefault(
            worker,
            {"jobs": 0, "run_s": 0.0, "queue_wait_s": 0.0, "retries": 0,
             "last_done_s_ago": None},
        )
        row["jobs"] += 1
        row["run_s"] = round(row["run_s"] + float(record.get("run_s", 0.0)), 3)
        row["queue_wait_s"] = round(
            row["queue_wait_s"] + float(record.get("queue_wait_s", 0.0)), 3
        )
        row["retries"] += max(0, int(record.get("attempts", 1)) - 1)
        done_ago = round(now - float(record.get("completed_at", now)), 3)
        if row["last_done_s_ago"] is None or done_ago < row["last_done_s_ago"]:
            row["last_done_s_ago"] = done_ago
    return dict(sorted(rows.items()))


def _claim_rows(queue: BrokerQueue, now: float) -> list[dict[str, Any]]:
    """Live leases with their ages, oldest first."""
    rows = [
        {"job_id": job_id, **entry}
        for job_id, entry in _queue_index(queue, now).items()
        if entry["state"] == "claimed"
    ]
    rows.sort(key=lambda r: -float(r.get("lease_age_s", 0.0)))
    for row in rows:
        row.pop("state", None)
    return rows


def _cache_stats(cache_dir: str | os.PathLike[str]) -> dict[str, Any]:
    current = {
        "tag": SCHEMA_TAG,
        "records": 0,
        "size_bytes": 0,
        "loose_records": 0,
        "shard_records": 0,
        "shard_files": 0,
        "stale_records": 0,
    }
    for info in scan_cache(cache_dir):
        if info.current:
            current["records"] = info.records
            current["size_bytes"] = info.size_bytes
            current["loose_records"] = info.loose_records
            current["shard_records"] = info.shard_records
            current["shard_files"] = info.shard_files
        else:
            current["stale_records"] += info.records
    return current


def _trace_stats(cache_dir: str | os.PathLike[str]) -> dict[str, Any]:
    from ..workloads.tracestore import scan_trace_store

    stats = {"records": 0, "size_bytes": 0, "stale_records": 0}
    for info in scan_trace_store(cache_dir):
        if info.current:
            stats["records"] = info.records
            stats["size_bytes"] = info.size_bytes
        else:
            stats["stale_records"] += info.records
    return stats


def build_status(
    cache_dir: str | os.PathLike[str],
    manifest_path: str | os.PathLike[str] | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """One JSON-ready snapshot of everything service mode can observe.

    The sweep section joins against ``manifest_path`` when given, else
    against the newest manifest under ``<cache-dir>/manifests/`` (the
    active sweep, in practice); ``None`` when there is no manifest. The
    supervisor section mirrors ``queue/supervisor.json`` if a supervisor
    has (ever) run against this cache dir.
    """
    now = time.time() if now is None else now
    queue = BrokerQueue(cache_dir)
    supervisor_state = _read_json(queue.root / "supervisor.json")
    if manifest_path is not None:
        from ..experiments.sweeps.manifest import load_manifest

        manifest = load_manifest(manifest_path)
    else:
        manifest = latest_manifest(cache_dir)
    sweep: dict[str, Any] | None = None
    if manifest is not None:
        active = 0
        if supervisor_state is not None:
            active = int(supervisor_state.get("live", 0))
        claims = sum(
            1
            for entry in _queue_index(queue, now).values()
            if entry["state"] == "claimed"
        )
        sweep = sweep_progress(
            cache_dir, manifest, active_workers=max(1, active, claims), now=now
        )
    return {
        "schema": STATUS_SCHEMA,
        "generated_at": now,
        "cache_dir": str(cache_dir),
        "engine_schema": SCHEMA_TAG,
        "queue": queue.counts(),
        "claims": _claim_rows(queue, now),
        "workers": _worker_rows(queue, now),
        "cache": _cache_stats(cache_dir),
        "traces": _trace_stats(cache_dir),
        "supervisor": supervisor_state,
        "sweep": sweep,
    }


def _fmt_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if n < 1024:
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def render_status(status: dict[str, Any]) -> str:
    """The human dashboard for one :func:`build_status` snapshot (pure)."""
    clock = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(status["generated_at"])
    )
    lines = [
        f"repro service status — {clock}",
        f"cache dir   {status['cache_dir']}",
    ]
    q = status["queue"]
    lines.append(
        f"queue       pending {q['pending']} · claimed {q['claimed']} · "
        f"done {q['done']} · failed {q['failed']}"
    )
    workers = status["workers"]
    if workers:
        for worker_id, row in workers.items():
            ago = row["last_done_s_ago"]
            ago_txt = f"{_fmt_duration(ago)} ago" if ago is not None else "-"
            lines.append(
                f"worker      {worker_id:<24s} {row['jobs']:4d} job(s)  "
                f"run {_fmt_duration(row['run_s'])}  "
                f"wait {_fmt_duration(row['queue_wait_s'])}  "
                f"retries {row['retries']}  last done {ago_txt}"
            )
    else:
        lines.append("worker      (no completed jobs yet)")
    for claim in status["claims"]:
        age = claim.get("lease_age_s")
        age_txt = _fmt_duration(age) if age is not None else "?"
        lines.append(
            f"claim       {claim['job_id']:<48s} attempt "
            f"{claim['attempts'] + 1}  lease age {age_txt}"
        )
    cache = status["cache"]
    layout = ""
    if cache["shard_files"]:
        layout = (
            f" ({cache['loose_records']} loose + {cache['shard_records']} in "
            f"{cache['shard_files']} shard(s))"
        )
    lines.append(
        f"cache       {cache['records']} records, "
        f"{_fmt_bytes(cache['size_bytes'])}{layout}"
        + (
            f", {cache['stale_records']} stale"
            if cache["stale_records"]
            else ""
        )
    )
    traces = status["traces"]
    lines.append(
        f"traces      {traces['records']} records, "
        f"{_fmt_bytes(traces['size_bytes'])}"
    )
    sup = status["supervisor"]
    if sup is not None:
        lines.append(
            f"supervisor  pid {sup['pid']}: live {sup['live']} "
            f"(peak {sup['peak_live']}), spawned {sup['spawned']}, "
            f"retired {sup['retired']}, crashes {sup['crashes']}"
        )
    sweep = status["sweep"]
    if sweep is not None:
        c = sweep["counts"]
        lines.append(
            f"sweep       {sweep['sweep']} @ {sweep['scale']}: "
            f"{c['done']}/{sweep['cells']} done · {c['claimed']} claimed · "
            f"{c['pending']} pending · {c['unsubmitted']} unsubmitted · "
            f"{c['failed']} failed"
        )
        eta = sweep["eta_s"]
        if eta is None:
            lines.append("eta         (no completed-cell telemetry yet)")
        else:
            lines.append(
                f"eta         {_fmt_duration(eta)} "
                f"(remaining cost {sweep['remaining_cost']:,} over "
                f"{sweep['active_workers']} worker(s))"
            )
    return "\n".join(lines)


def watch_status(
    cache_dir: str | os.PathLike[str],
    manifest_path: str | os.PathLike[str] | None = None,
    interval: float = 2.0,
    iterations: int | None = None,
) -> int:
    """Repaint the dashboard until interrupted (one atomic write/frame)."""
    frames = 0
    try:
        while True:
            status = build_status(cache_dir, manifest_path)
            frame = render_status(status)
            # Home + clear + frame in a single write: the terminal never
            # shows a half-painted screen.
            sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            sys.stdout.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


# ---------------------------------------------------------------------------
# serve: coordinator + autoscaled fleet, end to end
# ---------------------------------------------------------------------------


def serve_sweep(
    sweep: str,
    cache_dir: str | os.PathLike[str],
    scale: str | None = None,
    workload_set: str | None = None,
    options: SupervisorOptions | None = None,
    poll_seconds: float = 0.5,
    coordinator_args: Sequence[str] | None = None,
    env: dict[str, str] | None = None,
) -> int:
    """Run a sweep under supervision; returns the coordinator's exit code.

    The coordinator (``python -m repro.experiments.sweeps run <sweep>
    --backend broker``) runs as a subprocess with stealing disabled
    (unless ``REPRO_BROKER_STEAL`` is set explicitly), so the autoscaled
    fleet does the actual work. When it exits, scale-up stops, surge
    workers drain themselves to zero, floor workers are terminated, and
    the final supervisor state is persisted. Results are bit-identical
    to hand-started workers: supervision decides fleet size only.
    """
    from ..experiments.sweeps import get_sweep

    get_sweep(sweep)  # unknown names fail here, before anything spawns
    opts = options or supervisor_options()
    supervisor = Supervisor(cache_dir, opts, env=env)
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments.sweeps",
        "run",
        sweep,
        "--cache-dir",
        str(cache_dir),
        "--backend",
        "broker",
    ]
    if scale:
        cmd += ["--scale", scale]
    if workload_set:
        cmd += ["--workload-set", workload_set]
    if coordinator_args:
        cmd += list(coordinator_args)
    started = time.time()
    steal = "0" if read_env("REPRO_BROKER_STEAL") is None else None
    with exported("REPRO_BROKER_STEAL", steal):
        coordinator: subprocess.Popen[bytes] = subprocess.Popen(cmd, env=env)
    print(
        f"[serve {sweep}: coordinator pid {coordinator.pid}, fleet "
        f"{opts.min_workers}..{opts.max_workers} worker(s)]",
        flush=True,
    )
    try:
        while coordinator.poll() is None:
            supervisor.tick()
            time.sleep(poll_seconds)
    except BaseException:
        # Ctrl-C (or any supervision failure) must not orphan processes.
        coordinator.terminate()
        supervisor.stop()
        coordinator.wait(timeout=30)
        raise
    rc = int(coordinator.returncode)
    if rc != 0:
        supervisor.stop()
    else:
        # Floor workers never drain on their own; surge workers do.
        supervisor.stop(persistent_only=True)
        deadline = time.time() + opts.worker_idle_seconds + 30.0
        while supervisor.live and time.time() < deadline:
            supervisor.tick(scale_up=False)
            time.sleep(poll_seconds)
        if supervisor.live:
            supervisor.stop()  # stragglers past the wind-down budget
    supervisor.write_state()
    elapsed = time.time() - started
    print(
        f"[serve {sweep}: coordinator rc={rc}, peak {supervisor.peak_live} "
        f"worker(s), {supervisor.spawned} spawned, {supervisor.retired} "
        f"retired, {supervisor.crashes} crash(es), {elapsed:.1f}s]",
        flush=True,
    )
    return rc
