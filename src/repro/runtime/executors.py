"""Pluggable executor backends for the experiment runtime.

:class:`~repro.runtime.runner.ExperimentRuntime` resolves cache hits
itself; everything that is left — the actual simulation misses — is handed
to an :class:`ExecutorBackend` as one batch. A backend only decides
*where* a job body runs; job inputs and result values are identical across
backends, so serial, process-pool and broker runs are bit-identical (the
engine is deterministic and every job is self-contained).

Three backends ship:

``serial``
    Every job runs in the submitting process, one after another. No
    dependencies, no subprocesses — the reference executor.

``pool``
    Today's process pool, extracted from the runtime: jobs fan out over a
    ``ProcessPoolExecutor`` of ``jobs`` workers. Under ``fork`` the
    distinct workloads are pre-built once so children inherit them
    copy-on-write; a configured trace store is exported through the
    environment so ``spawn`` workers resolve the same store.

``broker``
    The file-based distributed queue (:mod:`repro.runtime.broker`): jobs
    are enqueued under ``<cache-dir>/queue/`` and *stolen* by any number
    of worker processes — started locally with
    ``python -m repro.runtime worker`` or on other machines sharing the
    filesystem. The submitting process steals work too by default, so a
    broker run completes even with zero external workers.

``auto`` (the default) picks ``pool`` when ``jobs > 1`` and ``serial``
otherwise — exactly the pre-backend behaviour.

Backend selection is by name via ``--backend`` /``REPRO_BACKEND``;
:func:`resolve_backend_name` is the single validation point and its error
lists every valid name.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..envopts import exported
from ..errors import ConfigError
from ..workloads.workload import load_workload, trace_store_env_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from ..core.results import SimulationResult
    from .runner import WorkUnit

    #: A batch unit yields one result per member config; a plain job, one.
    WorkResult = SimulationResult | list[SimulationResult]

#: Every name ``--backend`` / ``REPRO_BACKEND`` accepts.
BACKEND_NAMES: tuple[str, ...] = ("auto", "serial", "pool", "broker")


def resolve_backend_name(name: str | None) -> str:
    """Validate a backend name (``None`` → ``auto``).

    The only place backend names are checked: the runtime constructor, the
    CLI flags and the ``REPRO_BACKEND`` environment variable all funnel
    through here, so a stale value always produces the same helpful error.
    """
    chosen = name or "auto"
    if chosen not in BACKEND_NAMES:
        valid = ", ".join(BACKEND_NAMES)
        raise ConfigError(
            f"unknown executor backend {chosen!r}; valid backends: {valid} "
            f"(pass --backend or set REPRO_BACKEND)"
        )
    return chosen


@runtime_checkable
class ExecutorBackend(Protocol):
    """Executes one batch of simulation work units; see module docstring.

    A work unit is either a single :class:`~repro.runtime.runner.SimJob`
    (its result slot is one :class:`SimulationResult`) or a
    :class:`~repro.runtime.runner.BatchJob` (its slot is a list, one
    result per member config, in config order). The runtime plans the
    units and fans batched results back out — backends only move work.
    """

    #: Backend name as selected (``serial`` / ``pool`` / ``broker``).
    name: str

    def run_batch(self, jobs: list["WorkUnit"]) -> list["WorkResult"]:
        """Execute every work unit; results align with ``jobs`` order."""
        ...

    def telemetry(self) -> dict:
        """Post-batch execution metadata (merged into runtime metrics)."""
        ...


class SerialBackend:
    """Run every work unit in the current process, in submission order."""

    name = "serial"

    def run_batch(self, jobs: list["WorkUnit"]) -> list["WorkResult"]:
        from .runner import execute_work

        return [execute_work(job) for job in jobs]

    def telemetry(self) -> dict:
        return {}


class ProcessPoolBackend:
    """Fan a batch out over a ``ProcessPoolExecutor``.

    Falls back to serial execution for single-job batches, ``max_workers
    == 1``, or platforms where process pools are unavailable (restricted
    sandboxes raise ``OSError`` on pool start) — the result values are
    identical either way.
    """

    name = "pool"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigError("pool backend needs max_workers >= 1")
        self.max_workers = max_workers
        self._used_pool = False

    def run_batch(self, jobs: list["WorkUnit"]) -> list["WorkResult"]:
        from .runner import execute_work

        self._used_pool = False
        if self.max_workers > 1 and len(jobs) > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = multiprocessing.get_context()  # spawn-only platform
            if ctx.get_start_method() == "fork":
                # Build each distinct workload once in this process first:
                # forked children then inherit the built CFG and the flat
                # columnar trace copy-on-write instead of regenerating them
                # per worker. (Under spawn, workers start from a fresh
                # interpreter and instead warm up from the persistent trace
                # store when one is configured.)
                for wl, scale in {(j.workload, j.workload_scale) for j in jobs}:
                    load_workload(wl, scale=scale)
            # A store configured via configure_trace_store() — a directory
            # or an explicit disable — lives in a module global that
            # spawn-started workers (fresh interpreters) would never see;
            # export it for the lifetime of the pool ("" = disabled) so
            # every worker resolves the same store regardless of start
            # method, then restore the environment (a leaked value would
            # override later reconfiguration or env changes).
            workers = min(self.max_workers, len(jobs))
            with exported("REPRO_TRACE_STORE", trace_store_env_value()):
                try:
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=ctx
                    ) as pool:
                        results = list(pool.map(execute_work, jobs))
                    self._used_pool = True
                    return results
                except OSError:
                    pass  # no pool support (restricted sandbox) — run serially
        return [execute_work(job) for job in jobs]

    def telemetry(self) -> dict:
        return {"pool_workers": self.max_workers if self._used_pool else 1}


def make_backend(
    name: str,
    jobs: int,
    cache_dir: str | os.PathLike | None,
) -> ExecutorBackend:
    """Instantiate the backend ``name`` resolves to.

    ``auto`` picks ``pool`` when ``jobs > 1`` and ``serial`` otherwise.
    The broker needs a shared directory to host its queue, so selecting it
    without a cache dir is a configuration error.
    """
    chosen = resolve_backend_name(name)
    if chosen == "auto":
        chosen = "pool" if jobs > 1 else "serial"
    if chosen == "serial":
        return SerialBackend()
    if chosen == "pool":
        return ProcessPoolBackend(max_workers=jobs)
    if cache_dir is None:
        raise ConfigError(
            "the broker backend needs a shared cache directory for its job "
            "queue: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    from .broker import BrokerBackend

    return BrokerBackend.from_env(cache_dir)
