"""Result-cache lifecycle and distributed-worker CLI.

Usage::

    python -m repro.runtime list    [--cache-dir DIR]
    python -m repro.runtime prune   [--cache-dir DIR] [--schema-tag TAG] [--dry-run]
    python -m repro.runtime compact [--cache-dir DIR] [--dry-run]
    python -m repro.runtime worker  [--cache-dir DIR] [--worker-id ID]
                                    [--drain] [--max-idle SEC] [--max-jobs N]
    python -m repro.runtime queue   [--cache-dir DIR]
    python -m repro.runtime status  [--cache-dir DIR] [--manifest FILE]
                                    [--json] [--watch] [--interval SEC]
    python -m repro.runtime serve   SWEEP [--cache-dir DIR] [--scale S]
                                    [--workload-set W] [--min-workers N]
                                    [--max-workers N] [--cooldown SEC]
                                    [--backoff SEC] [--worker-idle SEC]

``list`` shows every schema-tag directory in the on-disk result cache with
its record count (loose files plus shard entries) and size, marking the
tag the running code would read (records under any other tag are
unreachable — the engine fingerprint changed since they were written).
Analytic-tier record tags (``analytic-v*`` — model-synthesized estimates,
see ``repro.analytic.store``) are listed alongside the exact engine's.
``prune`` deletes those stale tags; pass ``--schema-tag`` to delete one
specific tag instead (including the current one, to force cold runs) —
each tier only ever matches (and deletes) its own tag shape.

``compact`` folds the current tag's loose one-record files into one
append-only shard per workload (``shard.jsonl`` — see
``repro.runtime.shards``): a dense sweep's thousands of tiny files become
a handful, reads stay transparent, and the fold is crash-safe (atomic
shard rewrite; loose files deleted only after the rename lands).

``worker`` starts a work-stealing broker worker against the queue under
``<cache-dir>/queue/`` (see ``docs/runtime.md``): it claims pending jobs
via atomic rename, executes them, publishes results, and recovers expired
leases left by crashed peers. ``--drain`` exits once the queue has been
empty for ``--max-idle`` seconds (default 10). ``queue`` prints the
per-state job counts of that directory.

``status`` renders the service-mode dashboard (queue depths, per-worker
throughput, live lease ages, cache/trace-store stats, supervisor state,
and per-cell sweep progress with an ETA — see
:mod:`repro.runtime.supervisor`): one shot by default, machine-readable
with ``--json``, repainting atomically every ``--interval`` seconds with
``--watch``. The sweep section follows ``--manifest`` when given, else
the newest manifest under ``<cache-dir>/manifests/``.

``serve`` runs a named sweep end to end under supervision: the sweep
coordinator runs as a subprocess (stealing disabled) while the
supervisor autoscales ``worker`` subprocesses against the backlog —
crash restarts with bounded backoff included — and winds the fleet down
to zero afterwards. Results are bit-identical to hand-started workers.

The cache directory comes from ``--cache-dir`` or the ``REPRO_CACHE_DIR``
environment variable — the same resolution the experiment runner uses.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..envopts import env_str
from ..errors import ConfigError
from .broker import BrokerQueue, run_worker
from .cache import SCHEMA_TAG, prune_cache, scan_cache
from .shards import compact_cache


def _fmt_size(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _resolve_cache_dir(arg: str | None) -> str:
    cache_dir = arg or env_str("REPRO_CACHE_DIR", "")
    if not cache_dir:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    return cache_dir


def _cmd_list(args: argparse.Namespace) -> int:
    from ..analytic.store import scan_analytic

    cache_dir = _resolve_cache_dir(args.cache_dir)
    infos = scan_cache(cache_dir) + scan_analytic(cache_dir)
    print(f"result cache at {cache_dir} (current tag: {SCHEMA_TAG})")
    if not infos:
        print("  empty")
        return 0
    stale_records = 0
    for info in infos:
        marker = "current" if info.current else "stale"
        layout = ""
        if info.shard_files:
            layout = (
                f" ({info.loose_records} loose + {info.shard_records} in "
                f"{info.shard_files} shard(s))"
            )
        print(
            f"  {info.tag:<48s} {info.records:6d} records  "
            f"{_fmt_size(info.size_bytes):>10s}  [{marker}]{layout}"
        )
        if not info.current:
            stale_records += info.records
    if stale_records:
        print(
            f"  {stale_records} stale records reclaimable via "
            f"`python -m repro.runtime prune`"
        )
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    from ..analytic.store import prune_analytic

    cache_dir = _resolve_cache_dir(args.cache_dir)
    targets = prune_cache(
        cache_dir, schema_tag=args.schema_tag, dry_run=True
    ) + prune_analytic(cache_dir, schema_tag=args.schema_tag, dry_run=True)
    if not targets:
        target = args.schema_tag or "stale tags"
        print(f"nothing to prune ({target}) in {cache_dir}")
        return 0
    if args.dry_run:
        removed = targets
    else:
        removed = prune_cache(
            cache_dir, schema_tag=args.schema_tag
        ) + prune_analytic(cache_dir, schema_tag=args.schema_tag)
    verb = "would remove" if args.dry_run else "removed"
    for info in removed:
        print(
            f"{verb} {info.tag}: {info.records} records, "
            f"{_fmt_size(info.size_bytes)}"
        )
    failed = {t.tag for t in targets} - {r.tag for r in removed}
    for tag in sorted(failed):
        print(f"failed to remove {tag} (permissions?)", file=sys.stderr)
    return 1 if failed else 0


def _cmd_compact(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    stats = compact_cache(cache_dir, dry_run=args.dry_run)
    verb = "would fold" if args.dry_run else "folded"
    files_before = files_after = records = folded = 0
    for st in stats:
        files_before += st.files_before
        files_after += st.files_after
        records += st.entries_after + st.skipped
        folded += st.loose_folded
        if st.loose_folded:
            print(
                f"  {st.workload:<16s} {verb} {st.loose_folded} loose "
                f"record(s) -> shard ({st.entries_after} entries)"
            )
        if st.skipped:
            print(
                f"  {st.workload:<16s} left {st.skipped} unparseable "
                f"file(s) in place"
            )
        if st.skipped_locked:
            print(
                f"  {st.workload:<16s} skipped (another compactor holds "
                f"its lock)"
            )
    if not folded:
        print(f"nothing to compact under {cache_dir} (tag {SCHEMA_TAG})")
    ratio = files_before / files_after if files_after else 1.0
    print(
        f"[compact: files {files_before} -> {files_after} ({ratio:.1f}x), "
        f"{records} records{', dry run' if args.dry_run else ''}]"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    run_worker(
        cache_dir,
        worker_id=args.worker_id,
        drain=args.drain,
        max_idle=args.max_idle,
        max_jobs=args.max_jobs,
    )
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    queue = BrokerQueue(cache_dir)
    counts = queue.counts()
    print(f"broker queue at {queue.root}")
    for state in ("pending", "claimed", "done", "failed"):
        print(f"  {state:<8s} {counts[state]:6d} job(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .supervisor import build_status, render_status, watch_status

    cache_dir = _resolve_cache_dir(args.cache_dir)
    if args.watch:
        return watch_status(cache_dir, args.manifest, interval=args.interval)
    status = build_status(cache_dir, args.manifest)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(render_status(status))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .supervisor import serve_sweep, supervisor_options

    cache_dir = _resolve_cache_dir(args.cache_dir)
    try:
        options = supervisor_options(
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            cooldown_seconds=args.cooldown,
            backoff_seconds=args.backoff,
            worker_idle_seconds=args.worker_idle,
        )
        return serve_sweep(
            args.sweep,
            cache_dir,
            scale=args.scale,
            workload_set=args.workload_set,
            options=options,
        )
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description=(
            "inspect and prune the on-disk simulation result cache, or run "
            "a distributed broker worker"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show schema tags, record counts, sizes")
    p_list.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_list.set_defaults(func=_cmd_list)

    p_prune = sub.add_parser("prune", help="delete stale schema-tag records")
    p_prune.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_prune.add_argument(
        "--schema-tag",
        help="prune exactly this tag instead of every non-current tag",
    )
    p_prune.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    p_prune.set_defaults(func=_cmd_prune)

    p_compact = sub.add_parser(
        "compact", help="fold loose result records into per-workload shards"
    )
    p_compact.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_compact.add_argument(
        "--dry-run", action="store_true", help="report without rewriting"
    )
    p_compact.set_defaults(func=_cmd_compact)

    p_worker = sub.add_parser(
        "worker", help="steal and execute broker jobs from <cache-dir>/queue/"
    )
    p_worker.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_worker.add_argument(
        "--worker-id", help="telemetry id (default: <hostname>-<pid>)"
    )
    p_worker.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue stays empty for --max-idle seconds",
    )
    p_worker.add_argument(
        "--max-idle",
        type=float,
        help="exit after this many idle seconds (default with --drain: 10)",
    )
    p_worker.add_argument(
        "--max-jobs", type=int, help="exit after completing this many jobs"
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_queue = sub.add_parser("queue", help="show broker queue state counts")
    p_queue.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_queue.set_defaults(func=_cmd_queue)

    p_status = sub.add_parser(
        "status", help="service-mode dashboard: queue, workers, sweep ETA"
    )
    p_status.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_status.add_argument(
        "--manifest",
        help="sweep manifest to report progress against (default: newest)",
    )
    p_status.add_argument(
        "--json", action="store_true", help="print the snapshot as JSON"
    )
    p_status.add_argument(
        "--watch",
        action="store_true",
        help="repaint the dashboard until interrupted",
    )
    p_status.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch repaints (default 2)",
    )
    p_status.set_defaults(func=_cmd_status)

    p_serve = sub.add_parser(
        "serve", help="run a sweep under a supervised autoscaling worker fleet"
    )
    p_serve.add_argument("sweep", help="named sweep to run (see sweeps list)")
    p_serve.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_serve.add_argument("--scale", help="quick|default|full (or REPRO_SCALE)")
    p_serve.add_argument(
        "--workload-set", help="paper|extended|all (or REPRO_WORKLOAD_SET)"
    )
    p_serve.add_argument(
        "--min-workers",
        type=int,
        help="persistent fleet floor (or REPRO_SUPERVISOR_MIN; default 0)",
    )
    p_serve.add_argument(
        "--max-workers",
        type=int,
        help="fleet ceiling (or REPRO_SUPERVISOR_MAX; default 4)",
    )
    p_serve.add_argument(
        "--cooldown",
        type=float,
        help="seconds between scale-up rounds (or REPRO_SUPERVISOR_COOLDOWN)",
    )
    p_serve.add_argument(
        "--backoff",
        type=float,
        help="base crash-restart delay (or REPRO_SUPERVISOR_BACKOFF)",
    )
    p_serve.add_argument(
        "--worker-idle",
        type=float,
        help="surge-worker --max-idle seconds (or REPRO_SUPERVISOR_IDLE)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
