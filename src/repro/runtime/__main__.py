"""Result-cache lifecycle CLI.

Usage::

    python -m repro.runtime list  [--cache-dir DIR]
    python -m repro.runtime prune [--cache-dir DIR] [--schema-tag TAG] [--dry-run]

``list`` shows every schema-tag directory in the on-disk result cache with
its record count and size, marking the tag the running code would read
(records under any other tag are unreachable — the engine fingerprint
changed since they were written). ``prune`` deletes those stale tags; pass
``--schema-tag`` to delete one specific tag instead (including the current
one, to force cold runs).

The cache directory comes from ``--cache-dir`` or the ``REPRO_CACHE_DIR``
environment variable — the same resolution the experiment runner uses.
"""

from __future__ import annotations

import argparse
import os
import sys

from .cache import SCHEMA_TAG, prune_cache, scan_cache


def _fmt_size(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _resolve_cache_dir(arg: str | None) -> str:
    cache_dir = arg or os.environ.get("REPRO_CACHE_DIR") or ""
    if not cache_dir:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    return cache_dir


def _cmd_list(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    infos = scan_cache(cache_dir)
    print(f"result cache at {cache_dir} (current tag: {SCHEMA_TAG})")
    if not infos:
        print("  empty")
        return 0
    stale_records = 0
    for info in infos:
        marker = "current" if info.current else "stale"
        print(
            f"  {info.tag:<48s} {info.records:6d} records  "
            f"{_fmt_size(info.size_bytes):>10s}  [{marker}]"
        )
        if not info.current:
            stale_records += info.records
    if stale_records:
        print(
            f"  {stale_records} stale records reclaimable via "
            f"`python -m repro.runtime prune`"
        )
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args.cache_dir)
    targets = prune_cache(cache_dir, schema_tag=args.schema_tag, dry_run=True)
    if not targets:
        target = args.schema_tag or "stale tags"
        print(f"nothing to prune ({target}) in {cache_dir}")
        return 0
    if args.dry_run:
        removed = targets
    else:
        removed = prune_cache(cache_dir, schema_tag=args.schema_tag)
    verb = "would remove" if args.dry_run else "removed"
    for info in removed:
        print(
            f"{verb} {info.tag}: {info.records} records, "
            f"{_fmt_size(info.size_bytes)}"
        )
    failed = {t.tag for t in targets} - {r.tag for r in removed}
    for tag in sorted(failed):
        print(f"failed to remove {tag} (permissions?)", file=sys.stderr)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="inspect and prune the on-disk simulation result cache",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show schema tags, record counts, sizes")
    p_list.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_list.set_defaults(func=_cmd_list)

    p_prune = sub.add_parser("prune", help="delete stale schema-tag records")
    p_prune.add_argument("--cache-dir", help="cache directory (or REPRO_CACHE_DIR)")
    p_prune.add_argument(
        "--schema-tag",
        help="prune exactly this tag instead of every non-current tag",
    )
    p_prune.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    p_prune.set_defaults(func=_cmd_prune)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
