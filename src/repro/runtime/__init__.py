"""Experiment runtime: sound config hashing, disk cache, pluggable executors.

Public surface:

* :func:`config_digest` — exhaustive hash of a full ``SimConfig`` tree,
* :class:`ResultCache` — persistent JSON result store (``SCHEMA_TAG``-versioned,
  reading transparently from loose records and compacted shards),
* :func:`scan_cache` / :func:`prune_cache` / :func:`compact_cache` — cache
  lifecycle (also the ``python -m repro.runtime list|prune|compact`` CLI),
* :class:`SimJob` / :class:`ExperimentRuntime` — batched execution,
* :class:`ExecutorBackend` and the ``serial`` / ``pool`` / ``broker``
  backends (:data:`BACKEND_NAMES`, selected via ``REPRO_BACKEND``),
* :class:`BrokerQueue` / :class:`BrokerBackend` / :func:`run_worker` — the
  file-based distributed job broker (also ``python -m repro.runtime worker``),
* :class:`Supervisor` / :func:`serve_sweep` / :func:`build_status` — the
  supervised service mode: autoscaled worker fleets and the live status
  dashboard (``python -m repro.runtime status | serve``),
* :func:`get_runtime` / :func:`configure_runtime` / :func:`resolve_options`
  — process-wide instance and the single option-precedence point.
"""

from .broker import BrokerBackend, BrokerQueue, run_worker
from .cache import SCHEMA_TAG, CacheTagInfo, ResultCache, prune_cache, scan_cache
from .confighash import canonicalize, config_digest, scale_token
from .executors import (
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend_name,
)
from .runner import (
    DEFAULT_BATCH_WIDTH,
    BatchJob,
    ExperimentRuntime,
    RuntimeOptions,
    SimJob,
    backend_summary,
    configure_runtime,
    estimate_job_cost,
    execute_batch_job,
    execute_job,
    execute_work,
    get_runtime,
    plan_batch_units,
    resolve_options,
)
from .shards import WorkloadCompaction, compact_cache
from .supervisor import (
    Supervisor,
    SupervisorOptions,
    build_status,
    desired_workers,
    render_status,
    serve_sweep,
    supervisor_options,
    sweep_progress,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BATCH_WIDTH",
    "SCHEMA_TAG",
    "BatchJob",
    "BrokerBackend",
    "BrokerQueue",
    "CacheTagInfo",
    "ExecutorBackend",
    "ExperimentRuntime",
    "ProcessPoolBackend",
    "ResultCache",
    "RuntimeOptions",
    "SerialBackend",
    "SimJob",
    "Supervisor",
    "SupervisorOptions",
    "WorkloadCompaction",
    "backend_summary",
    "build_status",
    "canonicalize",
    "compact_cache",
    "config_digest",
    "configure_runtime",
    "desired_workers",
    "estimate_job_cost",
    "execute_batch_job",
    "execute_job",
    "execute_work",
    "get_runtime",
    "make_backend",
    "plan_batch_units",
    "prune_cache",
    "render_status",
    "resolve_backend_name",
    "resolve_options",
    "run_worker",
    "scale_token",
    "scan_cache",
    "serve_sweep",
    "supervisor_options",
    "sweep_progress",
]
