"""Experiment runtime: sound config hashing, disk cache, parallel runner.

Public surface:

* :func:`config_digest` — exhaustive hash of a full ``SimConfig`` tree,
* :class:`ResultCache` — persistent JSON result store (``SCHEMA_TAG``-versioned),
* :func:`scan_cache` / :func:`prune_cache` — cache lifecycle (also the
  ``python -m repro.runtime list|prune`` CLI),
* :class:`SimJob` / :class:`ExperimentRuntime` — batched (parallel) execution,
* :func:`get_runtime` / :func:`configure_runtime` — process-wide instance.
"""

from .cache import SCHEMA_TAG, CacheTagInfo, ResultCache, prune_cache, scan_cache
from .confighash import canonicalize, config_digest, scale_token
from .runner import (
    ExperimentRuntime,
    SimJob,
    configure_runtime,
    execute_job,
    get_runtime,
)

__all__ = [
    "SCHEMA_TAG",
    "CacheTagInfo",
    "ExperimentRuntime",
    "ResultCache",
    "SimJob",
    "canonicalize",
    "config_digest",
    "configure_runtime",
    "execute_job",
    "get_runtime",
    "prune_cache",
    "scale_token",
    "scan_cache",
]
