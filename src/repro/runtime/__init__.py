"""Experiment runtime: sound config hashing, disk cache, parallel runner.

Public surface:

* :func:`config_digest` — exhaustive hash of a full ``SimConfig`` tree,
* :class:`ResultCache` — persistent JSON result store (``SCHEMA_TAG``-versioned),
* :class:`SimJob` / :class:`ExperimentRuntime` — batched (parallel) execution,
* :func:`get_runtime` / :func:`configure_runtime` — process-wide instance.
"""

from .cache import SCHEMA_TAG, ResultCache
from .confighash import canonicalize, config_digest, scale_token
from .runner import (
    ExperimentRuntime,
    SimJob,
    configure_runtime,
    execute_job,
    get_runtime,
)

__all__ = [
    "SCHEMA_TAG",
    "ExperimentRuntime",
    "ResultCache",
    "SimJob",
    "canonicalize",
    "config_digest",
    "configure_runtime",
    "execute_job",
    "get_runtime",
    "scale_token",
]
