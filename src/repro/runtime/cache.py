"""Persistent on-disk cache of simulation results.

Layout (all JSON, one file per run)::

    <cache_dir>/
      <SCHEMA_TAG>/                 # e.g. "engine-v1" — bumped on any change
        <workload>/                 #     to engine semantics or counters
          s<scale>__<hash16>.json   # scale token + config-digest prefix

Each record stores the *full* config digest, so a (vanishingly unlikely)
filename-prefix collision is detected and treated as a miss rather than
returning a wrong result. Records are written atomically (temp file +
``os.replace``) so parallel writers and interrupted runs can never leave a
truncated record behind; a corrupt or unreadable record is a miss, never an
error.

:data:`SCHEMA_TAG` versions every record and is derived automatically: a
manual major tag plus a fingerprint of the simulator-side source tree
(everything under ``repro`` except the ``experiments``/``runtime`` and
``analysis`` layers — consumers of raw results, which cannot affect the
cached counters themselves). Any change to engine semantics,
counters, workload generation or config defaults therefore orphans old
records without anyone having to remember a version bump — the same
no-hand-maintained-list principle as the config digest. Stale-tag records
are simply never read (they live under the old tag's directory) and can be
deleted at leisure.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..core.results import SimulationResult

#: Bump on cache *record format* changes; semantic changes are fingerprinted.
_SCHEMA_MAJOR = "engine-v1"

#: Subpackages that cannot change simulation results (consumers of them).
_NON_SEMANTIC_DIRS = ("experiments", "runtime", "analysis")


def _source_fingerprint() -> str:
    """Hash every simulator-side source file under the ``repro`` package."""
    pkg_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        rel = path.relative_to(pkg_root)
        if rel.parts[0] in _NON_SEMANTIC_DIRS:
            continue
        digest.update(str(rel).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


#: Versions every record; recomputed from source so it can never go stale.
SCHEMA_TAG = f"{_SCHEMA_MAJOR}-{_source_fingerprint()}"

#: Digest prefix length used in filenames (full digest verified on read).
_NAME_DIGEST_CHARS = 16


class ResultCache:
    """Directory-backed store of :class:`SimulationResult` records."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.root = Path(cache_dir) / SCHEMA_TAG
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, workload: str, scale_tok: str, digest: str) -> Path:
        name = f"s{scale_tok}__{digest[:_NAME_DIGEST_CHARS]}.json"
        return self.root / workload / name

    def get(
        self, workload: str, scale_tok: str, digest: str
    ) -> SimulationResult | None:
        """Return the cached result, or ``None`` on miss/corruption."""
        path = self._path(workload, scale_tok, digest)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            record.get("schema") != SCHEMA_TAG
            or record.get("config_digest") != digest
            or record.get("workload") != workload
            or record.get("scale") != scale_tok
            or not isinstance(record.get("raw"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return SimulationResult(
            workload=record["workload"],
            mechanism=record.get("mechanism", ""),
            raw=record["raw"],
        )

    def put(
        self,
        workload: str,
        scale_tok: str,
        digest: str,
        result: SimulationResult,
    ) -> None:
        """Atomically persist one result record."""
        path = self._path(workload, scale_tok, digest)
        record = {
            "schema": SCHEMA_TAG,
            "workload": workload,
            "scale": scale_tok,
            "config_digest": digest,
            "mechanism": result.mechanism,
            "raw": result.raw,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return  # a read-only or full cache dir degrades to no caching
        self.stores += 1
