"""Persistent on-disk cache of simulation results.

Layout (all JSON)::

    <cache_dir>/
      <SCHEMA_TAG>/                 # e.g. "engine-v1" — bumped on any change
        <workload>/                 #     to engine semantics or counters
          s<scale>__<hash16>.json   # loose record: scale token + digest prefix
          shard.jsonl               # compacted records (repro.runtime.shards)

Writes always produce loose one-record files; ``python -m repro.runtime
compact`` folds them into the per-workload shard, and reads resolve
transparently from either layout (loose first — it is newer).

Each record stores the *full* config digest, so a (vanishingly unlikely)
filename-prefix collision is detected and treated as a miss rather than
returning a wrong result. Records are written atomically (temp file +
``os.replace``) so parallel writers and interrupted runs can never leave a
truncated record behind; a corrupt or unreadable record is a miss, never an
error.

:data:`SCHEMA_TAG` versions every record and is derived automatically: a
manual major tag plus a fingerprint of the simulator-side source tree
(everything under ``repro`` except the ``experiments``/``runtime`` and
``analysis`` layers — consumers of raw results, which cannot affect the
cached counters themselves). Any change to engine semantics,
counters, workload generation or config defaults therefore orphans old
records without anyone having to remember a version bump — the same
no-hand-maintained-list principle as the config digest. Stale-tag records
are simply never read (they live under the old tag's directory) and can be
deleted at leisure.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..core.results import SimulationResult
from .atomicio import atomic_write_json

#: Bump on cache *record format* changes; semantic changes are fingerprinted.
_SCHEMA_MAJOR = "engine-v1"

#: Subpackages that cannot change simulation results (consumers of them).
#: ``analytic`` estimates results but never produces exact ones; its
#: records carry their own tag (fingerprinting this one) in
#: :mod:`repro.analytic.store`, so a model change orphans estimates
#: without orphaning the exact records they were calibrated from.
#: ``warehouse`` only *reads* the stores into its SQLite snapshot — an
#: edit there must never orphan the records it consolidates.
_NON_SEMANTIC_DIRS = ("experiments", "runtime", "analysis", "analytic", "warehouse")


def _source_fingerprint() -> str:
    """Hash every simulator-side source file under the ``repro`` package."""
    pkg_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        rel = path.relative_to(pkg_root)
        if rel.parts[0] in _NON_SEMANTIC_DIRS:
            continue
        digest.update(str(rel).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


#: Versions every record; recomputed from source so it can never go stale.
SCHEMA_TAG = f"{_SCHEMA_MAJOR}-{_source_fingerprint()}"

#: Digest prefix length used in filenames (full digest verified on read).
_NAME_DIGEST_CHARS = 16


class ResultCache:
    """Directory-backed store of :class:`SimulationResult` records.

    Reads are transparent across both on-disk layouts: the loose
    one-file-per-record form that :meth:`put` writes, and the per-workload
    shard files that ``python -m repro.runtime compact``
    (:mod:`repro.runtime.shards`) folds them into. Loose records win on a
    key present in both (they are newer), though both copies are
    content-addressed and therefore identical in practice.
    """

    def __init__(self, cache_dir: str | os.PathLike):
        self.root = Path(cache_dir) / SCHEMA_TAG
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Per-workload shard index, keyed by the shard file's (mtime_ns,
        #: size) signature so a concurrent compaction is picked up.
        self._shard_index: dict[str, tuple[tuple[int, int], dict]] = {}

    def _path(self, workload: str, scale_tok: str, digest: str) -> Path:
        name = f"s{scale_tok}__{digest[:_NAME_DIGEST_CHARS]}.json"
        return self.root / workload / name

    def _shard_lookup(self, workload: str, scale_tok: str, digest: str) -> dict | None:
        """The shard record for this key, if the workload has a shard."""
        from .shards import read_shard, shard_path

        path = shard_path(self.root / workload)
        try:
            st = path.stat()
        except OSError:
            self._shard_index.pop(workload, None)
            return None
        signature = (st.st_mtime_ns, st.st_size)
        cached = self._shard_index.get(workload)
        if cached is None or cached[0] != signature:
            cached = (signature, read_shard(path))
            self._shard_index[workload] = cached
        return cached[1].get((scale_tok, digest))

    def get(
        self, workload: str, scale_tok: str, digest: str
    ) -> SimulationResult | None:
        """Return the cached result, or ``None`` on miss/corruption."""
        path = self._path(workload, scale_tok, digest)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            record = self._shard_lookup(workload, scale_tok, digest)
        if not isinstance(record, dict):
            # Valid JSON that is not an object (e.g. a bare list) is just
            # as corrupt as unparseable bytes: a miss, never an error.
            record = None
        if record is None:
            self.misses += 1
            return None
        if (
            record.get("schema") != SCHEMA_TAG
            or record.get("config_digest") != digest
            or record.get("workload") != workload
            or record.get("scale") != scale_tok
            or not isinstance(record.get("raw"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return SimulationResult(
            workload=record["workload"],
            mechanism=record.get("mechanism", ""),
            raw=record["raw"],
        )

    def put(
        self,
        workload: str,
        scale_tok: str,
        digest: str,
        result: SimulationResult,
    ) -> None:
        """Atomically persist one result record."""
        path = self._path(workload, scale_tok, digest)
        record = {
            "schema": SCHEMA_TAG,
            "workload": workload,
            "scale": scale_tok,
            "config_digest": digest,
            "mechanism": result.mechanism,
            "raw": result.raw,
        }
        try:
            atomic_write_json(path, record)
        except OSError:
            return  # a read-only or full cache dir degrades to no caching
        self.stores += 1


# ---------------------------------------------------------------------------
# Cache lifecycle (the ``python -m repro.runtime`` list/prune CLI)
# ---------------------------------------------------------------------------


#: Shape of a directory name this cache could have written (any major tag
#: followed by the 12-hex-digit source fingerprint). ``scan_cache`` and
#: ``prune_cache`` only ever look at — and delete — matching directories,
#: so pointing the CLI at a directory that merely *contains* a cache (or
#: at something else entirely) can never touch foreign data.
_TAG_DIR_RE = re.compile(r"^engine-v\d+-[0-9a-f]{12}$")

#: Shape of a loose record filename (what :meth:`ResultCache.put` writes);
#: used by ``scan_cache`` to spot shard entries shadowed by a loose copy.
_LOOSE_NAME_RE = re.compile(
    rf"^s(?P<scale>.+)__(?P<digest>[0-9a-f]{{{_NAME_DIGEST_CHARS}}})\.json$"
)


@dataclass(frozen=True)
class CacheTagInfo:
    """Aggregate of one schema-tag directory inside a cache dir."""

    tag: str
    #: Unique readable records: loose files plus unshadowed shard entries.
    #: A key overwritten after compaction briefly exists in both layouts
    #: (the loose copy wins on read), and is counted once — so the count
    #: is invariant across ``compact``, whatever the layout.
    records: int
    size_bytes: int
    #: True when the tag matches the running code's :data:`SCHEMA_TAG`.
    current: bool
    #: Breakdown by on-disk layout (shadowed shard entries not included).
    loose_records: int = 0
    shard_records: int = 0
    #: Per-workload shard files under this tag.
    shard_files: int = 0


def scan_cache(cache_dir: str | os.PathLike) -> list[CacheTagInfo]:
    """Per-schema-tag record counts and sizes under ``cache_dir``.

    Only directories whose name matches the schema-tag shape are
    considered; anything else living next to the cache is ignored. Tags
    sort current-first then by name, so a stale-tag listing reads off
    the top of the output. A missing directory is an empty cache.
    """
    from .shards import SHARD_NAME, read_shard

    root = Path(cache_dir)
    infos: list[CacheTagInfo] = []
    if not root.is_dir():
        return infos
    for tag_dir in sorted(
        p for p in root.iterdir() if p.is_dir() and _TAG_DIR_RE.match(p.name)
    ):
        loose = 0
        shard_files = 0
        shard_records = 0
        size = 0
        # Loose keys per workload dir, so shard entries a newer loose
        # record shadows (same scale + digest prefix) are not re-counted.
        loose_keys: dict[Path, set[tuple[str, str]]] = {}
        shards: list[Path] = []
        for path in tag_dir.rglob("*"):
            if not path.is_file():
                continue
            if path.name == SHARD_NAME:
                shards.append(path)
            elif path.suffix == ".json":
                loose += 1
                match = _LOOSE_NAME_RE.match(path.name)
                if match:
                    loose_keys.setdefault(path.parent, set()).add(
                        (match.group("scale"), match.group("digest"))
                    )
            else:
                continue  # temp files and foreign clutter are not records
            try:
                size += path.stat().st_size
            except OSError:
                pass
        for path in shards:
            shard_files += 1
            shadow = loose_keys.get(path.parent, set())
            shard_records += sum(
                1
                for scale, digest in read_shard(path)
                if (scale, digest[:_NAME_DIGEST_CHARS]) not in shadow
            )
        infos.append(
            CacheTagInfo(
                tag=tag_dir.name,
                records=loose + shard_records,
                size_bytes=size,
                current=tag_dir.name == SCHEMA_TAG,
                loose_records=loose,
                shard_records=shard_records,
                shard_files=shard_files,
            )
        )
    infos.sort(key=lambda i: (not i.current, i.tag))
    return infos


def prune_cache(
    cache_dir: str | os.PathLike,
    schema_tag: str | None = None,
    dry_run: bool = False,
) -> list[CacheTagInfo]:
    """Delete stale schema-tag directories; returns what was (or would be) removed.

    Without ``schema_tag`` every tag except the running code's current
    :data:`SCHEMA_TAG` is removed — the normal "collect garbage after a
    few engine changes" call. With ``schema_tag`` only that tag is removed
    (including the current one, for a forced cold run). ``dry_run`` only
    reports. A tag whose directory survives the deletion attempt (e.g. a
    read-only mount) is *not* reported as removed, so callers never claim
    to have reclaimed space they did not.
    """
    root = Path(cache_dir)
    removed: list[CacheTagInfo] = []
    for info in scan_cache(root):
        if schema_tag is None:
            if info.current:
                continue
        elif info.tag != schema_tag:
            continue
        if dry_run:
            removed.append(info)
            continue
        tag_dir = root / info.tag
        shutil.rmtree(tag_dir, ignore_errors=True)
        if not tag_dir.exists():
            removed.append(info)
    return removed
