"""Deterministic crash injection for the fault-tolerance test harness.

The broker and the shard compactor survive workers being SIGKILLed at
arbitrary moments — but "arbitrary" is untestable. This module gives the
test harness (``tests/faultinject.py``) *named* crash points: set

    REPRO_FAULTPOINTS="worker-claimed:1,shard-entry:10"

in a subprocess's environment and the Nth time that process passes the
named point it SIGKILLs itself — no cleanup handlers, no ``atexit``, no
flushing, exactly the state a power cut or an OOM kill leaves behind.

Production runs never set the variable, so the cost of a fault point is
one environment lookup. Points currently wired in:

``worker-claimed``
    ``run_worker`` just claimed a job (the lease is held, nothing ran).
``shard-entry``
    the shard rewriter has written N entries to its temp file (the
    rename has not happened; the live shard must stay untouched).
``warehouse-refresh``
    the warehouse consolidator is about to apply its Nth change inside
    the refresh transaction (nothing may be durable until COMMIT; the
    previous snapshot must stay readable and the next refresh must
    converge with an exactly-once revision history).
"""

from __future__ import annotations

import os
import signal

from ..envopts import read_env

#: Per-process pass counts for each named point.
_hits: dict[str, int] = {}


def _parse(spec: str) -> dict[str, int]:
    targets: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        targets[name] = int(count) if count.isdigit() else 1
    return targets


def maybe_fault(point: str) -> None:
    """SIGKILL this process if ``point`` has now been hit its target count.

    A no-op (one env lookup) unless ``REPRO_FAULTPOINTS`` names ``point``.
    SIGKILL — not ``sys.exit`` — because the entire contract under test is
    that *nothing* gets a chance to clean up.
    """
    spec = read_env("REPRO_FAULTPOINTS")
    if not spec:
        return
    targets = _parse(spec)
    if point not in targets:
        return
    _hits[point] = _hits.get(point, 0) + 1
    if _hits[point] >= targets[point]:
        os.kill(os.getpid(), signal.SIGKILL)
