"""Parallel experiment runtime: sound memoization + process-pool execution.

The runtime owns every simulation run the experiment layer performs. It
layers three caches/executors, checked in order:

1. an **in-process memo** (same object returned for repeated lookups, so
   intra-process identity semantics are preserved),
2. an optional **persistent disk cache** (:mod:`repro.runtime.cache`),
3. actual simulation — serially for ``jobs=1``, otherwise batched across a
   ``ProcessPoolExecutor``.

Keys are ``(workload, scale, config-digest)`` where the digest covers the
*entire* config tree (:mod:`repro.runtime.confighash`); no hand-maintained
field list exists to drift out of sync with :class:`~repro.config.SimConfig`.

Batch submission (:meth:`ExperimentRuntime.run_many`) is what the sweep
experiments use: they assemble their full (workload, config) job list up
front, the runtime dedupes it, resolves memo/disk hits, executes only the
misses — in parallel — and returns results in submission order. Results
are therefore deterministic and bit-identical regardless of ``jobs``:
the engine itself is deterministic, and parallelism only changes *where*
a run executes, never its inputs.

The process-wide default runtime is configured from ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` or via :func:`configure_runtime` (the
``python -m repro.experiments --jobs/--cache-dir`` flags).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..config import SimConfig
from ..core.results import SimulationResult
from ..core.simulator import Simulator
from ..workloads.workload import (
    configure_trace_store,
    load_workload,
    trace_store_env_value,
)
from .cache import ResultCache
from .confighash import config_digest, scale_token

#: Keys are (workload name, scale token, config digest).
RunKey = tuple[str, str, str]


@dataclass(frozen=True)
class SimJob:
    """One simulation to perform: a workload name, config and scale."""

    workload: str
    config: SimConfig
    workload_scale: float = 1.0

    @property
    def key(self) -> RunKey:
        return (
            self.workload,
            scale_token(self.workload_scale),
            config_digest(self.config),
        )


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job in the current process (also the pool worker entry)."""
    workload = load_workload(job.workload, scale=job.workload_scale)
    return Simulator(workload, job.config).run()


class ExperimentRuntime:
    """Executes and caches simulation jobs; see module docstring."""

    def __init__(self, jobs: int = 1, cache_dir: str | os.PathLike | None = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.disk: ResultCache | None = (
            ResultCache(cache_dir) if cache_dir else None
        )
        self._memo: dict[RunKey, SimulationResult] = {}
        self.executed = 0

    # ------------------------------------------------------------- lookups

    def _lookup(self, key: RunKey) -> SimulationResult | None:
        """Memo, then disk (promoting a disk hit into the memo)."""
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.disk is not None:
            stored = self.disk.get(*key)
            if stored is not None:
                self._memo[key] = stored
                return stored
        return None

    def _store(self, key: RunKey, result: SimulationResult) -> None:
        self._memo[key] = result
        if self.disk is not None:
            self.disk.put(*key, result)

    # ----------------------------------------------------------- execution

    def run_one(
        self,
        workload: str,
        config: SimConfig,
        workload_scale: float = 1.0,
    ) -> SimulationResult:
        """Run (or fetch) a single simulation, always in-process."""
        job = SimJob(workload, config, workload_scale)
        key = job.key
        hit = self._lookup(key)
        if hit is not None:
            return hit
        result = execute_job(job)
        self.executed += 1
        self._store(key, result)
        return result

    def run_many(self, jobs: list[SimJob] | tuple[SimJob, ...]) -> list[SimulationResult]:
        """Run a batch of jobs; results align with ``jobs`` order.

        Duplicate jobs are deduplicated, cached jobs are resolved without
        executing, and the remaining misses run on a process pool when
        ``self.jobs > 1`` (serial otherwise, or if pools are unavailable).
        """
        keys = [job.key for job in jobs]
        pending: list[tuple[RunKey, SimJob]] = []
        seen: set[RunKey] = set()
        for key, job in zip(keys, jobs):
            if key in seen or self._lookup(key) is not None:
                continue
            seen.add(key)
            pending.append((key, job))
        if pending:
            for (key, job), result in zip(pending, self._execute_batch(pending)):
                self.executed += 1
                self._store(key, result)
        return [self._memo[key] for key in keys]

    def _execute_batch(
        self, pending: list[tuple[RunKey, SimJob]]
    ) -> list[SimulationResult]:
        jobs = [job for _, job in pending]
        if self.jobs > 1 and len(jobs) > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = multiprocessing.get_context()  # spawn-only platform
            if ctx.get_start_method() == "fork":
                # Build each distinct workload once in this process first:
                # forked children then inherit the built CFG and the flat
                # columnar trace copy-on-write instead of regenerating them
                # per worker. (Under spawn, workers start from a fresh
                # interpreter and instead warm up from the persistent trace
                # store when one is configured.)
                for wl, scale in {(j.workload, j.workload_scale) for j in jobs}:
                    load_workload(wl, scale=scale)
            # A store configured via configure_trace_store() — a directory
            # or an explicit disable — lives in a module global that
            # spawn-started workers (fresh interpreters) would never see;
            # export it for the lifetime of the pool ("" = disabled) so
            # every worker resolves the same store regardless of start
            # method, then restore the environment (a leaked value would
            # override later reconfiguration or env changes).
            env_value = trace_store_env_value()
            env_before = os.environ.get("REPRO_TRACE_STORE")
            if env_value is not None:
                os.environ["REPRO_TRACE_STORE"] = env_value
            workers = min(self.jobs, len(jobs))
            try:
                with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                    return list(pool.map(execute_job, jobs))
            except OSError:
                pass  # no pool support (restricted sandbox) — run serially
            finally:
                if env_value is not None:
                    if env_before is None:
                        os.environ.pop("REPRO_TRACE_STORE", None)
                    else:
                        os.environ["REPRO_TRACE_STORE"] = env_before
        return [execute_job(job) for job in jobs]

    # ------------------------------------------------------------- control

    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk cache is left intact)."""
        self._memo.clear()


# ---------------------------------------------------------------------------
# Process-wide default runtime
# ---------------------------------------------------------------------------

_RUNTIME: ExperimentRuntime | None = None


def _from_env() -> ExperimentRuntime:
    raw = os.environ.get("REPRO_JOBS", "1") or "1"
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer >= 1, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be an integer >= 1, got {raw!r}")
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return ExperimentRuntime(jobs=jobs, cache_dir=cache_dir)


def get_runtime() -> ExperimentRuntime:
    """The process-wide runtime (created from env vars on first use)."""
    global _RUNTIME
    if _RUNTIME is None:
        _RUNTIME = _from_env()
    return _RUNTIME


def configure_runtime(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> ExperimentRuntime:
    """Replace the process-wide runtime; unset options fall back to env.

    The previous runtime's in-process memo is carried over (its entries
    stay valid — keys are content-addressed), so reconfiguring mid-process
    never discards work. An explicit ``cache_dir`` also points the
    workload trace store at the same directory (the two subsystems use
    disjoint schema-tag subdirectories), so ``--cache-dir`` gives pool
    workers warm workload builds as well as warm results.
    """
    global _RUNTIME
    runtime = _from_env()
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        runtime.jobs = jobs
    if cache_dir is not None:
        runtime.disk = ResultCache(cache_dir)
        configure_trace_store(cache_dir)
    if _RUNTIME is not None:
        runtime._memo.update(_RUNTIME._memo)
    _RUNTIME = runtime
    return runtime
