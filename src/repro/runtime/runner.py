"""Parallel experiment runtime: sound memoization + pluggable executors.

The runtime owns every simulation run the experiment layer performs. It
layers caches and an executor, checked in order:

1. an **in-process memo** (same object returned for repeated lookups, so
   intra-process identity semantics are preserved),
2. an optional **persistent disk cache** (:mod:`repro.runtime.cache`),
3. actual simulation through an **executor backend**
   (:mod:`repro.runtime.executors`): in-process (``serial``), across a
   process pool (``pool``), or work-stealing across independent worker
   processes and machines via the file-based job broker (``broker``,
   :mod:`repro.runtime.broker`).

Keys are ``(workload, scale, config-digest)`` where the digest covers the
*entire* config tree (:mod:`repro.runtime.confighash`); no hand-maintained
field list exists to drift out of sync with :class:`~repro.config.SimConfig`.
The key is process- and machine-agnostic, which is exactly what lets a
remote backend slot in behind :meth:`ExperimentRuntime._execute_batch`.

Batch submission (:meth:`ExperimentRuntime.run_many`) is what the sweep
experiments use: they assemble their full (workload, config) job list up
front, the runtime dedupes it, resolves memo/disk hits, executes only the
misses — on the selected backend — and returns results in submission
order. Results are therefore deterministic and bit-identical regardless of
``jobs`` or backend: the engine itself is deterministic, and the executor
only changes *where* a run executes, never its inputs.

**Option precedence** is asserted in exactly one place,
:func:`resolve_options`: an explicit keyword argument (or CLI flag, which
forwards as one) always beats the corresponding ``REPRO_*`` environment
variable, and the environment variable beats the built-in default
(``jobs=1``, no cache dir, ``backend="auto"``). The process-wide default
runtime is configured from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` /
``REPRO_BACKEND`` or via :func:`configure_runtime` (the
``python -m repro.experiments --jobs/--cache-dir/--backend`` flags).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config import SimConfig
from ..core import profiling
from ..core.results import SimulationResult
from ..core.simulator import Simulator
from ..envopts import env_flag, env_str, read_env
from ..errors import ConfigError
from ..workloads.workload import configure_trace_store, load_workload
from .cache import ResultCache
from .confighash import config_digest, scale_token
from .executors import make_backend, resolve_backend_name

if TYPE_CHECKING:  # pragma: no cover - cycle guard (analytic imports us)
    from ..analytic.store import AnalyticStore

#: Keys are (workload name, scale token, config digest).
RunKey = tuple[str, str, str]

#: Default lane count per batch job (``REPRO_BATCH_WIDTH``). Wide enough
#: that a dense grid's per-workload group usually fits in a few units,
#: small enough that one unit stays a reasonable work-stealing quantum
#: for the broker and a reasonable pool task.
DEFAULT_BATCH_WIDTH = 16

#: Default fidelity tier (``REPRO_FIDELITY``): every cell exact.
DEFAULT_FIDELITY = "exact"

#: Default hybrid escalation threshold (``REPRO_ANALYTIC_MAX_ERR``): a
#: series whose self-reported relative error bound exceeds this is
#: re-dispatched to the exact engine under ``--fidelity hybrid``.
DEFAULT_MAX_REL_ERR = 0.10


@dataclass(frozen=True)
class SimJob:
    """One simulation to perform: a workload name, config and scale."""

    workload: str
    config: SimConfig
    workload_scale: float = 1.0

    @property
    def key(self) -> RunKey:
        return (
            self.workload,
            scale_token(self.workload_scale),
            config_digest(self.config),
        )


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job in the current process (also the worker entry point)."""
    workload = load_workload(job.workload, scale=job.workload_scale)
    profiler = profiling.active()
    if profiler is not None:
        return profiling.run_profiled_single(workload, job.config, profiler)
    return Simulator(workload, job.config).run()


@dataclass(frozen=True)
class BatchJob:
    """N same-workload simulations to run in one batched trace pass.

    A batch job is a *work unit*, not a cache entity: its results are the
    member :class:`SimJob` results, stored under the members' unchanged
    per-cell keys. The batch's own key exists only so queue-level
    machinery (broker job ids, done records) can address the unit; its
    digest is a SHA-256 over the member config digests, the same 64-hex
    shape as a config digest so the ``digest[:16]`` job-id grammar holds.
    """

    workload: str
    configs: tuple[SimConfig, ...]
    workload_scale: float = 1.0

    @property
    def members(self) -> tuple[SimJob, ...]:
        """The per-cell jobs this unit computes, in lane order."""
        return tuple(
            SimJob(self.workload, config, self.workload_scale)
            for config in self.configs
        )

    @property
    def key(self) -> RunKey:
        digest = hashlib.sha256(
            "\n".join(config_digest(config) for config in self.configs).encode()
        ).hexdigest()
        return (self.workload, scale_token(self.workload_scale), digest)


#: Anything an executor backend can be handed: one simulation, or a
#: batched unit expanding to one result per member config.
WorkUnit = SimJob | BatchJob


def execute_batch_job(job: BatchJob) -> list[SimulationResult]:
    """Run one batched unit; one result per config, in config order.

    Results are bit-identical to running each member through
    :func:`execute_job` — the :class:`~repro.core.batch.BatchedEngine`
    is golden-equivalent to the per-cell engine by construction (and
    pinned by ``tests/test_batch.py``).
    """
    from ..core.batch import BatchedEngine

    workload = load_workload(job.workload, scale=job.workload_scale)
    engine = BatchedEngine(workload, job.configs, profiler=profiling.active())
    return [
        SimulationResult(
            workload=workload.name, mechanism=config.mechanism, raw=raw
        )
        for config, raw in zip(job.configs, engine.run())
    ]


def execute_work(unit: WorkUnit) -> SimulationResult | list[SimulationResult]:
    """Execute any work unit (the backend-side dispatch point)."""
    if isinstance(unit, BatchJob):
        return execute_batch_job(unit)
    return execute_job(unit)


def plan_batch_units(
    jobs: list[SimJob], width: int
) -> tuple[list[WorkUnit], list[list[int]]]:
    """Group same-workload jobs into batched units of at most ``width``.

    Jobs group by ``(workload, scale)`` in first-appearance order; each
    group is chunked into :class:`BatchJob` units of ``width`` lanes,
    with singleton leftovers (and one-job groups) staying plain
    :class:`SimJob` units — a one-lane batch is just the per-cell engine
    with extra steps. Returns the units plus, aligned with them, the
    original ``jobs`` indices each unit's flattened results map back to.
    """
    if width < 2:
        raise ValueError("batch width must be >= 2")
    groups: dict[tuple[str, float], list[int]] = {}
    for position, job in enumerate(jobs):
        groups.setdefault((job.workload, job.workload_scale), []).append(position)
    units: list[WorkUnit] = []
    positions: list[list[int]] = []
    for (workload, scale), indices in groups.items():
        for start in range(0, len(indices), width):
            chunk = indices[start : start + width]
            if len(chunk) == 1:
                units.append(jobs[chunk[0]])
            else:
                units.append(
                    BatchJob(
                        workload,
                        tuple(jobs[i].config for i in chunk),
                        scale,
                    )
                )
            positions.append(chunk)
    return units, positions


def estimate_job_cost(job: WorkUnit) -> int | None:
    """Relative cost estimate: scaled trace length × LLC cycle budget.

    Simulation wall time is dominated by how many trace instructions run
    and how many stall cycles each one drags in, and the LLC round trip is
    the dominant stall term — so the product ranks jobs well enough for
    the broker's longest-first scheduler without executing anything. The
    estimate is deterministic (profile table + config only, no I/O) and
    dimensionless; only its *ordering* matters. ``None`` — the scheduler's
    FIFO fallback — is returned for a workload the profile table does not
    know, rather than guessing a rank for a job that will fail anyway.

    A :class:`BatchJob` walks the trace with every lane's config live per
    cycle-step, so its cost is the sum of its members' — trace length ×
    the per-cycle config count's LLC budget — which is what keeps
    longest-first scheduling meaningful when wide batch units and
    singletons share a queue.
    """
    from ..workloads.profiles import get_profile

    if isinstance(job, BatchJob):
        member_costs = [estimate_job_cost(member) for member in job.members]
        if any(cost is None for cost in member_costs):
            return None
        return sum(member_costs)  # type: ignore[arg-type]
    try:
        profile = get_profile(job.workload)
    except ConfigError:
        return None
    if job.workload_scale != 1.0:
        profile = profile.scaled(job.workload_scale)
    return profile.default_trace_instrs * max(1, job.config.memory.llc_round_trip)


# ---------------------------------------------------------------------------
# Option resolution (the single precedence point)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeOptions:
    """Fully-resolved runtime options (kwargs > ``REPRO_*`` > defaults)."""

    jobs: int
    cache_dir: str | None
    backend: str
    batch: bool = False
    batch_width: int = DEFAULT_BATCH_WIDTH
    fidelity: str = DEFAULT_FIDELITY
    anchors: str = "3x2"
    max_rel_err: float = DEFAULT_MAX_REL_ERR


def resolve_options(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    backend: str | None = None,
    batch: bool | None = None,
    batch_width: int | None = None,
    fidelity: str | None = None,
    anchors: str | None = None,
    max_rel_err: float | None = None,
) -> RuntimeOptions:
    """Resolve runtime options with the documented precedence.

    For each option independently: an explicit (non-``None``) argument
    wins outright — the corresponding environment variable is not even
    read, so a stale or malformed ``REPRO_*`` value can never override or
    break an explicit choice. Otherwise the environment variable applies
    (``REPRO_JOBS``, ``REPRO_CACHE_DIR``, ``REPRO_BACKEND``,
    ``REPRO_BATCH``, ``REPRO_BATCH_WIDTH``, ``REPRO_FIDELITY``,
    ``REPRO_ANALYTIC_ANCHORS``, ``REPRO_ANALYTIC_MAX_ERR``), and finally
    the default (``1``, no cache, ``auto``, batching off, width 16,
    ``exact`` fidelity, ``3x2`` anchors, 0.10 escalation bound).
    Validation happens here for every entry path — constructor,
    :func:`configure_runtime`, CLI flags.
    """
    # Imported lazily: repro.analytic's planner imports this module.
    from ..analytic import FIDELITY_NAMES
    from ..analytic.planner import DEFAULT_ANCHOR_SPEC, parse_anchor_spec

    if jobs is None:
        raw = env_str("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer >= 1, got {raw!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be an integer >= 1, got {raw!r}")
    elif jobs < 1:
        raise ValueError("jobs must be >= 1")
    if cache_dir is None:
        cache_dir = env_str("REPRO_CACHE_DIR")
    else:
        cache_dir = os.fspath(cache_dir)
    backend = resolve_backend_name(
        backend if backend is not None else env_str("REPRO_BACKEND")
    )
    if backend == "broker" and cache_dir is None:
        # Fail at configuration time, not minutes later at the first
        # cache-miss batch (make_backend keeps the same check as a
        # backstop for directly-constructed runtimes).
        raise ConfigError(
            "the broker backend needs a shared cache directory for its job "
            "queue: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    if batch is None:
        batch = env_flag("REPRO_BATCH", default=False)
    if batch_width is None:
        raw = env_str("REPRO_BATCH_WIDTH", str(DEFAULT_BATCH_WIDTH))
        try:
            batch_width = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BATCH_WIDTH must be an integer >= 2, got {raw!r}"
            ) from None
        if batch_width < 2:
            raise ValueError(
                f"REPRO_BATCH_WIDTH must be an integer >= 2, got {raw!r}"
            )
    elif batch_width < 2:
        raise ValueError("batch_width must be >= 2")
    if fidelity is None:
        fidelity = env_str("REPRO_FIDELITY", DEFAULT_FIDELITY)
    if fidelity not in FIDELITY_NAMES:
        raise ConfigError(
            f"unknown fidelity {fidelity!r}: choose one of "
            f"{', '.join(FIDELITY_NAMES)}"
        )
    if anchors is None:
        anchors = env_str("REPRO_ANALYTIC_ANCHORS", DEFAULT_ANCHOR_SPEC)
    parse_anchor_spec(anchors)  # validation only; stored as the spec string
    if max_rel_err is None:
        raw = env_str("REPRO_ANALYTIC_MAX_ERR")
        if raw is None:
            max_rel_err = DEFAULT_MAX_REL_ERR
        else:
            try:
                max_rel_err = float(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_ANALYTIC_MAX_ERR must be a float in (0, 1], "
                    f"got {raw!r}"
                ) from None
            if not 0.0 < max_rel_err <= 1.0:
                raise ValueError(
                    f"REPRO_ANALYTIC_MAX_ERR must be a float in (0, 1], "
                    f"got {raw!r}"
                )
    elif not 0.0 < max_rel_err <= 1.0:
        raise ValueError("max_rel_err must lie in (0, 1]")
    return RuntimeOptions(
        jobs=jobs,
        cache_dir=cache_dir,
        backend=backend,
        batch=batch,
        batch_width=batch_width,
        fidelity=fidelity,
        anchors=anchors,
        max_rel_err=max_rel_err,
    )


class ExperimentRuntime:
    """Executes and caches simulation jobs; see module docstring."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        backend: str = "auto",
        batch: bool = False,
        batch_width: int = DEFAULT_BATCH_WIDTH,
        fidelity: str = DEFAULT_FIDELITY,
        anchors: str = "3x2",
        max_rel_err: float = DEFAULT_MAX_REL_ERR,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if batch_width < 2:
            raise ValueError("batch_width must be >= 2")
        self.jobs = jobs
        self.batch = batch
        self.batch_width = batch_width
        self.backend = resolve_backend_name(backend)
        self.fidelity = fidelity
        self.anchors = anchors
        self.max_rel_err = max_rel_err
        self.cache_dir: str | None = os.fspath(cache_dir) if cache_dir else None
        self.disk: ResultCache | None = (
            ResultCache(cache_dir) if cache_dir else None
        )
        #: The analytic tier's store, opened only when a non-exact
        #: fidelity can produce records — an exact-fidelity runtime never
        #: even looks at the analytic tag directory.
        self.analytic: AnalyticStore | None = None
        if cache_dir and fidelity != "exact":
            from ..analytic.store import AnalyticStore

            self.analytic = AnalyticStore(cache_dir)
        self._memo: dict[RunKey, SimulationResult] = {}
        #: Model-synthesized results, memoized strictly apart from exact
        #: ones: nothing ever migrates between the two dicts.
        self._analytic_memo: dict[RunKey, SimulationResult] = {}
        self.executed = 0
        #: Cells answered by the analytic model instead of the engine.
        self.estimated = 0
        #: Executor metadata from the most recent batch (broker telemetry,
        #: pool width); merged into the CLI's cache-metrics line.
        self.backend_telemetry: dict = {}

    # ------------------------------------------------------------- lookups

    def _lookup(self, key: RunKey) -> SimulationResult | None:
        """Memo, then disk (promoting a disk hit into the memo)."""
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.disk is not None:
            stored = self.disk.get(*key)
            if stored is not None:
                self._memo[key] = stored
                return stored
        return None

    def _lookup_any(self, key: RunKey) -> SimulationResult | None:
        """Exact tier first, then — under a non-exact fidelity — analytic.

        Exact fidelity never consults the analytic tier, so an estimate
        can never satisfy an exact lookup; the analytic tiers *do* accept
        an exact result (strictly better than any estimate).
        """
        hit = self._lookup(key)
        if hit is not None:
            return hit
        if self.fidelity == "exact":
            return None
        hit = self._analytic_memo.get(key)
        if hit is not None:
            return hit
        if self.analytic is not None:
            stored = self.analytic.get(*key)
            if stored is not None:
                self._analytic_memo[key] = stored
                return stored
        return None

    def _store(self, key: RunKey, result: SimulationResult) -> None:
        self._memo[key] = result
        if self.disk is not None:
            self.disk.put(*key, result)

    def _store_analytic(self, key: RunKey, result: SimulationResult) -> None:
        self._analytic_memo[key] = result
        if self.analytic is not None:
            self.analytic.put(*key, result)

    # ----------------------------------------------------------- execution

    def run_one(
        self,
        workload: str,
        config: SimConfig,
        workload_scale: float = 1.0,
    ) -> SimulationResult:
        """Run (or fetch) a single simulation, always in-process.

        A single cell is never worth a calibration pass, so a miss runs
        exact whatever the fidelity — the analytic tiers only answer
        :meth:`run_many` batches (and prior estimates found in the
        analytic store).
        """
        job = SimJob(workload, config, workload_scale)
        key = job.key
        hit = self._lookup_any(key)
        if hit is not None:
            return hit
        result = execute_job(job)
        self.executed += 1
        self._store(key, result)
        return result

    def run_many(self, jobs: list[SimJob] | tuple[SimJob, ...]) -> list[SimulationResult]:
        """Run a batch of jobs; results align with ``jobs`` order.

        Duplicate jobs are deduplicated, cached jobs are resolved without
        executing, and the remaining misses run on the selected executor
        backend (process pool with ``jobs > 1`` by default; the broker
        fans them out across worker processes/machines). Under the
        ``analytic``/``hybrid`` fidelity tiers the misses are planned
        into calibration anchors (run exact) plus model-synthesized
        cells (:meth:`_run_estimated`).
        """
        keys = [job.key for job in jobs]
        pending: list[tuple[RunKey, SimJob]] = []
        seen: set[RunKey] = set()
        for key, job in zip(keys, jobs):
            if key in seen or self._lookup_any(key) is not None:
                continue
            seen.add(key)
            pending.append((key, job))
        if pending:
            if self.fidelity == "exact":
                batch = self._execute_batch(pending)
                for (key, job), result in zip(pending, batch):
                    self._store(key, result)
            else:
                self._run_estimated(pending)
        return [self._result_for(key) for key in keys]

    def _result_for(self, key: RunKey) -> SimulationResult:
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        return self._analytic_memo[key]

    def _run_estimated(self, pending: list[tuple[RunKey, SimJob]]) -> None:
        """The analytic/hybrid dispatch: calibrate, estimate, escalate.

        1. Plan the misses into modelable series plus an exact
           passthrough (:func:`repro.analytic.plan_series`).
        2. Run every anchor (and passthrough cell) on the exact engine —
           through :meth:`_execute_batch`, so anchors use the configured
           backend and land in the exact cache like any job.
        3. Fit each series and synthesize its non-anchor cells into the
           analytic memo/store.
        4. Escalate to exact: series the model refuses to fit; under
           ``hybrid`` additionally whole series whose self-reported
           error bound exceeds ``max_rel_err`` and any cell outside its
           anchor hull (extrapolation carries no bound).
        """
        from ..analytic import (
            AnalyticFitError,
            AnchorPoint,
            cell_axes,
            fit_series,
            job_pressure,
            plan_series,
        )

        plans, passthrough = plan_series(
            [job for _, job in pending], self.anchors
        )
        exact_jobs: list[SimJob] = list(passthrough)
        for plan in plans:
            exact_jobs.extend(plan.anchors)
        if exact_jobs:
            exact_pending = [(job.key, job) for job in exact_jobs]
            batch = self._execute_batch(exact_pending)
            for (key, job), result in zip(exact_pending, batch):
                self._store(key, result)
        escalated: list[SimJob] = []
        for plan in plans:
            anchor_points = [
                AnchorPoint(
                    latency=float(cell_axes(job)[0]),
                    pressure=job_pressure(job),
                    result=self._memo[job.key],
                )
                for job in plan.anchors
            ]
            try:
                fit = fit_series(plan.workload, plan.mechanism, anchor_points)
            except AnalyticFitError:
                escalated.extend(plan.estimated)
                continue
            if self.fidelity == "hybrid" and fit.rel_err_bound > self.max_rel_err:
                escalated.extend(plan.estimated)
                continue
            for job in plan.estimated:
                latency = float(cell_axes(job)[0])
                pressure = job_pressure(job)
                if self.fidelity == "hybrid" and not fit.in_hull(
                    latency, pressure
                ):
                    escalated.append(job)
                    continue
                self._store_analytic(job.key, fit.predict(latency, pressure))
                self.estimated += 1
        if escalated:
            escalated_pending = [(job.key, job) for job in escalated]
            batch = self._execute_batch(escalated_pending)
            for (key, job), result in zip(escalated_pending, batch):
                self._store(key, result)

    def _execute_batch(
        self, pending: list[tuple[RunKey, SimJob]]
    ) -> list[SimulationResult]:
        """Dispatch a batch of cache misses to the executor backend.

        With batching on, same-workload jobs are regrouped into
        :class:`BatchJob` units first (:func:`plan_batch_units`); the
        backend returns one result list per batched unit, which fans back
        out here into per-job order — callers and the cache never see the
        batching.
        """
        jobs = [job for _, job in pending]
        units: list[WorkUnit]
        if self.batch:
            units, positions = plan_batch_units(jobs, self.batch_width)
        else:
            units = list(jobs)
            positions = [[i] for i in range(len(jobs))]
        executor = make_backend(self.backend, jobs=self.jobs, cache_dir=self.cache_dir)
        unit_results = executor.run_batch(units)
        results: list[SimulationResult | None] = [None] * len(jobs)
        for unit, chunk, unit_result in zip(units, positions, unit_results):
            if isinstance(unit, BatchJob):
                for position, result in zip(chunk, unit_result):
                    results[position] = result
            else:
                results[chunk[0]] = unit_result
        # The broker can answer jobs from done records that survived an
        # earlier (interrupted) batch; those were not simulated by anyone
        # now, so they must not count as executions. (Its counter is in
        # member simulations, batched or not.)
        self.executed += len(jobs) - getattr(executor, "reused_results", 0)
        telemetry = dict(executor.telemetry())
        telemetry["backend"] = executor.name
        if self.batch:
            batched_units = [u for u in units if isinstance(u, BatchJob)]
            telemetry["batch_units"] = len(batched_units)
            telemetry["batched_jobs"] = sum(len(u.configs) for u in batched_units)
        self._merge_telemetry(telemetry)
        return results  # type: ignore[return-value]

    def _merge_telemetry(self, telemetry: dict) -> None:
        """Accumulate executor telemetry across the runtime's batches.

        Numeric fields sum, per-worker job counts merge, so a multi-batch
        run (one per experiment module) reports whole-run totals. A
        backend switch between batches restarts the aggregate.
        """
        merged = self.backend_telemetry
        if merged.get("backend") != telemetry["backend"]:
            self.backend_telemetry = telemetry
            return
        for key, value in telemetry.items():
            if key == "broker_workers":
                workers = merged.setdefault(key, {})
                for worker, count in value.items():
                    workers[worker] = workers.get(worker, 0) + count
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if key in ("pool_workers", "broker_longest_job_s"):
                    merged[key] = max(merged.get(key, 0), value)
                else:
                    merged[key] = round(merged.get(key, 0) + value, 6)
            else:
                merged[key] = value

    # ------------------------------------------------------------- control

    def clear_memo(self) -> None:
        """Drop the in-process memo (the disk cache is left intact)."""
        self._memo.clear()


def backend_summary(runtime: "ExperimentRuntime") -> str:
    """``backend=NAME, key=value, ...`` for CLI metric trailers.

    One formatter shared by every CLI that prints the runtime's executor
    telemetry, so the ``[cache: ...]`` and ``[sweep ...]`` trailers can
    never drift apart. Every value renders flat (per-worker counts as
    ``w1:19/w2:17``) — the trailer stays a comma-separated key=value
    list that line filters can split naively.
    """

    def flat(value: object) -> object:
        if isinstance(value, dict):
            return "/".join(f"{k}:{v}" for k, v in sorted(value.items()))
        return value

    telemetry = dict(runtime.backend_telemetry)
    backend = telemetry.pop("backend", runtime.backend)
    extra = "".join(f", {key}={flat(telemetry[key])}" for key in sorted(telemetry))
    return f"backend={backend}{extra}"


# ---------------------------------------------------------------------------
# Process-wide default runtime
# ---------------------------------------------------------------------------

_RUNTIME: ExperimentRuntime | None = None


def _from_options(options: RuntimeOptions) -> ExperimentRuntime:
    return ExperimentRuntime(
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        backend=options.backend,
        batch=options.batch,
        batch_width=options.batch_width,
        fidelity=options.fidelity,
        anchors=options.anchors,
        max_rel_err=options.max_rel_err,
    )


def get_runtime() -> ExperimentRuntime:
    """The process-wide runtime (created from env vars on first use)."""
    global _RUNTIME
    if _RUNTIME is None:
        _RUNTIME = _from_options(resolve_options())
    return _RUNTIME


def configure_runtime(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    backend: str | None = None,
    batch: bool | None = None,
    batch_width: int | None = None,
    fidelity: str | None = None,
    anchors: str | None = None,
    max_rel_err: float | None = None,
) -> ExperimentRuntime:
    """Replace the process-wide runtime; unset options fall back to env.

    Precedence is :func:`resolve_options`'s: every explicit argument beats
    its ``REPRO_*`` variable, which beats the default. The previous
    runtime's in-process memo is carried over (its entries stay valid —
    keys are content-addressed), so reconfiguring mid-process never
    discards work. An explicit ``cache_dir`` also points the workload
    trace store at the same directory (the two subsystems use disjoint
    schema-tag subdirectories), so ``--cache-dir`` gives pool and broker
    workers warm workload builds as well as warm results — unless
    ``REPRO_TRACE_STORE`` is set, which being the more specific control
    keeps pointing the store wherever it says.
    """
    global _RUNTIME
    runtime = _from_options(
        resolve_options(
            jobs, cache_dir, backend, batch, batch_width,
            fidelity, anchors, max_rel_err,
        )
    )
    if cache_dir is not None and read_env("REPRO_TRACE_STORE") is None:
        configure_trace_store(cache_dir)
    if _RUNTIME is not None:
        runtime._memo.update(_RUNTIME._memo)
    _RUNTIME = runtime
    return runtime
