"""File-based distributed job broker: work stealing over a shared directory.

Any number of worker processes — on one machine or on several machines
sharing a filesystem — coordinate through a queue that lives entirely
under ``<cache-dir>/queue/``. There is no server and no network protocol:
every transition a job can take is a single atomic ``os.rename`` on the
shared filesystem, so exactly one claimant ever wins a job and a crashed
worker can never corrupt the queue.

Queue layout::

    <cache-dir>/queue/
      pending/<job-id>__w<COST>__a<N>.json  # runnable; N = attempts so far
      claimed/<job-id>__w<COST>__a<N>.json  # leased (mtime = heartbeat)
      done/<job-id>.json                    # result + per-job telemetry
      failed/<job-id>.json                  # terminal error after retry cap

``COST`` is the job's deterministic cost estimate (trace length × LLC
cycle budget, :func:`~repro.runtime.runner.estimate_job_cost`), recorded
both in the payload and in the filename — as a weight token ``__w``,
whose letter can never occur inside the job id's hex digest — so the
**longest-first scheduler** can order claims from one ``listdir``:
stragglers start first and tail latency drops. Jobs without an estimate
(and pre-scheduler queue files, which have no ``__w`` token) fall back to
FIFO order after every costed job; ``scheduler="fifo"``
(``REPRO_BROKER_SCHEDULER=fifo``) disables the ordering entirely for A/B
timing.

Job lifecycle:

1. **Enqueue** — the submitting process writes a spec (workload, scale,
   full canonicalized config, config digest, engine schema tag) to a temp
   file and renames it into ``pending/``. The job id is the runtime's
   cache key (``workload__s<scale>__<digest16>``), so re-submitting an
   already-done job is a no-op — the done record *is* the answer.
2. **Claim** — a worker renames ``pending/X`` to ``claimed/X``. The rename
   either succeeds (the worker owns the job) or raises — two stealers can
   never both win. While executing, the worker touches the claimed file's
   mtime every ``lease_seconds / 3`` as a heartbeat.
3. **Complete** — the worker writes the result + telemetry (worker id,
   queue wait, run time, attempts) to ``done/`` atomically, mirrors the
   result into the shared :class:`~repro.runtime.cache.ResultCache`, and
   removes its claim.
4. **Crash recovery** — any participant that notices a claimed file whose
   mtime is older than the lease renames it back to ``pending/`` with the
   attempt counter bumped (again atomic: exactly one recoverer wins). A
   job whose attempts reach ``max_attempts`` is moved to ``failed/``
   instead, and the submitting coordinator surfaces one clean
   :class:`~repro.errors.BrokerError` naming the job and its last error.

The submitting process (:class:`BrokerBackend`) participates in stealing
by default, so a broker run completes with zero external workers; extra
``python -m repro.runtime worker`` processes simply drain the queue
faster. Results are deterministic regardless of who ran what.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from .. import config as config_module
from ..config import SimConfig
from ..core.results import SimulationResult
from ..envopts import env_flag, env_str, read_env
from ..errors import BrokerError
from .atomicio import atomic_write_json
from .cache import SCHEMA_TAG, ResultCache
from .confighash import canonicalize, config_digest
from .faultpoints import maybe_fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from .runner import WorkUnit

#: Queue record format version (independent of the engine schema tag).
#: v2: batched work units — specs may carry ``configs``/``digests`` lists
#: instead of a single ``config``, and their done records a ``results``
#: list instead of a single ``result``.
#: v3: requeue-aware wait telemetry — requeued specs carry ``requeued_at``,
#: done records report ``queue_wait_s`` from the *latest* (re)queue time
#: and the new ``age_s`` from the original ``enqueued_at``.
BROKER_SCHEMA = "broker-v3"

#: Defaults, overridable via REPRO_BROKER_* (see :func:`broker_env_options`).
DEFAULT_LEASE_SECONDS = 300.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_POLL_SECONDS = 0.2

#: Claim-ordering policies (``REPRO_BROKER_SCHEDULER``): ``longest`` starts
#: the most expensive pending job first, ``fifo`` preserves name order.
SCHEDULERS: tuple[str, ...] = ("longest", "fifo")
DEFAULT_SCHEDULER = "longest"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _read_json(path: Path) -> dict | None:
    """A missing, truncated or mid-rename record reads as absent."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


# ---------------------------------------------------------------------------
# Config/job (de)serialization
# ---------------------------------------------------------------------------

#: Class-name registry for rebuilding canonicalized config trees. Derived
#: from the config module so a params class added tomorrow is picked up
#: automatically — the same no-hand-maintained-list principle as the digest.
_CONFIG_CLASSES = {
    cls.__name__: cls
    for cls in vars(config_module).values()
    if isinstance(cls, type) and dataclasses.is_dataclass(cls)
}


def config_from_canonical(obj: object) -> object:
    """Rebuild a config value from its :func:`canonicalize` form.

    Tagged objects become their dataclass (validated through
    ``__post_init__`` exactly like a hand-built config), arrays become
    tuples (the only sequence type in config trees), scalars pass through.
    """
    if isinstance(obj, dict):
        tag = obj.get("__class__")
        if tag is None:
            raise BrokerError(f"config record without a __class__ tag: {obj!r}")
        cls = _CONFIG_CLASSES.get(tag)
        if cls is None:
            known = ", ".join(sorted(_CONFIG_CLASSES))
            raise BrokerError(
                f"unknown config class {tag!r} in job spec (worker running "
                f"older code?); known classes: {known}"
            )
        kwargs = {
            key: config_from_canonical(value)
            for key, value in obj.items()
            if key != "__class__"
        }
        return cls(**kwargs)
    if isinstance(obj, list):
        return tuple(config_from_canonical(v) for v in obj)
    return obj


def job_spec(job: WorkUnit) -> dict:
    """The JSON work-unit description a worker needs to execute ``job``.

    A single :class:`~repro.runtime.runner.SimJob` carries one ``config``;
    a :class:`~repro.runtime.runner.BatchJob` carries ``configs`` and the
    matching per-member ``digests`` (the unit's own ``digest`` is the
    batch digest its job id is derived from).
    """
    from .runner import BatchJob, estimate_job_cost

    workload, scale_tok, digest = job.key
    spec = {
        "schema": BROKER_SCHEMA,
        "engine_schema": SCHEMA_TAG,
        "workload": workload,
        "scale": scale_tok,
        "digest": digest,
        "cost": estimate_job_cost(job),
        "enqueued_at": time.time(),
    }
    if isinstance(job, BatchJob):
        spec["configs"] = [canonicalize(config) for config in job.configs]
        spec["digests"] = [config_digest(config) for config in job.configs]
    else:
        spec["config"] = canonicalize(job.config)
    return spec


def _rebuild_config(obj: object) -> SimConfig:
    config = config_from_canonical(obj)
    if not isinstance(config, SimConfig):
        raise BrokerError("job spec config does not describe a SimConfig")
    return config


def job_from_spec(spec: dict) -> WorkUnit:
    """Rebuild the work unit a spec describes.

    Every config digest is recomputed from the rebuilt config and checked
    against the spec's — catching serialization drift or a worker running
    different config code before it can produce a wrongly-keyed result.
    For a batched spec the member digests are checked individually (the
    batch digest is derived from them, so it is covered transitively).
    """
    from .runner import BatchJob, SimJob

    if "configs" in spec:
        configs = tuple(_rebuild_config(obj) for obj in spec["configs"])
        batch = BatchJob(spec["workload"], configs, float(spec["scale"]))
        for config, expected in zip(configs, spec["digests"]):
            if config_digest(config) != expected:
                raise BrokerError(
                    f"config digest mismatch for batch job "
                    f"{spec['workload']!r}: the spec says {expected[:16]} "
                    f"but this worker's code computes "
                    f"{config_digest(config)[:16]} — submitter and worker "
                    f"are running different repro versions"
                )
        return batch
    config = _rebuild_config(spec["config"])
    job = SimJob(spec["workload"], config, float(spec["scale"]))
    if config_digest(config) != spec["digest"]:
        raise BrokerError(
            f"config digest mismatch for job {spec['workload']!r}: the spec "
            f"says {spec['digest'][:16]} but this worker's code computes "
            f"{config_digest(config)[:16]} — submitter and worker are "
            f"running different repro versions"
        )
    return job


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------


@dataclass
class ClaimedJob:
    """A job this process owns (claimed but not yet completed)."""

    job_id: str
    attempts: int  # prior execution attempts (0 on the first claim)
    path: Path  # current location in claimed/
    spec: dict
    claimed_at: float
    #: When the job last became runnable — the pending file's mtime at
    #: claim time. A fresh enqueue writes the file then, a retry requeue
    #: rewrites it then, and lease recovery touches it then, so this is
    #: the *latest* (re)queue time: the basis for an honest
    #: ``queue_wait_s`` that never absorbs a prior attempt's run time.
    runnable_at: float


def _job_filename(job_id: str, cost: int | None, attempts: int) -> str:
    """The queue filename carrying a job's id, cost estimate and attempts."""
    cost_part = f"__w{cost}" if cost is not None else ""
    return f"{job_id}{cost_part}__a{attempts}.json"


def _parse_job_name(filename: str) -> tuple[str, int | None, int] | None:
    """``<job-id>[__w<COST>]__a<N>.json`` → (job id, cost, N).

    ``None`` for temp files and foreign clutter. The cost (weight) token
    is optional so pre-scheduler queue files (and jobs without an
    estimate) still parse — they read as cost ``None``, the FIFO-fallback
    bucket. ``w`` is not a hex digit, so the token can never be confused
    with the tail of the job id's config-digest segment.
    """
    stem = filename[: -len(".json")]
    job_id, sep, attempts = stem.rpartition("__a")
    if not sep or not attempts.isdigit():
        return None
    head, sep, cost = job_id.rpartition("__w")
    if sep and cost.isdigit():
        return head, int(cost), int(attempts)
    return job_id, None, int(attempts)


class BrokerQueue:
    """Filesystem job queue; every state transition is one atomic rename."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        scheduler: str = DEFAULT_SCHEDULER,
    ):
        if lease_seconds <= 0:
            raise BrokerError("lease_seconds must be positive")
        if max_attempts < 1:
            raise BrokerError("max_attempts must be >= 1")
        if scheduler not in SCHEDULERS:
            valid = ", ".join(SCHEDULERS)
            raise BrokerError(
                f"unknown broker scheduler {scheduler!r}; valid schedulers: "
                f"{valid} (set REPRO_BROKER_SCHEDULER)"
            )
        self.scheduler = scheduler
        self.root = Path(cache_dir) / "queue"
        self.pending = self.root / "pending"
        self.claimed = self.root / "claimed"
        self.done = self.root / "done"
        self.failed = self.root / "failed"
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts

    def _ensure_dirs(self) -> None:
        for directory in (self.pending, self.claimed, self.done, self.failed):
            directory.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def job_id(job: WorkUnit) -> str:
        workload, scale_tok, digest = job.key
        return f"{workload}__s{scale_tok}__{digest[:16]}"

    # ------------------------------------------------------------- enqueue

    def enqueue(self, job: WorkUnit) -> str:
        """Make ``job`` runnable unless it is already visible anywhere.

        Racing submitters are harmless: both write identical specs, and a
        same-name rename collapses them into one pending file.
        """
        self._ensure_dirs()
        job_id = self.job_id(job)
        if self.read_done(job_id) is not None or self._visible(job_id):
            return job_id
        # A leftover terminal failure from an earlier batch must not poison
        # this (fresh) submission: clear it and start over at attempt 0.
        (self.failed / f"{job_id}.json").unlink(missing_ok=True)
        spec = job_spec(job)
        name = _job_filename(job_id, spec.get("cost"), 0)
        atomic_write_json(self.pending / name, spec)
        return job_id

    def _visible(self, job_id: str) -> bool:
        """Is a runnable/leased spec for ``job_id`` already in the queue?

        A *pending* spec written by an older engine version (an
        interrupted run that predates a source change) is dead weight —
        its claimer would only terminal-fail it on the schema check — so
        it is deleted here and reported not-visible, letting the caller
        enqueue a fresh current-schema spec instead. A *claimed* spec in
        the same situation whose lease has expired (its old-schema owner
        crashed) is equally dead weight and gets the same treatment;
        while its lease is live it stays visible — a running worker is
        never robbed, even a doomed one.
        """
        visible = False
        now = time.time()
        for directory in (self.pending, self.claimed):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                parsed = _parse_job_name(name)
                if parsed is None or parsed[0] != job_id:
                    continue
                spec = _read_json(directory / name)
                if spec is not None and spec.get("engine_schema") != SCHEMA_TAG:
                    if directory is self.pending:
                        (directory / name).unlink(missing_ok=True)
                        continue
                    try:
                        expired = (
                            now - (directory / name).stat().st_mtime
                            > self.lease_seconds
                        )
                    except OSError:
                        continue  # released or recovered concurrently
                    if expired:
                        (directory / name).unlink(missing_ok=True)
                        continue
                visible = True
        return visible

    # --------------------------------------------------------------- claim

    def _claim_order(self, names: list[str]) -> list[tuple[str, str, int | None, int]]:
        """Parsed pending candidates in the scheduler's claim order.

        ``longest`` sorts by estimated cost, descending, so the slowest
        jobs — the ones that would otherwise anchor the batch's tail —
        start first. Jobs without a cost estimate (and pre-scheduler
        files) come after every costed job, in name order: the FIFO
        fallback. ``fifo`` is name order outright, for A/B timing.
        """
        candidates = []
        for name in names:
            if not name.endswith(".json"):
                continue
            parsed = _parse_job_name(name)
            if parsed is None:
                continue  # temp file or foreign clutter, not a job
            candidates.append((name, *parsed))
        if self.scheduler == "longest":
            candidates.sort(key=lambda c: (c[2] is None, -(c[2] or 0), c[0]))
        else:
            candidates.sort(key=lambda c: c[0])
        return candidates

    def claim(self, worker_id: str | None = None) -> ClaimedJob | None:
        """Steal one pending job, or ``None`` when the queue is empty.

        Candidates are tried in the scheduler's order (longest-first by
        default — see :meth:`_claim_order`). The ``os.rename(pending/X,
        claimed/X)`` either succeeds — this process now exclusively owns
        the job — or raises because another stealer won the race, in
        which case the next candidate is tried.
        """
        self._ensure_dirs()
        try:
            names = os.listdir(self.pending)
        except OSError:
            return None
        for name, job_id, _cost, attempts in self._claim_order(names):
            src = self.pending / name
            dst = self.claimed / name
            now = time.time()
            try:
                # The pending file's mtime is when the job last became
                # runnable (enqueue write, retry rewrite, or recovery
                # touch) — captured before the lease touch below erases it.
                runnable_at = src.stat().st_mtime
                # Start the lease clock BEFORE the rename: the rename
                # preserves mtime, and a job that sat pending longer than
                # the lease would otherwise arrive in claimed/ already
                # "expired" and be recoverable out from under its claimer.
                os.utime(src, (now, now))
                os.rename(src, dst)
            except OSError:
                continue  # lost the race for this job; try the next one
            spec = _read_json(dst)
            if spec is None:
                # Unreadable spec: nothing to execute, nothing to retry.
                self._fail_terminal(job_id, attempts, "unreadable job spec")
                dst.unlink(missing_ok=True)
                continue
            return ClaimedJob(
                job_id,
                attempts,
                dst,
                spec,
                claimed_at=now,
                runnable_at=min(runnable_at, now),
            )
        return None

    def heartbeat(self, claimed: ClaimedJob) -> None:
        """Refresh the lease on a job this process is still executing."""
        now = time.time()
        try:
            os.utime(claimed.path, (now, now))
        except OSError:
            pass  # claim was recovered from under us; completion will dedupe

    # ------------------------------------------------------------ complete

    def complete(
        self,
        claimed: ClaimedJob,
        result: SimulationResult | list[SimulationResult],
        worker_id: str,
        run_seconds: float,
    ) -> dict:
        """Publish the result(s) + telemetry, then release the claim.

        A batched unit publishes ``results`` — one entry per member
        config, in config order — where a single job publishes
        ``result``; the coordinator dispatches on which key is present.

        ``queue_wait_s`` measures from the job's *latest* (re)queue time
        (:attr:`ClaimedJob.runnable_at`), so a retried job's wait never
        absorbs a prior attempt's run time or the lease-expiry window;
        ``age_s`` keeps the end-to-end view from the original
        ``enqueued_at``.
        """
        record = {
            "schema": BROKER_SCHEMA,
            "engine_schema": SCHEMA_TAG,
            "job_id": claimed.job_id,
            "digest": claimed.spec["digest"],
            "worker": worker_id,
            "attempts": claimed.attempts + 1,
            "queue_wait_s": round(
                max(0.0, claimed.claimed_at - claimed.runnable_at), 6
            ),
            "age_s": round(
                max(
                    0.0,
                    claimed.claimed_at
                    - claimed.spec.get("enqueued_at", claimed.claimed_at),
                ),
                6,
            ),
            "run_s": round(run_seconds, 6),
            "completed_at": time.time(),
        }

        def serialize(one: SimulationResult) -> dict:
            return {
                "workload": one.workload,
                "mechanism": one.mechanism,
                "raw": one.raw,
            }

        if isinstance(result, list):
            record["results"] = [serialize(one) for one in result]
        else:
            record["result"] = serialize(result)
        atomic_write_json(self.done / f"{claimed.job_id}.json", record)
        claimed.path.unlink(missing_ok=True)
        return record

    def fail(self, claimed: ClaimedJob, error: str) -> bool:
        """Record a failed execution attempt by the claim's owner.

        Returns ``True`` when the job remains runnable (requeued here, or
        already requeued by lease recovery) and ``False`` when the retry
        cap was reached and it is now terminal. A worker whose claim file
        is gone lost its lease to recovery while it was busy — the job is
        already back in circulation under a bumped attempt, so requeueing
        it *again* here would create a duplicate pending spec whose later
        claim could rename over another worker's active claim file.
        """
        if not claimed.path.exists():
            return True  # lease recovered from under us; job lives on
        attempts = claimed.attempts + 1
        if attempts >= self.max_attempts:
            self._fail_terminal(claimed.job_id, attempts, error)
            claimed.path.unlink(missing_ok=True)
            return False
        spec = dict(claimed.spec)
        spec["last_error"] = error
        # The rewrite stamps both the spec and (via the fresh file's
        # mtime) the queue timestamp, so the next claimer's
        # ``runnable_at`` — and thus ``queue_wait_s`` — starts here, not
        # at the original enqueue.
        spec["requeued_at"] = time.time()
        name = _job_filename(claimed.job_id, spec.get("cost"), attempts)
        atomic_write_json(self.pending / name, spec)
        claimed.path.unlink(missing_ok=True)
        return True

    def _fail_terminal(self, job_id: str, attempts: int, error: str) -> None:
        atomic_write_json(
            self.failed / f"{job_id}.json",
            {
                "schema": BROKER_SCHEMA,
                "job_id": job_id,
                "attempts": attempts,
                "error": error,
                "failed_at": time.time(),
            },
        )

    # ------------------------------------------------------ crash recovery

    def recover_expired(self) -> int:
        """Requeue every claimed job whose lease has expired.

        Safe to call from any participant at any time: the requeue is an
        atomic rename (one recoverer wins), a claim whose job already has
        a done record is just a leftover to delete, and a job that has
        exhausted its attempts goes to ``failed/`` instead. An expired
        claim whose spec was written by an *older engine schema* (a
        worker running pre-source-change code that crashed) is deleted
        rather than requeued — its next claimer could only terminal-fail
        it on the schema check, poisoning a fresh resubmission of the
        same job id. Returns how many jobs changed state.
        """
        recovered = 0
        try:
            names = sorted(os.listdir(self.claimed))
        except OSError:
            return 0
        now = time.time()
        for name in names:
            parsed = name.endswith(".json") and _parse_job_name(name)
            if not parsed:
                continue  # temp file or foreign clutter, not a job
            job_id, cost, attempts = parsed
            path = self.claimed / name
            if self.read_done(job_id) is not None:
                # Completed but the worker died before releasing its claim.
                path.unlink(missing_ok=True)
                recovered += 1
                continue
            try:
                expired = now - path.stat().st_mtime > self.lease_seconds
            except OSError:
                continue  # released or recovered concurrently
            if not expired:
                continue
            spec = _read_json(path)
            if spec is not None and spec.get("engine_schema") != SCHEMA_TAG:
                # Dead weight from a crashed old-schema worker: purge it
                # (like a stale pending spec) so a current-schema spec
                # can be enqueued in its place.
                path.unlink(missing_ok=True)
                recovered += 1
                continue
            next_attempts = attempts + 1
            if next_attempts >= self.max_attempts:
                error = (spec or {}).get("last_error") or (
                    f"lease expired {next_attempts} times (worker crash?)"
                )
                self._fail_terminal(job_id, next_attempts, error)
                path.unlink(missing_ok=True)
                recovered += 1
                continue
            try:
                # Touch before the rename (which preserves mtime), so the
                # requeued pending file's mtime — the next claimer's
                # ``runnable_at`` — is the recovery time, not the dead
                # worker's last heartbeat. The spec itself cannot be
                # rewritten here: the atomic rename is what guarantees
                # exactly one recoverer wins.
                os.utime(path, (now, now))
                os.rename(
                    path, self.pending / _job_filename(job_id, cost, next_attempts)
                )
            except OSError:
                continue  # another participant recovered it first
            recovered += 1
        return recovered

    # ------------------------------------------------------------- lookups

    def read_done(self, job_id: str) -> dict | None:
        """The done record for ``job_id``, if its engine schema is current.

        A record produced by a different engine version is stale — its
        counters may not match this code — and reads as absent.
        """
        record = _read_json(self.done / f"{job_id}.json")
        if record is None or record.get("engine_schema") != SCHEMA_TAG:
            return None
        return record

    def read_failed(self, job_id: str) -> dict | None:
        return _read_json(self.failed / f"{job_id}.json")

    def counts(self) -> dict[str, int]:
        """Per-state queue sizes (for status displays and smoke checks)."""
        out: dict[str, int] = {}
        for state, directory in (
            ("pending", self.pending),
            ("claimed", self.claimed),
            ("done", self.done),
            ("failed", self.failed),
        ):
            try:
                out[state] = sum(
                    1 for n in os.listdir(directory) if n.endswith(".json")
                )
            except OSError:
                out[state] = 0
        return out


# ---------------------------------------------------------------------------
# Executing a claim (shared by workers and the stealing coordinator)
# ---------------------------------------------------------------------------


def execute_claimed(
    queue: BrokerQueue,
    claimed: ClaimedJob,
    cache: ResultCache | None,
    worker_id: str,
) -> dict | None:
    """Run one claimed job to a done (or failed/requeued) record.

    A daemon thread refreshes the lease every third of its duration while
    the simulation runs, so long jobs are never falsely recovered. The
    result is mirrored into the shared result cache (warm future runs)
    besides being published in the done record (the delivery path — it
    works even when the cache directory is read-only for workers).
    """
    if claimed.spec.get("engine_schema") != SCHEMA_TAG:
        queue._fail_terminal(
            claimed.job_id,
            claimed.attempts + 1,
            f"engine schema mismatch: job submitted by "
            f"{claimed.spec.get('engine_schema')!r}, worker runs {SCHEMA_TAG!r}",
        )
        claimed.path.unlink(missing_ok=True)
        return None
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(queue.lease_seconds / 3):
            queue.heartbeat(claimed)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    started = time.time()
    try:
        from .runner import execute_work

        job = job_from_spec(claimed.spec)
        result = execute_work(job)
    except Exception as exc:  # noqa: BLE001 - any failure becomes a record
        stop.set()
        beater.join()
        queue.fail(claimed, f"{type(exc).__name__}: {exc}")
        return None
    stop.set()
    beater.join()
    record = queue.complete(claimed, result, worker_id, time.time() - started)
    if cache is not None:
        # A batched unit mirrors each member under its own per-cell key —
        # the cache never learns that cells were produced in a batch.
        if isinstance(result, list):
            from .runner import BatchJob

            assert isinstance(job, BatchJob)
            for member, one in zip(job.members, result):
                cache.put(member.key[0], member.key[1], member.key[2], one)
        else:
            cache.put(job.key[0], job.key[1], job.key[2], result)
    return record


# ---------------------------------------------------------------------------
# The backend (submitting side)
# ---------------------------------------------------------------------------


def _env_float(name: str, default: float | None) -> float | None:
    raw = read_env(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise BrokerError(f"{name} must be a number, got {raw!r}") from None


def broker_env_options() -> dict:
    """Broker tunables from ``REPRO_BROKER_*`` environment variables."""
    max_attempts_raw = read_env("REPRO_BROKER_MAX_ATTEMPTS")
    try:
        max_attempts = (
            int(max_attempts_raw) if max_attempts_raw else DEFAULT_MAX_ATTEMPTS
        )
    except ValueError:
        raise BrokerError(
            f"REPRO_BROKER_MAX_ATTEMPTS must be an integer, got {max_attempts_raw!r}"
        ) from None
    return {
        "lease_seconds": _env_float("REPRO_BROKER_LEASE", DEFAULT_LEASE_SECONDS),
        "max_attempts": max_attempts,
        "timeout": _env_float("REPRO_BROKER_TIMEOUT", None),
        "steal": env_flag("REPRO_BROKER_STEAL"),
        "scheduler": env_str("REPRO_BROKER_SCHEDULER", DEFAULT_SCHEDULER),
    }


class BrokerBackend:
    """Submit a batch to the shared queue and collect done records.

    The coordinator loop interleaves three duties until every job in the
    batch is resolved: collect freshly-done results, recover expired
    leases, and (unless ``steal=False``) claim and execute jobs itself —
    making it a peer of every external worker rather than a passive
    waiter.
    """

    name = "broker"

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        steal: bool = True,
        timeout: float | None = None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        worker_id: str | None = None,
        scheduler: str = DEFAULT_SCHEDULER,
    ):
        self.queue = BrokerQueue(cache_dir, lease_seconds, max_attempts, scheduler)
        self.cache = ResultCache(cache_dir)
        self.steal = steal
        self.timeout = timeout
        self.poll_seconds = poll_seconds
        self.worker_id = worker_id or default_worker_id()
        self._job_records: list[dict] = []
        #: Jobs of the last batch answered by pre-existing done records
        #: (not executed by anyone during the batch).
        self.reused_results = 0

    @classmethod
    def from_env(cls, cache_dir: str | os.PathLike) -> "BrokerBackend":
        return cls(cache_dir, **broker_env_options())

    def run_batch(
        self, jobs: list
    ) -> list[SimulationResult | list[SimulationResult]]:
        from .runner import BatchJob

        deadline = time.time() + self.timeout if self.timeout else None
        order: list[str] = []
        self.reused_results = 0
        for job in jobs:
            job_id = self.queue.job_id(job)
            if self.queue.read_done(job_id) is not None:
                # A surviving done record (e.g. an interrupted earlier
                # batch) is the answer — nothing is (re-)executed for it.
                # The counter is in member simulations, so a batched unit
                # counts one reuse per lane.
                self.reused_results += (
                    len(job.configs) if isinstance(job, BatchJob) else 1
                )
            else:
                self.queue.enqueue(job)
            order.append(job_id)
        unresolved = dict.fromkeys(order)  # insertion-ordered job-id set
        results: dict[str, SimulationResult | list[SimulationResult]] = {}
        self._job_records = []
        while unresolved:
            for job_id in list(unresolved):
                record = self.queue.read_done(job_id)
                if record is not None:
                    if "results" in record:
                        results[job_id] = [
                            SimulationResult(**one) for one in record["results"]
                        ]
                    else:
                        results[job_id] = SimulationResult(**record["result"])
                    self._job_records.append(record)
                    del unresolved[job_id]
                    continue
                failure = self.queue.read_failed(job_id)
                if failure is not None:
                    raise BrokerError(
                        f"job {job_id} failed after {failure.get('attempts')} "
                        f"attempt(s): {failure.get('error')} "
                        f"(record: {self.queue.failed / (job_id + '.json')})"
                    )
            if not unresolved:
                break
            self.queue.recover_expired()
            worked = False
            if self.steal:
                claimed = self.queue.claim(self.worker_id)
                if claimed is not None:
                    execute_claimed(self.queue, claimed, self.cache, self.worker_id)
                    worked = True
            if not worked:
                if deadline is not None and time.time() > deadline:
                    states = self.queue.counts()
                    raise BrokerError(
                        f"timed out after {self.timeout:.0f}s waiting for "
                        f"{len(unresolved)} job(s); queue state: {states} — "
                        f"are any `python -m repro.runtime worker` processes "
                        f"running against this cache dir?"
                    )
                time.sleep(self.poll_seconds)
        return [results[job_id] for job_id in order]

    def telemetry(self) -> dict:
        """Aggregate per-job telemetry of the last batch."""
        records = self._job_records
        if not records:
            return {}
        per_worker: dict[str, int] = {}
        for record in records:
            per_worker[record["worker"]] = per_worker.get(record["worker"], 0) + 1
        return {
            "broker_reused": self.reused_results,
            "broker_jobs": len(records),
            "broker_workers": dict(sorted(per_worker.items())),
            "broker_queue_wait_s": round(
                sum(r["queue_wait_s"] for r in records), 3
            ),
            "broker_run_s": round(sum(r["run_s"] for r in records), 3),
            "broker_longest_job_s": round(
                max(r["run_s"] for r in records), 3
            ),
            "broker_retries": sum(r["attempts"] - 1 for r in records),
        }


# ---------------------------------------------------------------------------
# Stand-alone worker loop (``python -m repro.runtime worker``)
# ---------------------------------------------------------------------------

#: In drain mode, a non-empty ``claimed/`` extends the idle allowance to
#: this many leases: long enough for a crashed peer's lease to expire and
#: its job to requeue (which this worker's own ``recover_expired`` then
#: picks up), short enough that a healthy peer grinding a long job does
#: not pin the drainer forever.
DRAIN_LEASE_WAIT_FACTOR = 2.0


def _peer_claims(queue: BrokerQueue) -> bool:
    """Does any claim file exist? (An idle caller holds none itself.)"""
    try:
        return any(name.endswith(".json") for name in os.listdir(queue.claimed))
    except OSError:
        return False


def run_worker(
    cache_dir: str | os.PathLike,
    worker_id: str | None = None,
    drain: bool = False,
    max_idle: float | None = None,
    poll_seconds: float = 0.5,
    lease_seconds: float | None = None,
    max_attempts: int | None = None,
    max_jobs: int | None = None,
) -> int:
    """Steal and execute jobs until idle for too long (or forever).

    ``drain`` exits once the queue has stayed empty for ``max_idle``
    seconds (default 10 — long enough to survive the gap between worker
    start-up and the coordinator's enqueue); without ``drain`` the worker
    runs until ``max_idle`` (if given) or until killed. "Empty" means no
    *runnable* work anywhere: while another worker still holds a claim,
    a draining worker's idle allowance stretches to
    ``DRAIN_LEASE_WAIT_FACTOR`` leases — if that peer crashed, its lease
    expires within one lease period and this worker recovers and runs
    the job instead of exiting with work stranded. Returns the number of
    jobs this worker completed.
    """
    from ..workloads.workload import configure_trace_store

    env = broker_env_options()
    queue = BrokerQueue(
        cache_dir,
        lease_seconds if lease_seconds is not None else env["lease_seconds"],
        max_attempts if max_attempts is not None else env["max_attempts"],
        env["scheduler"],
    )
    cache = ResultCache(cache_dir)
    # Share workload builds with everyone else using this cache dir
    # (unless REPRO_TRACE_STORE points the store somewhere specific).
    if read_env("REPRO_TRACE_STORE") is None:
        configure_trace_store(cache_dir)
    me = worker_id or default_worker_id()
    if drain and max_idle is None:
        max_idle = 10.0
    completed = 0
    idle_since: float | None = None
    print(f"[worker {me}] stealing from {queue.root}", flush=True)
    while True:
        queue.recover_expired()
        claimed = queue.claim(me)
        if claimed is None:
            now = time.time()
            if idle_since is None:
                idle_since = now
            idle_limit = max_idle
            if drain and idle_limit is not None and _peer_claims(queue):
                # Jobs leased by peers are not "queue empty": wait for
                # the lease verdict (completion or expiry-and-recovery)
                # before concluding there is nothing left to drain.
                idle_limit = max(
                    idle_limit, DRAIN_LEASE_WAIT_FACTOR * queue.lease_seconds
                )
            if idle_limit is not None and now - idle_since >= idle_limit:
                break
            time.sleep(poll_seconds)
            continue
        idle_since = None
        maybe_fault("worker-claimed")  # fault harness: die holding the lease
        record = execute_claimed(queue, claimed, cache, me)
        if record is not None:
            completed += 1
            print(
                f"[worker {me}] done {claimed.job_id} "
                f"(attempt {record['attempts']}, {record['run_s']:.2f}s)",
                flush=True,
            )
        else:
            print(f"[worker {me}] failed attempt on {claimed.job_id}", flush=True)
        if max_jobs is not None and completed >= max_jobs:
            break
    print(f"[worker {me}] exiting after {completed} job(s)", flush=True)
    return completed
