"""Canonical, exhaustive hashing of :class:`~repro.config.SimConfig` trees.

The experiment layer memoizes simulation runs keyed by their configuration.
A hand-picked field tuple silently goes stale the moment anyone adds a
config knob (the pre-runtime cache missed ``core.fetch_width``,
``core.data_stall_cycles``, L1-I geometry, predictor table sizes, ...), so
two different configs could return each other's results. Instead, the key
here is derived mechanically by walking the *entire* frozen dataclass tree:
every field of every nested params object contributes, and a newly added
field changes the hash automatically.

The canonical form is a nested JSON document (dataclasses become objects
tagged with their class name, tuples become arrays) serialized with sorted
keys and hashed with SHA-256. Hashes are therefore stable across processes
and Python versions for a given config — suitable for on-disk cache keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def canonicalize(obj: object) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical structure.

    Supports the value types that appear in config trees: frozen dataclasses,
    tuples/lists, dicts with string-sortable keys, and JSON scalars. Anything
    else is a hard error — silently stringifying unknown objects could make
    two distinct configs hash equal.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, object] = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, (tuple, list)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for config hashing"
    )


def config_digest(config: object) -> str:
    """Hex SHA-256 of the full canonicalized config tree."""
    payload = json.dumps(
        canonicalize(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scale_token(workload_scale: float) -> str:
    """Canonical text form of a workload scale factor (cache-key safe)."""
    return repr(float(workload_scale))
