"""The one blessed atomic-write idiom for every durable-state file.

Four subsystems persist crash-safe state — the result cache, the broker
queue, shard compaction, and the workload trace store — and before this
module each carried its own copy of the same temp-file + ``os.replace``
block. Four copies meant four places for the idiom to rot independently
(one had fsync, three did not; one cleaned up with ``unlink`` on a
different exception class...). The idiom now lives here, once:

* the temp file is created **in the destination directory** (``mkstemp``
  with ``dir=``), so the final ``os.replace`` is same-filesystem and
  therefore atomic — a reader observes either the old complete file or
  the new complete file, never a prefix;
* the destination's parent directories are created on demand;
* on *any* failure — including ``KeyboardInterrupt`` and the SIGKILL-style
  fault points the crash tests inject — the temp file is unlinked, so an
  interrupted writer leaves at most an ignorable ``*.tmp`` behind;
* ``fsync=True`` additionally flushes file contents to stable storage
  before the rename, for writers (shard compaction) that delete their
  source data afterwards.

``reprolint`` rule ``RPL002`` enforces that cache/queue/shard/trace-store
code performs durable writes only through these helpers, so a fifth copy
— or a raw ``open(path, "w")`` that can tear — cannot creep back in.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator


@contextmanager
def atomic_writer(
    path: Path,
    mode: str = "w",
    fsync: bool = False,
) -> Iterator[IO[Any]]:
    """Yield a handle whose contents atomically replace ``path`` on exit.

    ``mode`` is ``"w"`` (text) or ``"wb"`` (binary). Propagates ``OSError``
    (read-only directory, full disk) to the caller — cache-style writers
    that degrade to "no caching" catch it around this call.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise


def atomic_write_json(path: Path, record: dict, fsync: bool = False) -> None:
    """Atomically write one compact JSON record to ``path``."""
    with atomic_writer(path, fsync=fsync) as fh:
        json.dump(record, fh, separators=(",", ":"))
