"""Result-cache compaction: fold loose records into per-workload shards.

A dense sweep leaves the result cache as thousands of tiny one-record
JSON files that ``scan_cache``/``prune`` must stat one by one. Compaction
folds every completed loose record of a workload into one append-only
shard file::

    <cache_dir>/<SCHEMA_TAG>/<workload>/shard.jsonl

Each shard line is one record with exactly the flat-cache JSON shape
(schema tag, workload, scale token, full config digest, mechanism, raw
counters), keyed inside the shard by ``(scale, config_digest)`` — the
same content-addressed key the loose filenames encode. The
:class:`~repro.runtime.cache.ResultCache` reads transparently from the
shard *and* any loose records written since the last compaction, so old
caches keep working and compaction can run at any time.

Crash safety: a shard is only ever produced by **atomic rewrite** — the
merged record set is written to a temp file, fsynced, and ``os.replace``d
over the shard, so no reader can observe a torn shard. Loose records are
unlinked only *after* the rename; a compactor killed at any instant
therefore loses nothing (the worst case is records present in both the
shard and loose form, which the next compaction folds again — they are
content-addressed, so both copies are identical). A shard line that does
not parse (foreign truncation, disk corruption) is skipped by every
reader, never an error.

Only the running code's current :data:`~repro.runtime.cache.SCHEMA_TAG`
directory is compacted — records under stale tags are unreachable and are
``prune``'s business, not worth rewriting.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

try:  # POSIX-only; without it compaction simply runs unserialized
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from .atomicio import atomic_writer
from .cache import SCHEMA_TAG
from .faultpoints import maybe_fault

#: Shard filename inside a workload directory. Deliberately *not* matching
#: the loose ``*.json`` pattern, so file-count scans never double-count.
SHARD_NAME = "shard.jsonl"

#: Key of one record inside a shard: (scale token, full config digest).
ShardKey = tuple[str, str]


def shard_path(workload_dir: Path) -> Path:
    return workload_dir / SHARD_NAME


def read_shard(path: Path) -> dict[ShardKey, dict]:
    """Every valid record in the shard, keyed by (scale, digest).

    A missing shard is empty. A line that is not a complete JSON record
    carrying both key fields — a torn write from a crashed foreign tool,
    corruption — is skipped, so torn data can never surface as a result.
    Later lines win on a duplicate key (append-order semantics), though
    duplicates are content-addressed and therefore identical in practice.
    """
    entries: dict[ShardKey, dict] = {}
    try:
        with path.open("r") as fh:
            for line in fh:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                scale = record.get("scale")
                digest = record.get("config_digest")
                if isinstance(scale, str) and isinstance(digest, str):
                    entries[(scale, digest)] = record
    except OSError:
        return {}
    return entries


def write_shard(path: Path, records: list[dict]) -> None:
    """Atomically (re)write a shard: temp file + fsync + ``os.replace``.

    The live shard is untouched until the final rename, so a crash at any
    point — including mid-write, which the ``shard-entry`` fault point
    simulates — leaves only an ignorable ``*.tmp`` file behind.
    """
    with atomic_writer(path, fsync=True) as fh:
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            maybe_fault("shard-entry")


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadCompaction:
    """What one workload directory's compaction did (or would do)."""

    workload: str
    #: Loose records folded into the shard this pass.
    loose_folded: int
    #: Loose files skipped because they did not parse as records.
    skipped: int
    #: Shard entries before / after the fold.
    entries_before: int
    entries_after: int
    #: On-disk file count before / after (loose + shard + unparseable).
    files_before: int
    files_after: int
    #: True when another compactor held this workload's lock and the
    #: fold was skipped (nothing was read or written).
    skipped_locked: bool = False


def _parse_loose(path: Path) -> dict | None:
    """A loose record, or ``None`` for anything that is not one."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict):
        return None
    if not isinstance(record.get("scale"), str):
        return None
    if not isinstance(record.get("config_digest"), str):
        return None
    if not isinstance(record.get("raw"), dict):
        return None
    return record


def compact_workload(workload_dir: Path, dry_run: bool = False) -> WorkloadCompaction:
    """Fold one workload directory's loose records into its shard.

    Concurrent compactors are serialized per workload through an advisory
    ``flock`` on ``.compact.lock`` — without it, a compactor holding a
    pre-rewrite shard snapshot could replace a peer's fresh shard and
    lose the records whose loose copies the peer already unlinked. The
    kernel releases the lock when the holder dies (SIGKILL included), so
    a crashed compactor can never wedge the directory; a contended
    workload is simply skipped this pass (``skipped_locked``). Dry runs
    are read-only and take no lock.
    """
    if not dry_run and fcntl is not None:
        lock_fd = os.open(workload_dir / ".compact.lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(lock_fd)
            return WorkloadCompaction(
                workload=workload_dir.name,
                loose_folded=0,
                skipped=0,
                entries_before=0,
                entries_after=0,
                files_before=0,
                files_after=0,
                skipped_locked=True,
            )
    else:
        lock_fd = None
    try:
        spath = shard_path(workload_dir)
        existing = read_shard(spath)
        shard_exists = spath.is_file()
        loose: dict[ShardKey, dict] = {}
        folded_files: list[Path] = []
        skipped = 0
        for path in sorted(workload_dir.glob("*.json")):
            record = _parse_loose(path)
            if record is None:
                skipped += 1  # not a record; left in place, never deleted
                continue
            loose[(record["scale"], record["config_digest"])] = record
            folded_files.append(path)
        merged = {**existing, **loose}
        files_before = len(folded_files) + skipped + (1 if shard_exists else 0)
        files_after = skipped + (1 if (merged or shard_exists) else 0)
        if loose and not dry_run:
            write_shard(spath, [merged[key] for key in sorted(merged)])
            for path in folded_files:
                path.unlink(missing_ok=True)
        return WorkloadCompaction(
            workload=workload_dir.name,
            loose_folded=len(folded_files),
            skipped=skipped,
            entries_before=len(existing),
            entries_after=len(merged),
            files_before=files_before,
            files_after=files_after,
        )
    finally:
        if lock_fd is not None:
            os.close(lock_fd)  # closing the fd releases the flock


def compact_cache(
    cache_dir: str | os.PathLike, dry_run: bool = False
) -> list[WorkloadCompaction]:
    """Compact every workload under the *current* schema tag.

    Stale-tag records are unreachable by the running code and are
    ``prune``'s to delete, so they are never rewritten. A missing tag
    directory is an empty (already fully compact) cache. Safe to run
    while writers are active: only the exact loose files that were folded
    are removed, and a record written concurrently is simply picked up by
    the next pass. Concurrent *compactors* are serialized per workload
    by an advisory lock (see :func:`compact_workload`).
    """
    tag_dir = Path(cache_dir) / SCHEMA_TAG
    stats: list[WorkloadCompaction] = []
    if not tag_dir.is_dir():
        return stats
    for workload_dir in sorted(p for p in tag_dir.iterdir() if p.is_dir()):
        stats.append(compact_workload(workload_dir, dry_run))
    return stats
