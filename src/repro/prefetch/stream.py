"""Temporal-stream machinery shared by PIF and SHIFT.

Temporal streaming records the sequence of instruction-block accesses of
the retire stream into a circular history buffer, with an index table
mapping a block to its most recent history position. When the observed
retire stream departs from the current replay position, the index is
consulted to re-locate the stream; blocks ahead of the replay pointer are
prefetched (the *lookahead* window).

PIF keeps this metadata in dedicated per-core SRAM (fast but >200 KB);
SHIFT virtualizes it into the LLC, so stream *redirects* pay an LLC round
trip before replay resumes — the timing difference behind Figure 8's
Boomerang-vs-Confluence redirect behaviour.
"""

from __future__ import annotations

from .base import InstructionPrefetcher


class TemporalStreamPrefetcher(InstructionPrefetcher):
    """Retire-stream temporal streaming with an index-located replay pointer."""

    name = "stream"

    #: Bits per history record (block address) and per index entry.
    _HISTORY_RECORD_BITS = 40
    _INDEX_ENTRY_BITS = 40 + 18

    def __init__(
        self,
        history_entries: int = 32768,
        index_entries: int = 8192,
        lookahead: int = 6,
        redirect_delay: int = 0,
    ):
        super().__init__(dedup_window=32)
        if history_entries < 2:
            raise ValueError("history needs at least two records")
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.history_entries = history_entries
        self.index_entries = index_entries
        self.lookahead = lookahead
        #: Extra cycles before prefetches can issue after a stream redirect
        #: (SHIFT's LLC metadata access; 0 for PIF's private SRAM).
        self.redirect_delay = redirect_delay

        self._history: list[int] = []
        self._base = 0  # absolute position of _history[0]
        #: block -> (previous, latest) absolute history positions. Two-deep
        #: so a redirect can replay the *previous* traversal when the latest
        #: occurrence is too close to the recording frontier to have a
        #: future worth replaying.
        self._index: dict[int, tuple[int, int]] = {}
        self._last_recorded: int = -1
        self._replay_pos: int | None = None
        self._emitted_to: int = 0

        self.redirects = 0
        self.in_stream_advances = 0

    # -- recording ------------------------------------------------------------

    def _record(self, block: int) -> None:
        if block == self._last_recorded:
            return
        position = self._base + len(self._history)
        self._history.append(block)
        self._last_recorded = block
        previous = self._index.pop(block, None)
        if previous is None:
            if len(self._index) >= self.index_entries:
                del self._index[next(iter(self._index))]
            self._index[block] = (-1, position)
        else:
            self._index[block] = (previous[1], position)
        # Bound memory: keep at most 2x the modelled capacity, dropping the
        # oldest half (their index entries become stale and are validated on
        # use).
        if len(self._history) > 2 * self.history_entries:
            drop = len(self._history) - self.history_entries
            self._history = self._history[drop:]
            self._base += drop

    def _history_at(self, position: int) -> int | None:
        offset = position - self._base
        if 0 <= offset < len(self._history):
            return self._history[offset]
        return None

    # -- replay ---------------------------------------------------------------

    #: Positions the replay pointer may skip forward to re-synchronize;
    #: models PIF's spatial-region tolerance of small path variation
    #: (an exact-sequence matcher would redirect on every skipped block).
    _SKIP_TOLERANCE = 8

    def on_retired_block(self, block: int, now: int) -> None:
        if block == self._last_recorded:
            return  # consecutive duplicate: same block, nothing new to match
        pos = self._replay_pos
        matched = False
        if pos is not None:
            limit = min(pos + self._SKIP_TOLERANCE, self._base + len(self._history))
            for probe in range(pos, limit):
                if self._history_at(probe) == block:
                    self._replay_pos = probe + 1
                    self.in_stream_advances += 1
                    self._prefetch_window(now)
                    matched = True
                    break
        if not matched:
            occurrences = self._index.get(block)
            target = None
            if occurrences is not None:
                frontier = self._base + len(self._history)
                prev_pos, latest = occurrences
                # Prefer the latest occurrence, but only if enough stream
                # was recorded after it to be worth replaying.
                if frontier - latest >= self.lookahead:
                    target = latest
                elif prev_pos >= self._base:
                    target = prev_pos
                elif latest >= self._base:
                    target = latest
            if target is not None and target >= self._base:
                self._replay_pos = target + 1
                self._emitted_to = self._replay_pos
                self.redirects += 1
                self._prefetch_window(now + self.redirect_delay, redirected=True)
            else:
                self._replay_pos = None
        self._record(block)

    def _prefetch_window(self, ready: int, redirected: bool = False) -> None:
        pos = self._replay_pos
        if pos is None:
            return
        if redirected:
            self._emitted_to = pos
        start = max(pos, self._emitted_to)
        end = pos + self.lookahead
        for position in range(start, end):
            block = self._history_at(position)
            if block is None:
                break
            self._emit(block, ready)
        self._emitted_to = max(self._emitted_to, min(end, self._base + len(self._history)))

    def storage_bits(self) -> int:
        return (
            self.history_entries * self._HISTORY_RECORD_BITS
            + self.index_entries * self._INDEX_ENTRY_BITS
        )


class PIFPrefetcher(TemporalStreamPrefetcher):
    """Proactive Instruction Fetch: private (per-core) stream metadata."""

    name = "pif"

    def __init__(self, history_entries: int = 32768, index_entries: int = 8192,
                 lookahead: int = 6):
        super().__init__(history_entries, index_entries, lookahead, redirect_delay=0)


class SHIFTPrefetcher(TemporalStreamPrefetcher):
    """SHIFT: stream metadata virtualized into the LLC and shared.

    Functionally PIF with two differences modelled here: every stream
    redirect pays the LLC round trip before prefetching resumes, and the
    dedicated storage is charged once per *workload* rather than per core
    (accounted in :mod:`repro.analysis.storage`).
    """

    name = "shift"

    def __init__(self, history_entries: int = 32768, index_entries: int = 8192,
                 lookahead: int = 6, llc_round_trip: int = 30):
        super().__init__(
            history_entries, index_entries, lookahead, redirect_delay=llc_round_trip
        )
