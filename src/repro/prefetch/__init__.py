"""L1-I prefetchers: next-line, DIP, and temporal streamers (PIF/SHIFT)."""

from .base import InstructionPrefetcher
from .dip import DiscontinuityPrefetcher
from .next_line import NextLinePrefetcher
from .stream import PIFPrefetcher, SHIFTPrefetcher, TemporalStreamPrefetcher

__all__ = [
    "DiscontinuityPrefetcher",
    "InstructionPrefetcher",
    "NextLinePrefetcher",
    "PIFPrefetcher",
    "SHIFTPrefetcher",
    "TemporalStreamPrefetcher",
]
