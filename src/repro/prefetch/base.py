"""Event-driven L1-I prefetcher interface.

These prefetchers observe the demand-fetch stream (and, for temporal
streamers, the retire stream) and emit candidate cache blocks; the engine
issues at most one prefetch probe per cycle from the emission queue,
honouring Boomerang's L1-I request priority (demand > BTB-miss probe >
prefetch probe).

FDIP and Boomerang do not use this interface — their prefetching is the
FTQ-scanning prefetch engine inside the core (see ``repro.core.engine``).
"""

from __future__ import annotations

from collections import deque


class InstructionPrefetcher:
    """Base class: event hooks plus a ready-time-ordered emission queue."""

    name = "base"

    #: Re-emission of the same block is suppressed within this many cycles
    #: (roughly one LLC round trip: long enough to cover the in-flight fill,
    #: short enough that recurring blocks can be prefetched again later).
    DEDUP_CYCLES = 32

    def __init__(self, dedup_window: int = 64):
        self._queue: deque[tuple[int, int]] = deque()  # (ready_cycle, block)
        self._recent: dict[int, int] = {}  # block -> last emission cycle
        self._recent_cap = dedup_window

    # -- event hooks (no-ops by default) -------------------------------------

    def on_fetch_block(self, block: int, now: int, prev_block: int, discontinuity: bool) -> None:
        """Demand fetch moved to a new cache block."""

    def on_demand_miss(self, block: int, now: int, prev_block: int, discontinuity: bool) -> None:
        """Demand fetch missed the L1-I (and prefetch buffer)."""

    def on_retired_block(self, block: int, now: int) -> None:
        """A correct-path instruction block retired (temporal streamers)."""

    # -- emission -------------------------------------------------------------

    def _emit(self, block: int, ready: int) -> None:
        """Queue ``block`` for probing at/after ``ready`` (deduplicated).

        Deduplication is time-windowed: a block emitted recently (its fill
        is still in flight or fresh) is suppressed; older emissions do not
        block re-prefetching recurring code.
        """
        last = self._recent.get(block)
        if last is not None and ready - last < self.DEDUP_CYCLES:
            return
        if last is not None:
            del self._recent[block]
        elif len(self._recent) >= self._recent_cap:
            del self._recent[next(iter(self._recent))]
        self._recent[block] = ready
        self._queue.append((ready, block))

    def next_prefetch(self, now: int) -> int | None:
        """Pop the next probe-ready block, or None this cycle."""
        if not self._queue:
            return None
        ready, block = self._queue[0]
        if ready > now:
            return None
        self._queue.popleft()
        return block

    def pending(self) -> int:
        return len(self._queue)

    def storage_bits(self) -> int:
        """Dedicated metadata budget in bits."""
        return 0
