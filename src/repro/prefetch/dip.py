"""Discontinuity Instruction Prefetcher (Spracklen et al., HPCA'05).

Records control-flow discontinuities that caused L1-I misses in a
prediction table: on a miss at block M reached discontinuously from block
P, the table learns P -> M. Later demand accesses to P prefetch M. Paired
(per the paper's methodology, Section V-A) with a next-2-line prefetcher
for the sequential class the table cannot cover.
"""

from __future__ import annotations

from .base import InstructionPrefetcher


class DiscontinuityPrefetcher(InstructionPrefetcher):
    """8K-entry discontinuity table + next-N-line sequential helper."""

    name = "dip"

    #: Bits per table entry: trigger-block tag + target block address.
    _ENTRY_BITS = 2 * 40

    def __init__(self, table_entries: int = 8192, next_line_degree: int = 2):
        super().__init__()
        if table_entries < 1:
            raise ValueError("DIP table needs at least one entry")
        self.table_entries = table_entries
        self.next_line_degree = next_line_degree
        #: LRU map: trigger block -> discontinuous successor block.
        self._table: dict[int, int] = {}
        self.table_hits = 0
        self.table_inserts = 0

    def on_fetch_block(self, block: int, now: int, prev_block: int, discontinuity: bool) -> None:
        target = self._table.get(block)
        if target is not None:
            # LRU touch.
            del self._table[block]
            self._table[block] = target
            self.table_hits += 1
            self._emit(target, now)
        for offset in range(1, self.next_line_degree + 1):
            self._emit(block + offset, now)

    def on_demand_miss(self, block: int, now: int, prev_block: int, discontinuity: bool) -> None:
        if not discontinuity or prev_block < 0:
            return
        if prev_block in self._table:
            del self._table[prev_block]
        elif len(self._table) >= self.table_entries:
            del self._table[next(iter(self._table))]
        self._table[prev_block] = block
        self.table_inserts += 1

    def storage_bits(self) -> int:
        return self.table_entries * self._ENTRY_BITS
