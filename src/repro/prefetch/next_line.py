"""Next-N-line prefetcher.

On every demand access to block B, prefetch B+1..B+N. The paper uses
next-2-line (it beat next-4-line in their setting) both standalone and as
DIP's sequential helper. Covers the dominant *sequential* miss class of
Figure 3 and nothing else.
"""

from __future__ import annotations

from .base import InstructionPrefetcher


class NextLinePrefetcher(InstructionPrefetcher):
    """Prefetch the next ``degree`` sequential blocks on each demand access."""

    name = "next_line"

    def __init__(self, degree: int = 2):
        super().__init__()
        if degree < 1:
            raise ValueError("next-line degree must be >= 1")
        self.degree = degree

    def on_fetch_block(self, block: int, now: int, prev_block: int, discontinuity: bool) -> None:
        for offset in range(1, self.degree + 1):
            self._emit(block + offset, now)

    def storage_bits(self) -> int:
        return 0  # stateless beyond the tiny emission queue
