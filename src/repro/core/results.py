"""Simulation results: raw counters plus the paper's derived metrics."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..workloads.isa import EntryKind

if TYPE_CHECKING:
    from ..branch.btb import BasicBlockBTB, BTBPrefetchBuffer, ConventionalBTB
    from ..frontend.ftq import FetchTargetQueue
    from ..memory.hierarchy import InstructionMemory


def aggregate_stage_counters(
    cycle: int,
    retired: int,
    stages: Iterable,
    btb: BasicBlockBTB | ConventionalBTB,
    btb_buf: BTBPrefetchBuffer,
    ftq: FetchTargetQueue,
    mem: InstructionMemory,
) -> dict[str, float]:
    """Flatten per-stage counter namespaces into the engine's stats dict.

    Stage counters come first (in pipeline order), then the shared
    hardware blocks (BTB, BTB prefetch buffer, FTQ, memory hierarchy).
    The key set matches the pre-stage monolithic engine exactly, so
    experiments, analysis tables and the ``repro.runtime`` cache consume
    the same flat dict they always have.
    """
    counters: dict[str, float] = {
        "cycles": cycle,
        "retired_instrs": retired,
    }
    for stage in stages:
        counters.update(stage.counters())
    counters["btb_lookups"] = btb.lookups
    counters["btb_hits"] = btb.hits
    counters["btb_inserts"] = btb.inserts
    counters["btb_pfb_hits"] = btb_buf.hits
    counters["btb_pfb_inserts"] = btb_buf.inserts
    counters["ftq_pushes"] = ftq.pushed
    counters["ftq_flushes"] = ftq.flushes
    counters.update(mem.counters())
    return counters


@dataclass
class SimulationResult:
    """Counters and derived metrics of one simulation run.

    All counters cover the *measured* region only (post-warmup); the raw
    dict also carries ``warmup_*`` totals for diagnostics.
    """

    workload: str
    mechanism: str
    raw: dict[str, float] = field(default_factory=dict)

    # -- headline metrics -----------------------------------------------------

    @property
    def cycles(self) -> int:
        return int(self.raw.get("cycles", 0))

    @property
    def instructions(self) -> int:
        return int(self.raw.get("retired_instrs", 0))

    @property
    def ipc(self) -> float:
        cycles = self.raw.get("cycles", 0)
        return self.raw.get("retired_instrs", 0) / cycles if cycles else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio vs. a baseline run of the same workload."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    # -- squashes (Figure 7) --------------------------------------------------

    @property
    def squashes_btb(self) -> int:
        return int(self.raw.get("squash_btb", 0))

    @property
    def squashes_mispredict(self) -> int:
        """Direction + target mispredict squashes (Figure 7's other bar)."""
        return int(self.raw.get("squash_cond", 0) + self.raw.get("squash_target", 0))

    @property
    def squashes_total(self) -> int:
        return self.squashes_btb + self.squashes_mispredict

    def per_kilo(self, count: float) -> float:
        instrs = self.raw.get("retired_instrs", 0)
        return 1000.0 * count / instrs if instrs else 0.0

    @property
    def btb_squashes_per_kilo(self) -> float:
        return self.per_kilo(self.squashes_btb)

    @property
    def mispredict_squashes_per_kilo(self) -> float:
        return self.per_kilo(self.squashes_mispredict)

    @property
    def squashes_per_kilo(self) -> float:
        return self.per_kilo(self.squashes_total)

    # -- front-end stalls (Figures 2, 5, 8) ------------------------------------

    @property
    def stall_cycles(self) -> int:
        """Correct-path fetch stall cycles due to L1-I misses."""
        return int(
            self.raw.get("stall_seq", 0)
            + self.raw.get("stall_cond", 0)
            + self.raw.get("stall_uncond", 0)
        )

    def stall_cycles_by_kind(self) -> dict[EntryKind, int]:
        return {
            EntryKind.SEQUENTIAL: int(self.raw.get("stall_seq", 0)),
            EntryKind.CONDITIONAL: int(self.raw.get("stall_cond", 0)),
            EntryKind.UNCONDITIONAL: int(self.raw.get("stall_uncond", 0)),
        }

    def coverage_over(self, baseline: "SimulationResult") -> float:
        """Fraction of the baseline's stall cycles this run eliminated."""
        base = baseline.stall_cycles
        if base <= 0:
            return 0.0
        return max(0.0, 1.0 - self.stall_cycles / base)

    # -- convenience ------------------------------------------------------------

    def summary_line(self) -> str:
        return (
            f"{self.workload:>10s} {self.mechanism:>10s} "
            f"IPC={self.ipc:5.3f} "
            f"squash/KI={self.squashes_per_kilo:6.2f} "
            f"(btb={self.btb_squashes_per_kilo:5.2f}) "
            f"stallcyc={self.stall_cycles}"
        )
