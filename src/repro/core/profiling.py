"""Per-stage cycle/time attribution for both engines (``--profile-stages``).

The sweeps CLI turns the process-wide profiler on
(:func:`enable`), the runtime's job executors consult it
(:func:`active`), and every *stage activation* — one ``tick`` (or, in the
batched engine's fused loop, one gated-in stage call) — is timed with
``perf_counter`` and accumulated per stage name. The resulting table
answers "where do the cycles go": how many cycles each stage actually
acted, and how much wall time those activations cost.

Attribution semantics differ slightly, and meaningfully, per engine:

* the per-cell :class:`~repro.core.engine.FrontEndEngine` calls every
  stage every cycle, so a stage's tick count equals the cycle count and
  its time includes the idle early-outs;
* the batched :class:`~repro.core.batch.BatchedEngine` only calls a stage
  on cycles its gate opens, so tick counts there show how often each
  stage was *live* — exactly the signal that motivates the fused gate
  loop — and the fast-forward oracle appears as its own row.

Profiling never changes simulated results (the wrappers are pure
pass-throughs), but it does add per-call overhead, so wall-clock numbers
from a profiled run are for attribution, not for benchmarking.

The profiler is deliberately in-process state: the CLI forces the serial
backend while profiling, because pool/broker workers would accumulate
into their own processes and the data would never come back.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only (avoid import cycles)
    from ..config import SimConfig
    from ..workloads.workload import Workload
    from .results import SimulationResult

__all__ = [
    "StageProfiler",
    "active",
    "disable",
    "enable",
    "run_profiled_single",
]


class StageProfiler:
    """Accumulates ``(activations, seconds)`` per stage name."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        #: stage name -> [activations, seconds], insertion-ordered.
        self.rows: dict[str, list[float]] = {}

    def wrap(self, name: str, fn: Callable) -> Callable:
        """A pass-through wrapper timing every call of ``fn`` under ``name``.

        Multiple callables may share a name (the batched BPU's predict /
        probe / wrong-path walk entry points all attribute to the BPU
        stage); their counts and times pool into one row.
        """
        row = self.rows.setdefault(name, [0, 0.0])

        def timed(*args):  # type: ignore[no-untyped-def]
            start = perf_counter()
            out = fn(*args)
            row[0] += 1
            row[1] += perf_counter() - start
            return out

        return timed

    def table(self) -> str:
        """The per-stage attribution table the CLI prints."""
        if not self.rows:
            return (
                "[profile-stages: nothing executed — every result was a "
                "cache hit]"
            )
        total = sum(row[1] for row in self.rows.values())
        lines = [
            "per-stage attribution (activations = cycles the stage ran):",
            f"  {'stage':<16s} {'activations':>12s} {'seconds':>9s} {'share':>6s}",
        ]
        for name, (calls, seconds) in self.rows.items():
            share = seconds / total if total else 0.0
            lines.append(
                f"  {name:<16s} {int(calls):>12d} {seconds:>9.3f} {share:>6.1%}"
            )
        lines.append(f"  {'total':<16s} {'':>12s} {total:>9.3f}")
        return "\n".join(lines)


_ACTIVE: StageProfiler | None = None


def enable() -> StageProfiler:
    """Install (and return) a fresh process-wide profiler."""
    global _ACTIVE
    _ACTIVE = StageProfiler()
    return _ACTIVE


def active() -> StageProfiler | None:
    """The installed profiler, or ``None`` when profiling is off."""
    return _ACTIVE


def disable() -> None:
    """Remove the process-wide profiler (timing wrappers stop accruing)."""
    global _ACTIVE
    _ACTIVE = None


class _TimedStage:
    """Stage wrapper for the per-cell engine's generic tick loop.

    ``tick`` is replaced by the profiler's timed wrapper; everything else
    (``counters()``, ``name``, stage-specific attributes read by the
    results aggregation) delegates to the wrapped stage.
    """

    def __init__(self, inner: object, profiler: StageProfiler):
        self._inner = inner
        self.tick = profiler.wrap(inner.name, inner.tick)  # type: ignore[attr-defined]

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)


def run_profiled_single(
    workload: "Workload", config: "SimConfig", profiler: StageProfiler
) -> "SimulationResult":
    """One per-cell simulation with every stage tick timed.

    Bit-identical to ``Simulator(workload, config).run()`` — the wrappers
    forward arguments and state untouched; only wall time is observed.
    """
    from .engine import FrontEndEngine
    from .results import SimulationResult

    engine = FrontEndEngine(workload, config)
    engine.stages = [  # type: ignore[assignment]
        _TimedStage(stage, profiler) for stage in engine.stages
    ]
    raw = engine.run()
    return SimulationResult(
        workload=workload.name, mechanism=config.mechanism, raw=raw
    )
