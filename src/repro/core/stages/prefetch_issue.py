"""Prefetch-issue stage: one L1-I probe per cycle through the priority mux.

The L1-I has one probe port, arbitrated demand-first (paper Fig. 6):
demand fetch > BTB miss probe > prefetch probe. Demand misses are charged
inside :class:`~repro.core.stages.fetch.FetchUnit`; this stage carries the
lower-priority traffic, in two mechanism-specific flavours:

* :class:`FTQScanPrefetchIssue` — the decoupled (FDIP/Boomerang) engine.
  It scans each entry the BPU pushed into the deep FTQ exactly once
  (watermarked against ``ftq.pushed``), expands it into cache blocks,
  dedups against a small recent-probe window and probes one queued block
  per cycle. Boomerang's sequential throttle blocks pre-empt the probe
  port, and an in-flight BTB miss probe occupies it entirely.
* :class:`StreamPrefetchIssue` — the event-driven prefetchers (next-line,
  DIP, PIF, SHIFT, Confluence's SHIFT): ask the prefetcher model for its
  next block and probe it.

The coupled no-prefetch baseline composes neither — its probe port stays
idle.
"""

from __future__ import annotations

from .state import PipelineState, StageContext


class FTQScanPrefetchIssue:
    """FTQ-scanning prefetch engine of the decoupled front ends."""

    name = "prefetch:ftq-scan"

    #: Probes remembered for dedup before re-probing the same block.
    RECENT_WINDOW = 128
    #: Issued-probe prefix length that triggers queue compaction.
    COMPACT_AT = 512

    __slots__ = ("ftq", "_ftq_entries", "_probe", "_scan_mark", "_recent")

    def __init__(self, ctx: StageContext):
        self.ftq = ctx.ftq
        self._ftq_entries = ctx.ftq.entries
        self._probe = ctx.mem.prefetch_probe  # prebound: hot path
        self._scan_mark = 0
        self._recent = {}

    def tick(self, state: PipelineState, cycle: int) -> None:
        # Scan FTQ entries pushed since the last tick into the probe queue,
        # oldest first. The BPU pushes at most one entry per cycle and this
        # stage runs every cycle, so n_new is 0 or 1; the index loop keeps
        # a hypothetical multi-push BPU correct without allocating.
        ftq = self.ftq
        n_new = ftq.pushed - self._scan_mark
        if n_new:
            self._scan_mark = ftq.pushed
            recent = self._recent
            probe_q = state.probe_q
            ftq_entries = self._ftq_entries
            idx = -n_new
            while idx < 0:
                entry = ftq_entries[idx]
                idx += 1
                start = entry[0]
                first = start >> 6
                last = (start + (entry[1] - 1) * 4) >> 6
                for b in range(first, last + 1):
                    if b not in recent:
                        recent[b] = None
                        if len(recent) > self.RECENT_WINDOW:
                            del recent[next(iter(recent))]
                        probe_q.append(b)
        # Issue one probe through the mux.
        throttle_q = state.throttle_q
        if throttle_q:
            self._probe(throttle_q.popleft(), cycle)
        elif state.bmiss is not None:
            pass  # probe port carries the BTB miss probe traffic
        elif state.probe_pos < len(state.probe_q):
            self._probe(state.probe_q[state.probe_pos], cycle)
            state.probe_pos += 1
            if state.probe_pos > self.COMPACT_AT:
                state.probe_q = state.probe_q[state.probe_pos :]
                state.probe_pos = 0

    def counters(self) -> dict[str, int]:
        return {}


class StreamPrefetchIssue:
    """Probe port driven by an event-driven prefetcher model."""

    name = "prefetch:stream"

    __slots__ = ("_next_prefetch", "_probe")

    def __init__(self, ctx: StageContext):
        self._next_prefetch = ctx.prefetcher.next_prefetch  # prebound: hot
        self._probe = ctx.mem.prefetch_probe

    def tick(self, state: PipelineState, cycle: int) -> None:
        block = self._next_prefetch(cycle)
        if block is not None:
            self._probe(block, cycle)

    def counters(self) -> dict[str, int]:
        return {}
