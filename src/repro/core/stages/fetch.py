"""Fetch unit: drain the FTQ head through the L1-I into the decode pipe."""

from __future__ import annotations

from ...branch.btb import BTBEntry
from ...workloads.trace import REC_ENTRY, REC_KIND, REC_NEXT
from .state import (
    CAUSE_NONE,
    CONDK,
    IND_CALL,
    IND_JUMP,
    RET,
    SEQ,
    UNCONDK,
    PipelineState,
    StageContext,
)


class FetchUnit:
    """Fetch up to ``fetch_width`` instructions per cycle from the FTQ head.

    A demand L1-I miss stalls fetch and is charged to the sequential /
    conditional / unconditional class of the block's entry edge
    (Figure 3); wrong-path stall cycles are not charged. While dispatch is
    data-stalled the fetch buffer is full and delivery pauses; the
    BPU/prefetch engine keeps running ahead (that overlap is exactly what
    decoupled prefetching exploits). Cycles where fetch is not the
    bottleneck are not charged as front-end stall cycles.

    Delivering a group whose BPU marked it mis-speculated schedules the
    squash ``resolve_latency`` cycles out; sequential runs past an unknown
    branch insert the decode-discovered entry into the BTB (``learn``).
    """

    name = "fetch"

    __slots__ = (
        "fetch_width",
        "rob_size",
        "decode_latency",
        "resolve_latency",
        "mem",
        "btb",
        "ftq",
        "_ftq_entries",
        "prefetcher",
        "col_entry",
        "col_kind",
        "col_next",
        "cfg_blocks",
        "stall_seq",
        "stall_cond",
        "stall_uncond",
    )

    def __init__(self, ctx: StageContext):
        core = ctx.config.core
        self.fetch_width = core.fetch_width
        self.rob_size = core.rob_size
        self.decode_latency = core.decode_latency
        self.resolve_latency = core.resolve_latency
        self.mem = ctx.mem
        self.btb = ctx.btb
        self.ftq = ctx.ftq
        self._ftq_entries = ctx.ftq.entries
        self.prefetcher = ctx.prefetcher
        columns = ctx.workload.trace.columns
        self.col_entry = columns[REC_ENTRY]
        self.col_kind = columns[REC_KIND]
        self.col_next = columns[REC_NEXT]
        self.cfg_blocks = ctx.workload.cfg.blocks
        self.stall_seq = 0
        self.stall_cond = 0
        self.stall_uncond = 0

    def tick(self, state: PipelineState, cycle: int) -> None:
        if state.dispatch_stall_until > cycle:
            return
        if state.fetch_ready > cycle:
            cls = state.stall_cls
            if cls == SEQ:
                self.stall_seq += 1
            elif cls == CONDK:
                self.stall_cond += 1
            elif cls == UNCONDK:
                self.stall_uncond += 1
            return
        ftq_entries = self._ftq_entries
        if state.cur_entry is None and not ftq_entries:
            return  # nothing fetchable; any future miss re-sets stall_cls
        state.stall_cls = -1
        ftq = self.ftq
        mem = self.mem
        prefetcher = self.prefetcher
        col_entry = self.col_entry
        rob_size = self.rob_size
        rob_instrs = state.rob_instrs
        decode_q = state.decode_q
        decode_instrs = state.decode_instrs
        cur_entry = state.cur_entry
        cur_off = state.cur_off
        last_block = state.last_block
        budget = self.fetch_width
        while budget > 0 and rob_instrs + decode_instrs < rob_size:
            if cur_entry is None:
                if not ftq_entries:
                    break
                cur_entry = ftq.pop()
                cur_off = 0
            start, n_instrs, tidx, wp, cause, learn = cur_entry
            pc = start + cur_off * 4
            block = pc >> 6
            if block != last_block:
                discontinuity = block != last_block + 1
                ready = mem.demand_access(block, cycle)
                if prefetcher is not None:
                    prefetcher.on_fetch_block(block, cycle, last_block, discontinuity)
                    if ready > cycle:
                        prefetcher.on_demand_miss(block, cycle, last_block, discontinuity)
                last_block = block
                if ready > cycle:
                    state.fetch_ready = ready
                    if not wp:
                        if cur_off == 0:
                            ek = col_entry[tidx] if tidx >= 0 else SEQ
                        else:
                            ek = SEQ
                        state.stall_cls = ek
                        if ek == SEQ:
                            self.stall_seq += 1
                        elif ek == CONDK:
                            self.stall_cond += 1
                        else:
                            self.stall_uncond += 1
                    else:
                        state.stall_cls = -1
                    break
            to_boundary = 16 - ((pc >> 2) & 15)
            take = n_instrs - cur_off
            if take > budget:
                take = budget
            if take > to_boundary:
                take = to_boundary
            cur_off += take
            budget -= take
            if cur_off >= n_instrs:
                decode_q.append(
                    (cycle + self.decode_latency, n_instrs, start, wp, cause)
                )
                decode_instrs += n_instrs
                if learn and not wp:
                    kind = self.col_kind[tidx]
                    if kind == IND_JUMP or kind == IND_CALL:
                        tgt = self.col_next[tidx]
                    elif kind == RET:
                        tgt = 0
                    else:
                        tgt = self.cfg_blocks[start].target
                    self.btb.insert(start, BTBEntry(n_instrs, kind, tgt))
                if cause != CAUSE_NONE:
                    state.squash_at = cycle + self.resolve_latency
                cur_entry = None
        state.cur_entry = cur_entry
        state.cur_off = cur_off
        state.last_block = last_block
        state.decode_instrs = decode_instrs

    def counters(self) -> dict[str, int]:
        return {
            "stall_seq": self.stall_seq,
            "stall_cond": self.stall_cond,
            "stall_uncond": self.stall_uncond,
        }
