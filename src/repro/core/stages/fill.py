"""Fill-arrival stage: completed L1-I fills install at the cycle start."""

from __future__ import annotations

from ...frontend.predecode import predecode_block
from .state import PipelineState, StageContext


class FillArrival:
    """Drain this cycle's completed fills into the prefetch buffer / L1-I."""

    name = "fill"

    __slots__ = ("mem", "_drain")

    def __init__(self, ctx: StageContext):
        self.mem = ctx.mem
        self._drain = ctx.mem.drain_arrivals  # prebound: called every cycle

    def tick(self, state: PipelineState, cycle: int) -> None:
        self._drain(cycle)

    def counters(self) -> dict[str, int]:
        return {}


class PredecodeFillArrival(FillArrival):
    """Confluence's fill variant: predecode every arriving block into the BTB.

    The predecoder reads the block's branch facts (kind, size, direct
    target) straight from the instruction bytes — paper Section IV-A's
    metadata-free bulk prefill. The composer substitutes the plain
    :class:`FillArrival` under ``perfect_btb`` (nothing to prefill).
    """

    name = "fill+predecode"

    __slots__ = ("btb", "cfg", "_predecode")

    def __init__(self, ctx: StageContext):
        super().__init__(ctx)
        self.btb = ctx.btb
        self.cfg = ctx.workload.cfg
        # Pure function of (cfg, block); the batched engine rebinds it to
        # a per-workload memo shared across lanes (entries are immutable).
        self._predecode = predecode_block

    def tick(self, state: PipelineState, cycle: int) -> None:
        arrived = self.mem.drain_arrivals(cycle)
        if arrived:
            btb = self.btb
            cfg = self.cfg
            predecode = self._predecode
            for block in arrived:
                for pc, entry in predecode(cfg, block):
                    btb.insert(pc, entry)
