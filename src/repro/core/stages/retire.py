"""Retire unit: drain the ROB head and feed the retire-stream prefetchers."""

from __future__ import annotations

from .state import PipelineState, StageContext


class RetireUnit:
    """Retire up to ``commit_width`` instructions per cycle.

    A wrong-path ROB head blocks retirement until the squash clears it.
    Fully retired blocks are reported to the temporal-stream prefetchers
    (PIF/SHIFT monitor the retire stream, which is why they lag on
    redirects — paper Section III-A). This stage also owns the
    warmup-boundary bookkeeping: the first cycle the retired count crosses
    the warmup threshold it snapshots every counter via the state's
    ``collect_counters`` hook, exactly after retirement and before the
    younger stages of the same cycle run.
    """

    name = "retire"

    __slots__ = ("commit_width", "prefetcher")

    def __init__(self, ctx: StageContext):
        self.commit_width = ctx.config.core.commit_width
        self.prefetcher = ctx.prefetcher

    def tick(self, state: PipelineState, cycle: int) -> None:
        rob = state.rob
        if rob:
            budget = self.commit_width
            prefetcher = self.prefetcher
            while budget > 0 and rob:
                head = rob[0]
                if head[1]:  # wrong-path head cannot retire; wait for squash
                    break
                take = head[0] if head[0] <= budget else budget
                head[0] -= take
                state.rob_instrs -= take
                state.retired += take
                budget -= take
                if head[0] == 0:
                    rob.popleft()
                    if prefetcher is not None:
                        start = head[2]
                        first = start >> 6
                        last = (start + (head[3] - 1) * 4) >> 6
                        for b in range(first, last + 1):
                            prefetcher.on_retired_block(b, cycle)
        if state.warmup_snapshot is None and state.retired >= state.warmup_instrs:
            state.warmup_snapshot = state.collect_counters(cycle)

    def counters(self) -> dict[str, int]:
        return {}
