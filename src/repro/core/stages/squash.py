"""Squash unit: resolve a mis-speculation, flush younger work, redirect."""

from __future__ import annotations

from collections import deque

from .state import CAUSE_BTB, CAUSE_COND, CAUSE_NONE, PipelineState, SQUASH_NEVER, StageContext


class SquashUnit:
    """Fires when the scheduled squash cycle arrives.

    Classifies the cause (BTB miss vs. direction vs. target — Figure 7),
    flushes the FTQ, the wrong-path decode groups and the wrong-path ROB
    tail, restores the RAS to its divergence snapshot, rewinds the BPU to
    the resume record and charges the redirect bubble. The prefetch probe
    FIFOs are wrong-path artifacts and are dropped with the rest.
    """

    name = "squash"

    __slots__ = (
        "ras",
        "ftq",
        "redirect_bubble",
        "squash_btb",
        "squash_cond",
        "squash_target",
    )

    def __init__(self, ctx: StageContext):
        self.ras = ctx.ras
        self.ftq = ctx.ftq
        self.redirect_bubble = ctx.config.core.redirect_bubble
        self.squash_btb = 0
        self.squash_cond = 0
        self.squash_target = 0

    def tick(self, state: PipelineState, cycle: int) -> None:
        if cycle < state.squash_at:
            return
        cause = state.div_cause
        if cause == CAUSE_BTB:
            self.squash_btb += 1
        elif cause == CAUSE_COND:
            self.squash_cond += 1
        else:
            self.squash_target += 1
        # Flush younger (wrong-path) work everywhere.
        self.ftq.flush()
        state.cur_entry = None
        state.cur_off = 0
        state.fetch_ready = 0
        state.stall_cls = -1
        state.last_block = -1
        decode_q = state.decode_q
        if decode_q:
            kept = deque(g for g in decode_q if not g[3])
            state.decode_instrs -= sum(g[1] for g in decode_q) - sum(
                g[1] for g in kept
            )
            state.decode_q = kept
        # Wrong-path tail flush: pop younger entries off the right.
        rob = state.rob
        while rob and rob[-1][1]:
            state.rob_instrs -= rob.pop()[0]
        if state.ras_snapshot is not None:
            self.ras.restore(state.ras_snapshot)
            state.ras_snapshot = None
        state.wrong_path = False
        state.bpu_idx = state.div_resume_idx
        state.div_cause = CAUSE_NONE
        state.squash_at = SQUASH_NEVER
        state.bmiss = None
        state.bpu_stall_until = cycle + self.redirect_bubble
        state.probe_q = []
        state.probe_pos = 0
        state.throttle_q.clear()

    def counters(self) -> dict[str, int]:
        return {
            "squash_btb": self.squash_btb,
            "squash_cond": self.squash_cond,
            "squash_target": self.squash_target,
        }
