"""Shared pipeline state and the stage-construction context.

The cycle engine is a list of stage objects ticking over one mutable
:class:`PipelineState`. The state carries exactly the values that cross
stage boundaries within or across cycles (the FTQ-side fetch cursor, the
decode/ROB queues, the squash schedule, the wrong-path walk position, the
prefetch probe queues). Values that never change after construction —
hardware blocks, the trace, config-derived widths and latencies — are bound
into each stage at composition time instead, which keeps ``tick`` bodies on
locals and the state object small.

Squash causes and the hot-loop integer aliases of the ISA enums live here
so every stage shares one definition.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ...workloads.isa import BranchKind, EntryKind

# Squash causes.
CAUSE_NONE = 0
CAUSE_BTB = 1       #: BTB miss for an eventually-taken branch
CAUSE_COND = 2      #: conditional direction mispredict
CAUSE_TARGET = 3    #: indirect/return target mispredict

#: ``squash_at`` value meaning "no squash scheduled" — larger than any
#: reachable cycle count, so the squash unit's idle path is one compare.
SQUASH_NEVER = 1 << 62

# BranchKind locals (hot-loop comparisons on ints).
COND = int(BranchKind.COND)
JUMP = int(BranchKind.JUMP)
CALL = int(BranchKind.CALL)
RET = int(BranchKind.RET)
IND_JUMP = int(BranchKind.IND_JUMP)
IND_CALL = int(BranchKind.IND_CALL)

SEQ = int(EntryKind.SEQUENTIAL)
CONDK = int(EntryKind.CONDITIONAL)
UNCONDK = int(EntryKind.UNCONDITIONAL)


class StageContext:
    """Everything a stage may bind at construction time.

    Built once per engine by :class:`~repro.core.engine.FrontEndEngine` and
    handed to the mechanism's stage composer
    (:func:`repro.core.mechanisms.compose_stages`). Stages pull out only
    what they touch; unit tests can pass ``None`` for the rest.
    """

    __slots__ = (
        "workload",
        "config",
        "mem",
        "btb",
        "btb_buf",
        "predictor",
        "ras",
        "ftq",
        "prefetcher",
    )

    def __init__(
        self,
        workload: Any = None,
        config: Any = None,
        mem: Any = None,
        btb: Any = None,
        btb_buf: Any = None,
        predictor: Any = None,
        ras: Any = None,
        ftq: Any = None,
        prefetcher: Any = None,
    ):
        self.workload = workload
        self.config = config
        self.mem = mem
        self.btb = btb
        self.btb_buf = btb_buf
        self.predictor = predictor
        self.ras = ras
        self.ftq = ftq
        self.prefetcher = prefetcher


class PipelineState:
    """Mutable inter-stage state of one simulation run.

    Field groups mirror the stage that owns the write side; readers are
    noted where they differ:

    * **BPU** — ``bpu_idx``, ``wrong_path``, ``wp_pc``, ``div_resume_idx``,
      ``div_cause``, ``ras_snapshot``, ``bpu_stall_until``, ``bmiss``
      (Boomerang's in-flight BTB-miss probe, consumed by the prefetch mux).
    * **Fetch** — ``cur_entry``/``cur_off`` (FTQ head cursor),
      ``fetch_ready`` (L1-I miss stall), ``stall_cls`` (charged entry
      class), ``last_block``.
    * **Decode/ROB** — ``decode_q`` of ``(ready, n, start, wp, cause)``
      groups, ``rob`` of ``[n_left, wp, start, n_instrs]``, the occupancy
      mirrors, ``squash_at`` (scheduled by fetch when a mis-speculated
      group delivers) and ``dispatch_stall_until`` (data-side LSQ
      backpressure).
    * **Prefetch** — ``probe_q``/``probe_pos`` (FTQ-scan probe FIFO) and
      ``throttle_q`` (Boomerang's sequential throttle blocks); the squash
      unit clears all three.
    * **Retire** — ``retired`` plus the warmup bookkeeping
      (``warmup_instrs``, ``warmup_snapshot``, taken via
      ``collect_counters(cycle)`` the engine installs).
    """

    __slots__ = (
        # BPU
        "bpu_idx",
        "wrong_path",
        "wp_pc",
        "div_resume_idx",
        "div_cause",
        "ras_snapshot",
        "bpu_stall_until",
        "bmiss",
        # fetch
        "cur_entry",
        "cur_off",
        "fetch_ready",
        "stall_cls",
        "last_block",
        # decode / ROB
        "decode_q",
        "decode_instrs",
        "rob",
        "rob_instrs",
        "squash_at",
        "dispatch_stall_until",
        # prefetch
        "probe_q",
        "probe_pos",
        "throttle_q",
        # retire / warmup
        "retired",
        "warmup_instrs",
        "warmup_snapshot",
        "collect_counters",
    )

    def __init__(
        self,
        warmup_instrs: int = 0,
        collect_counters: Callable[[int], dict] | None = None,
    ):
        self.bpu_idx = 0
        self.wrong_path = False
        self.wp_pc = 0
        self.div_resume_idx = -1
        self.div_cause = CAUSE_NONE
        self.ras_snapshot = None
        self.bpu_stall_until = 0
        self.bmiss = None

        self.cur_entry = None
        self.cur_off = 0
        self.fetch_ready = 0
        self.stall_cls = -1
        self.last_block = -1

        self.decode_q = deque()
        self.decode_instrs = 0
        self.rob = deque()
        self.rob_instrs = 0
        self.squash_at = SQUASH_NEVER
        self.dispatch_stall_until = 0

        self.probe_q = []
        self.probe_pos = 0
        self.throttle_q = deque()

        self.retired = 0
        self.warmup_instrs = warmup_instrs
        self.warmup_snapshot = None
        self.collect_counters = collect_counters
