"""Branch-prediction unit stage: one basic-block prediction per cycle.

Two variants differ only in how a BTB miss resolves:

* :class:`BPUStage` — the conventional front end: an unknown branch
  degrades into a sequential run; if the branch was actually taken the run
  is a wrong path that squashes at resolve time (cause: BTB miss).
* :class:`MissProbeBPU` — Boomerang (paper Section IV-B): the BPU stalls,
  probes the L1-I/prefetch-buffer for the missing block and predecodes the
  branch out of the returned bytes, walking sequential blocks when the
  block holds no branch at/after the miss address. Detected misses may
  also throttle a few next-line blocks into the prefetch engine.

Wrong paths are really walked over the static CFG so wrong-path prefetches
genuinely fill (or pollute) the prefetch buffer.
"""

from __future__ import annotations

import bisect

from ...branch.btb import BTBEntry
from ...branch.predictors.base import OraclePredictor
from ...errors import SimulationError
from ...frontend.predecode import boomerang_fill
from ...workloads.trace import (
    REC_KIND,
    REC_NEXT,
    REC_NINSTR,
    REC_START,
    REC_TAKEN,
)
from .state import (
    CALL,
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_NONE,
    CAUSE_TARGET,
    COND,
    IND_CALL,
    IND_JUMP,
    RET,
    PipelineState,
    StageContext,
)

#: Sequential blocks the predecode walk may visit before declaring a bug.
_PREDECODE_WALK_CAP = 16


class BPUStage:
    """Correct-path prediction from the trace + wrong-path CFG walk."""

    name = "bpu"

    __slots__ = (
        "col_start",
        "col_ninstr",
        "col_kind",
        "col_taken",
        "col_next",
        "n_records",
        "cfg_blocks",
        "_starts_sorted",
        "btb",
        "predictor",
        "ras",
        "ftq",
        "_ftq_entries",
        "_ftq_depth",
        "perfect_btb",
        "oracle",
        "btb_miss_lookups",
        "btb_miss_stall_cycles",
        "wp_cycles",
    )

    def __init__(self, ctx: StageContext):
        wl = ctx.workload
        # Hot per-prediction reads go straight at the trace columns: one
        # C-level array index per field, no per-record tuple.
        columns = wl.trace.columns
        self.col_start = columns[REC_START]
        self.col_ninstr = columns[REC_NINSTR]
        self.col_kind = columns[REC_KIND]
        self.col_taken = columns[REC_TAKEN]
        self.col_next = columns[REC_NEXT]
        self.n_records = len(wl.trace)
        self.cfg_blocks = wl.cfg.blocks
        self._starts_sorted = sorted(wl.cfg.blocks)
        self.btb = ctx.btb
        self.predictor = ctx.predictor
        self.ras = ctx.ras
        self.ftq = ctx.ftq
        self._ftq_entries = ctx.ftq.entries
        self._ftq_depth = ctx.ftq.depth
        self.perfect_btb = ctx.config.perfect_btb
        self.oracle = isinstance(ctx.predictor, OraclePredictor)
        self.btb_miss_lookups = 0
        self.btb_miss_stall_cycles = 0
        self.wp_cycles = 0

    # ------------------------------------------------------------------ tick

    def tick(self, state: PipelineState, cycle: int) -> None:
        if state.wrong_path:
            self.wp_cycles += 1
        if cycle < state.bpu_stall_until:
            return
        if state.bmiss is not None:
            self._advance_miss_probe(state, cycle)
            return
        if len(self._ftq_entries) >= self._ftq_depth:
            return
        if not state.wrong_path and state.bpu_idx < self.n_records:
            self._predict(state, cycle)
        elif state.wrong_path:
            self._walk_wrong_path(state, cycle)

    def _advance_miss_probe(self, state: PipelineState, cycle: int) -> None:
        """Only the miss-probe variant ever arms ``state.bmiss``."""
        raise SimulationError(
            f"BTB miss probe armed without a miss-probe BPU at {state.bmiss[0]:#x}"
        )

    # --------------------------------------------------------- correct path

    def _predict(self, state: PipelineState, cycle: int) -> None:
        idx = state.bpu_idx
        start = self.col_start[idx]
        n_instrs = self.col_ninstr[idx]
        kind = self.col_kind[idx]
        taken = self.col_taken[idx]
        actual_next = self.col_next[idx]
        blk = self.cfg_blocks[start]
        branch_pc = start + (n_instrs - 1) * 4

        if self.perfect_btb:
            entry = True
        else:
            entry = self._lookup(start)

        if entry is None:
            self.btb_miss_lookups += 1
            self._handle_miss(state, cycle, start, n_instrs, taken)
            return

        cause = CAUSE_NONE
        mispredicted_next = -1
        ras = self.ras
        if kind == COND:
            predictor = self.predictor
            if self.oracle:
                predictor.stage(bool(taken))
            pred = predictor.predict(branch_pc)
            predictor.update(branch_pc, bool(taken))
            if pred != bool(taken):
                cause = CAUSE_COND
                mispredicted_next = blk.target if pred else start + n_instrs * 4
        elif kind == CALL:
            ras.push(start + n_instrs * 4)
        elif kind == RET:
            pred_target = ras.pop()
            if pred_target != actual_next:
                cause = CAUSE_TARGET
                mispredicted_next = (
                    pred_target if pred_target is not None else start + n_instrs * 4
                )
        elif kind == IND_CALL or kind == IND_JUMP:
            if self.perfect_btb:
                pred_target = actual_next
            else:
                pred_target = entry[2]
            if kind == IND_CALL:
                ras.push(start + n_instrs * 4)
            if pred_target != actual_next:
                cause = CAUSE_TARGET
                mispredicted_next = pred_target
                self.btb.update_target(start, actual_next)
        # JUMP: static target, always correct.

        if cause != CAUSE_NONE:
            state.wrong_path = True
            state.wp_pc = mispredicted_next
            state.div_resume_idx = state.bpu_idx + 1
            state.div_cause = cause
            state.ras_snapshot = ras.snapshot()
        else:
            state.bpu_idx += 1
        self.ftq.push(
            (
                start,
                n_instrs,
                state.bpu_idx - (1 if cause == CAUSE_NONE else 0),
                False,
                cause,
                False,
            )
        )

    # ----------------------------------------------------------- wrong path

    def _walk_wrong_path(self, state: PipelineState, cycle: int) -> None:
        # Speculative walk over the static CFG.
        wp_pc = state.wp_pc
        blk = self.cfg_blocks.get(wp_pc)
        if blk is None:
            nxt = self._next_block_start(wp_pc)
            if nxt is None or nxt - wp_pc > 64:
                n_i = 4
            else:
                n_i = max(1, (nxt - wp_pc) >> 2)
            self.ftq.push((wp_pc, n_i, -1, True, CAUSE_NONE, False))
            state.wp_pc = wp_pc + n_i * 4
            return
        start = blk.start
        n_i = blk.n_instrs
        if self.perfect_btb:
            entry = BTBEntry(n_i, int(blk.kind), blk.target)
        else:
            entry = self._lookup(start)
        if entry is None:
            if self._handle_wp_miss(state, cycle, start):
                return  # BPU stalled on a miss probe; nothing enters the FTQ
            state.wp_pc = start + n_i * 4  # straight line
        else:
            kind = entry[1]
            if kind == COND:
                pred = self.predictor.predict(start + (entry[0] - 1) * 4)
                state.wp_pc = entry[2] if pred else start + entry[0] * 4
            elif kind == CALL or kind == IND_CALL:
                self.ras.push(start + entry[0] * 4)
                state.wp_pc = entry[2]
            elif kind == RET:
                popped = self.ras.pop()
                state.wp_pc = popped if popped is not None else start + entry[0] * 4
            else:
                state.wp_pc = entry[2]
        self.ftq.push((start, n_i, -1, True, CAUSE_NONE, False))

    # ----------------------------------------------------- overridable bits

    def _lookup(self, start: int) -> BTBEntry | None:
        """BTB lookup for one basic-block start."""
        return self.btb.lookup(start)

    def _handle_miss(
        self,
        state: PipelineState,
        cycle: int,
        start: int,
        n_instrs: int,
        taken: int,
    ) -> None:
        """Correct-path BTB miss: degrade into a sequential run.

        If the unknown branch was actually taken the run diverges and the
        eventual squash is charged to the BTB (Figure 7's dominant cause).
        """
        if taken:
            cause = CAUSE_BTB
            state.wrong_path = True
            state.wp_pc = start + n_instrs * 4
            state.div_resume_idx = state.bpu_idx + 1
            state.div_cause = CAUSE_BTB
            state.ras_snapshot = self.ras.snapshot()
        else:
            cause = CAUSE_NONE
            state.bpu_idx += 1
        self.ftq.push(
            (
                start,
                n_instrs,
                state.bpu_idx - (0 if taken else 1),
                False,
                cause,
                True,
            )
        )

    def _handle_wp_miss(self, state: PipelineState, cycle: int, start: int) -> bool:
        """Wrong-path BTB miss; returns True if the BPU stalled on it."""
        return False

    # -------------------------------------------------------------- helpers

    def _next_block_start(self, pc: int) -> int | None:
        """Smallest basic-block start strictly greater than ``pc``."""
        starts = self._starts_sorted
        idx = bisect.bisect_right(starts, pc)
        if idx < len(starts):
            return starts[idx]
        return None

    def counters(self) -> dict[str, int]:
        return {
            "btb_miss_lookups": self.btb_miss_lookups,
            "btb_miss_stall_cycles": self.btb_miss_stall_cycles,
            "wp_cycles": self.wp_cycles,
        }


class MissProbeBPU(BPUStage):
    """Boomerang BPU: BTB misses stall and resolve via an L1-I probe."""

    name = "bpu+miss-probe"

    __slots__ = (
        "mem",
        "btb_buf",
        "cfg",
        "predecode_latency",
        "throttle_blocks",
        "_fill",
    )

    def __init__(self, ctx: StageContext):
        super().__init__(ctx)
        self.mem = ctx.mem
        self.btb_buf = ctx.btb_buf
        self.cfg = ctx.workload.cfg
        self.predecode_latency = ctx.config.core.predecode_latency
        self.throttle_blocks = ctx.config.prefetch.throttle_blocks
        # Predecode entry point; a pure function of (cfg, block, miss_pc),
        # so the batched engine rebinds it to a per-workload memo shared
        # across lanes (BTBEntry is immutable — sharing results is safe).
        self._fill = boomerang_fill

    def _advance_miss_probe(self, state: PipelineState, cycle: int) -> None:
        """One cycle of the in-flight BTB-miss probe state machine."""
        self.btb_miss_stall_cycles += 1
        bmiss = state.bmiss
        if cycle < bmiss[2]:
            return
        # Predecode the fetched block; walk forward if the block holds no
        # branch at/after the miss address.
        filled, others = self._fill(self.cfg, bmiss[1], bmiss[0])
        btb_buf = self.btb_buf
        for pc_o, entry_o in others:
            btb_buf.insert(pc_o, entry_o)
        if filled is not None:
            self.btb.insert(filled[0], filled[1])
            state.bmiss = None
        else:
            bmiss[3] += 1
            if bmiss[3] > _PREDECODE_WALK_CAP:
                raise SimulationError(
                    f"predecode walk exceeded cap at {bmiss[0]:#x}"
                )
            bmiss[1] += 1
            bmiss[2] = self.mem.data_ready(bmiss[1], cycle) + self.predecode_latency

    def _lookup(self, start: int) -> BTBEntry | None:
        """BTB lookup that promotes a staged prefetch-buffer entry on miss."""
        entry = self.btb.lookup(start)
        if entry is None:
            staged = self.btb_buf.take(start)
            if staged is not None:
                self.btb.insert(start, staged)
                return staged
        return entry

    def _set_bmiss(self, state: PipelineState, cycle: int, start: int) -> None:
        """Stall the BPU on a miss probe for the block holding ``start``."""
        block = start >> 6
        mem = self.mem
        resident = mem.is_resident_or_inflight(block)
        state.bmiss = [
            start,
            block,
            mem.data_ready(block, cycle) + self.predecode_latency,
            0,
        ]
        throttle = self.throttle_blocks
        if throttle and not resident:
            throttle_q = state.throttle_q
            for off in range(1, throttle + 1):
                throttle_q.append(block + off)

    def _handle_miss(
        self,
        state: PipelineState,
        cycle: int,
        start: int,
        n_instrs: int,
        taken: int,
    ) -> None:
        self._set_bmiss(state, cycle, start)

    def _handle_wp_miss(self, state: PipelineState, cycle: int, start: int) -> bool:
        self._set_bmiss(state, cycle, start)
        return True
