"""Composable pipeline stages of the cycle-level front-end engine.

One simulated cycle is a fixed-order pass over a mechanism's stage list
(paper Fig. 6, top to bottom)::

    FillArrival      completed L1-I fills install (Confluence variant
                     predecodes arriving blocks into the BTB)
    SquashUnit       resolved mis-speculation flushes + redirects
    RetireUnit       ROB head drains; retire stream feeds PIF/SHIFT
    DecodeDispatch   decoded groups enter the ROB (LSQ backpressure)
    FetchUnit        FTQ head drains through the L1-I (demand port)
    BPUStage         one basic-block prediction (Boomerang variant
                     resolves BTB misses via predecode miss probes)
    *PrefetchIssue   one L1-I probe via the priority mux (FTQ-scan or
                     event-driven stream prefetcher; absent for "none")

Every stage implements ``tick(state, cycle)`` over the shared
:class:`PipelineState` and reports its own counters through
``counters()``; :func:`repro.core.results.aggregate_stage_counters`
flattens them into the engine's stats dict. Mechanisms are assembled from
these parts by :func:`repro.core.mechanisms.compose_stages` — adding a
mechanism is a composition exercise, not engine surgery (see
``docs/architecture.md``).
"""

from .bpu import BPUStage, MissProbeBPU
from .decode import DecodeDispatch
from .fetch import FetchUnit
from .fill import FillArrival, PredecodeFillArrival
from .prefetch_issue import FTQScanPrefetchIssue, StreamPrefetchIssue
from .retire import RetireUnit
from .squash import SquashUnit
from .state import (
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_NONE,
    CAUSE_TARGET,
    PipelineState,
    StageContext,
)

__all__ = [
    "BPUStage",
    "CAUSE_BTB",
    "CAUSE_COND",
    "CAUSE_NONE",
    "CAUSE_TARGET",
    "DecodeDispatch",
    "FTQScanPrefetchIssue",
    "FetchUnit",
    "FillArrival",
    "MissProbeBPU",
    "PipelineState",
    "PredecodeFillArrival",
    "RetireUnit",
    "SquashUnit",
    "StageContext",
    "StreamPrefetchIssue",
]
