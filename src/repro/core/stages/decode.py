"""Decode→ROB dispatch stage."""

from __future__ import annotations

from .state import PipelineState, StageContext


class DecodeDispatch:
    """Move decoded groups whose latency elapsed into the ROB.

    Dispatch stalls on "data-heavy" blocks model LSQ backpressure: the
    window behind a missing load fills and dispatch halts (deterministic
    per block start address). This is what keeps the ROB shallow on server
    workloads, so front-end bubbles and squash refills expose their full
    latency.
    """

    name = "decode"

    __slots__ = ("rob_size", "data_stall_threshold", "data_stall_cycles")

    def __init__(self, ctx: StageContext):
        core = ctx.config.core
        self.rob_size = core.rob_size
        self.data_stall_threshold = int(core.data_stall_bb_frac * 4096)
        self.data_stall_cycles = core.data_stall_cycles

    def tick(self, state: PipelineState, cycle: int) -> None:
        if state.dispatch_stall_until > cycle:
            return
        decode_q = state.decode_q
        rob_size = self.rob_size
        threshold = self.data_stall_threshold
        while decode_q and decode_q[0][0] <= cycle:
            group = decode_q[0]
            if state.rob_instrs + group[1] > rob_size:
                break
            decode_q.popleft()
            state.decode_instrs -= group[1]
            start = group[2]
            state.rob.append([group[1], group[3], start, group[1]])
            state.rob_instrs += group[1]
            if ((start >> 2) * 2654435761 & 0xFFF) < threshold:
                state.dispatch_stall_until = cycle + self.data_stall_cycles
                break

    def counters(self) -> dict[str, int]:
        return {}
