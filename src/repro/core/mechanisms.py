"""Registry of control-flow delivery mechanisms (paper Section V-A).

Each mechanism maps to a set of engine traits:

============  =========  ==============  ============  ===========
mechanism     decoupled  l1 prefetcher   BTB prefill   FTQ depth
============  =========  ==============  ============  ===========
none          no         —               —             shallow
next_line     no         next-2-line     —             shallow
dip           no         DIP + NL2       —             shallow
fdip          yes        FTQ scan        —             32
pif           no         PIF             —             shallow
shift         no         SHIFT           —             shallow
confluence    no         SHIFT           predecode     shallow, 16K BTB
boomerang     yes        FTQ scan        miss-probe    32
============  =========  ==============  ============  ===========

"Decoupled" means the FDIP-style deep FTQ whose entries drive the prefetch
engine; the shallow FTQ used otherwise models an ordinary coupled fetch
buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SimConfig
from ..errors import UnknownMechanismError
from ..prefetch import (
    DiscontinuityPrefetcher,
    InstructionPrefetcher,
    NextLinePrefetcher,
    PIFPrefetcher,
    SHIFTPrefetcher,
)

#: Paper order for the main comparison figures (7, 8, 9).
MECHANISMS: tuple[str, ...] = (
    "none",
    "next_line",
    "dip",
    "fdip",
    "pif",
    "shift",
    "confluence",
    "boomerang",
)

#: The subset plotted in Figures 7-9 (plus the no-prefetch baseline).
FIGURE_MECHANISMS: tuple[str, ...] = (
    "next_line",
    "dip",
    "fdip",
    "shift",
    "confluence",
    "boomerang",
)

#: FTQ depth modelling a conventional (coupled) fetch buffer.
SHALLOW_FTQ_DEPTH = 4


@dataclass(frozen=True)
class MechanismTraits:
    """Engine-facing description of one mechanism."""

    name: str
    #: FDIP-style decoupled front end (deep FTQ + FTQ-scanning prefetch).
    decoupled: bool
    #: Demand/retire-stream prefetcher kind, if any.
    prefetcher: str | None
    #: BTB prefill style: None, "boomerang" (miss probes) or "confluence"
    #: (predecode every arriving block).
    btb_prefill: str | None


_TRAITS: dict[str, MechanismTraits] = {
    "none": MechanismTraits("none", False, None, None),
    "next_line": MechanismTraits("next_line", False, "next_line", None),
    "dip": MechanismTraits("dip", False, "dip", None),
    "fdip": MechanismTraits("fdip", True, None, None),
    "pif": MechanismTraits("pif", False, "pif", None),
    "shift": MechanismTraits("shift", False, "shift", None),
    "confluence": MechanismTraits("confluence", False, "shift", "confluence"),
    "boomerang": MechanismTraits("boomerang", True, None, "boomerang"),
}


def traits_for(mechanism: str) -> MechanismTraits:
    """Traits of ``mechanism``; raises for unknown names."""
    try:
        return _TRAITS[mechanism]
    except KeyError:
        raise UnknownMechanismError(mechanism, MECHANISMS) from None


def make_config(mechanism: str = "none", base: SimConfig | None = None, **overrides) -> SimConfig:
    """Build a :class:`SimConfig` for ``mechanism``.

    Applies the paper's per-mechanism defaults (Confluence's 16K-entry BTB
    upper bound, shallow FTQ for coupled front ends) on top of ``base``,
    then any keyword overrides (passed to ``dataclasses.replace``).
    """
    traits = traits_for(mechanism)
    cfg = base if base is not None else SimConfig()
    cfg = replace(cfg, mechanism=mechanism)
    if mechanism == "confluence" and "btb" not in overrides:
        cfg = cfg.with_btb_entries(cfg.prefetch.confluence_btb_entries)
    if not traits.decoupled and "core" not in overrides:
        core = replace(cfg.core, ftq_depth=SHALLOW_FTQ_DEPTH)
        cfg = replace(cfg, core=core)
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg


def build_prefetcher(config: SimConfig, llc_round_trip: int) -> InstructionPrefetcher | None:
    """Instantiate the demand/retire-stream prefetcher for ``config``."""
    traits = traits_for(config.mechanism)
    pf = config.prefetch
    if traits.prefetcher is None:
        return None
    if traits.prefetcher == "next_line":
        return NextLinePrefetcher(degree=pf.next_line_degree)
    if traits.prefetcher == "dip":
        return DiscontinuityPrefetcher(
            table_entries=pf.dip_table_entries,
            next_line_degree=pf.next_line_degree,
        )
    if traits.prefetcher == "pif":
        return PIFPrefetcher(
            history_entries=pf.stream_history_entries,
            index_entries=pf.stream_index_entries,
            lookahead=pf.stream_lookahead,
        )
    if traits.prefetcher == "shift":
        return SHIFTPrefetcher(
            history_entries=pf.stream_history_entries,
            index_entries=pf.stream_index_entries,
            lookahead=pf.stream_lookahead,
            llc_round_trip=llc_round_trip,
        )
    raise UnknownMechanismError(traits.prefetcher, MECHANISMS)
