"""Mechanism registry and stage composer (paper Section V-A).

A mechanism is a *composition* of pipeline stages from
:mod:`repro.core.stages`: every mechanism shares the squash / retire /
decode / fetch spine and differs only in its fill, BPU and prefetch-issue
parts. :func:`compose_stages` assembles the per-cycle stage list the
engine ticks; see ``docs/architecture.md`` for the full mechanism → stage
composition table and the recipe for adding a new mechanism.

Coarse per-mechanism traits (decoupled? which prefetcher model? which BTB
prefill style?) remain queryable via :func:`traits_for`; they parameterize
both the composition below and the per-mechanism config defaults
(:func:`make_config` — Confluence's 16K-entry BTB upper bound, the shallow
FTQ modelling an ordinary coupled fetch buffer for non-decoupled front
ends).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..config import SimConfig
from ..errors import UnknownMechanismError
from ..prefetch import (
    DiscontinuityPrefetcher,
    InstructionPrefetcher,
    NextLinePrefetcher,
    PIFPrefetcher,
    SHIFTPrefetcher,
)
from .stages import (
    BPUStage,
    DecodeDispatch,
    FTQScanPrefetchIssue,
    FetchUnit,
    FillArrival,
    MissProbeBPU,
    PredecodeFillArrival,
    RetireUnit,
    SquashUnit,
    StageContext,
    StreamPrefetchIssue,
)

#: Paper order for the main comparison figures (7, 8, 9).
MECHANISMS: tuple[str, ...] = (
    "none",
    "next_line",
    "dip",
    "fdip",
    "pif",
    "shift",
    "confluence",
    "boomerang",
)

#: The subset plotted in Figures 7-9 (plus the no-prefetch baseline).
FIGURE_MECHANISMS: tuple[str, ...] = (
    "next_line",
    "dip",
    "fdip",
    "shift",
    "confluence",
    "boomerang",
)

#: FTQ depth modelling a conventional (coupled) fetch buffer.
SHALLOW_FTQ_DEPTH = 4


@dataclass(frozen=True)
class MechanismTraits:
    """Engine-facing description of one mechanism."""

    name: str
    #: FDIP-style decoupled front end (deep FTQ + FTQ-scanning prefetch).
    decoupled: bool
    #: Demand/retire-stream prefetcher kind, if any.
    prefetcher: str | None
    #: BTB prefill style: None, "boomerang" (miss probes) or "confluence"
    #: (predecode every arriving block).
    btb_prefill: str | None


_TRAITS: dict[str, MechanismTraits] = {
    "none": MechanismTraits("none", False, None, None),
    "next_line": MechanismTraits("next_line", False, "next_line", None),
    "dip": MechanismTraits("dip", False, "dip", None),
    "fdip": MechanismTraits("fdip", True, None, None),
    "pif": MechanismTraits("pif", False, "pif", None),
    "shift": MechanismTraits("shift", False, "shift", None),
    "confluence": MechanismTraits("confluence", False, "shift", "confluence"),
    "boomerang": MechanismTraits("boomerang", True, None, "boomerang"),
}


def traits_for(mechanism: str) -> MechanismTraits:
    """Traits of ``mechanism``; raises for unknown names."""
    try:
        return _TRAITS[mechanism]
    except KeyError:
        raise UnknownMechanismError(mechanism, MECHANISMS) from None


def make_config(mechanism: str = "none", base: SimConfig | None = None, **overrides) -> SimConfig:
    """Build a :class:`SimConfig` for ``mechanism``.

    Applies the paper's per-mechanism defaults (Confluence's 16K-entry BTB
    upper bound, shallow FTQ for coupled front ends) on top of ``base``,
    then any keyword overrides (passed to ``dataclasses.replace``).
    """
    traits = traits_for(mechanism)
    cfg = base if base is not None else SimConfig()
    cfg = replace(cfg, mechanism=mechanism)
    if mechanism == "confluence" and "btb" not in overrides:
        cfg = cfg.with_btb_entries(cfg.prefetch.confluence_btb_entries)
    if not traits.decoupled and "core" not in overrides:
        core = replace(cfg.core, ftq_depth=SHALLOW_FTQ_DEPTH)
        cfg = replace(cfg, core=core)
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg


def build_prefetcher(config: SimConfig, llc_round_trip: int) -> InstructionPrefetcher | None:
    """Instantiate the demand/retire-stream prefetcher for ``config``."""
    traits = traits_for(config.mechanism)
    pf = config.prefetch
    if traits.prefetcher is None:
        return None
    if traits.prefetcher == "next_line":
        return NextLinePrefetcher(degree=pf.next_line_degree)
    if traits.prefetcher == "dip":
        return DiscontinuityPrefetcher(
            table_entries=pf.dip_table_entries,
            next_line_degree=pf.next_line_degree,
        )
    if traits.prefetcher == "pif":
        return PIFPrefetcher(
            history_entries=pf.stream_history_entries,
            index_entries=pf.stream_index_entries,
            lookahead=pf.stream_lookahead,
        )
    if traits.prefetcher == "shift":
        return SHIFTPrefetcher(
            history_entries=pf.stream_history_entries,
            index_entries=pf.stream_index_entries,
            lookahead=pf.stream_lookahead,
            llc_round_trip=llc_round_trip,
        )
    raise UnknownMechanismError(traits.prefetcher, MECHANISMS)


# ---------------------------------------------------------------------------
# Stage composition
# ---------------------------------------------------------------------------


def _spine(ctx: StageContext) -> tuple:
    """The squash/retire/decode/fetch core every mechanism shares."""
    return (SquashUnit(ctx), RetireUnit(ctx), DecodeDispatch(ctx), FetchUnit(ctx))


def _fill(ctx: StageContext) -> FillArrival:
    """Plain fill arrivals (no BTB prefill on fill)."""
    return FillArrival(ctx)


def _predecode_fill(ctx: StageContext) -> FillArrival:
    """Confluence's predecode-on-fill; plain under a perfect BTB."""
    if ctx.config.perfect_btb:
        return FillArrival(ctx)
    return PredecodeFillArrival(ctx)


def _compose_coupled(ctx: StageContext) -> tuple:
    """Coupled front end: optional stream prefetcher, conventional BPU."""
    stages = _fill(ctx), *_spine(ctx), BPUStage(ctx)
    if ctx.prefetcher is not None:
        stages += (StreamPrefetchIssue(ctx),)
    return stages


def _compose_fdip(ctx: StageContext) -> tuple:
    """Decoupled front end: deep FTQ scanned by the prefetch engine."""
    return _fill(ctx), *_spine(ctx), BPUStage(ctx), FTQScanPrefetchIssue(ctx)


def _compose_confluence(ctx: StageContext) -> tuple:
    """SHIFT stream prefetch + bulk BTB prefill on every fill arrival."""
    return _predecode_fill(ctx), *_spine(ctx), BPUStage(ctx), StreamPrefetchIssue(ctx)


def _compose_boomerang(ctx: StageContext) -> tuple:
    """FDIP's decoupled engine + BTB-miss-probe BPU (the paper's design)."""
    return _fill(ctx), *_spine(ctx), MissProbeBPU(ctx), FTQScanPrefetchIssue(ctx)


#: mechanism name -> stage-list factory; the composition table in code.
STAGE_COMPOSERS: dict[str, Callable[[StageContext], tuple]] = {
    "none": _compose_coupled,
    "next_line": _compose_coupled,
    "dip": _compose_coupled,
    "fdip": _compose_fdip,
    "pif": _compose_coupled,
    "shift": _compose_coupled,
    "confluence": _compose_confluence,
    "boomerang": _compose_boomerang,
}


def compose_stages(ctx: StageContext) -> tuple:
    """Assemble the per-cycle stage list for ``ctx.config.mechanism``."""
    try:
        composer = STAGE_COMPOSERS[ctx.config.mechanism]
    except KeyError:
        raise UnknownMechanismError(ctx.config.mechanism, MECHANISMS) from None
    return composer(ctx)
