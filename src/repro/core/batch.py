"""Batched grid execution: many configs simulated over one shared trace.

Dense sweep grids (8 LLC latencies x 5 BTB sizes x mechanisms, Figure 5's
`dense-latency-btb`) re-simulate the *same* workload trace once per cell.
The trace itself — the flat columnar arrays and the static CFG — is
config-independent and already shared (one :class:`~repro.workloads
.workload.Workload` object), but each per-cell engine still walks every
cycle of it, and most of those cycles are provably dead time: fetch
parked on an L1-I miss, the BPU sitting out a BTB-miss probe, the whole
front end draining a squash shadow.

:class:`BatchedEngine` simulates N configurations (*lanes*) of one
workload in a single pass with three levers:

* **shared config-independent walk state** — all lanes read the same
  trace columns and CFG, share one sorted block-start table, and share a
  per-workload predecode memo (:class:`_SharedPredecode`): Boomerang's
  BTB-miss fill and Confluence's fill-time block predecode are pure
  functions of ``(cfg, block, pc)``, so the first lane to predecode a
  block computes it for all of them (entries are immutable named tuples).
* **a fused gate loop** — instead of calling every stage's ``tick`` every
  cycle, the lane loop inlines each tick's own early-out guard (squash
  not due, ROB empty, decode head not ready, FTQ empty, BPU stalled …)
  and only *calls* the stages that can act this cycle. A gated-off tick
  is a provable no-op, so this is pure overhead removal: most cycles
  most stages do nothing, and a Python comparison is ~an order of
  magnitude cheaper than a bound-method call that immediately returns.
  The two counters idle ticks *do* maintain (wrong-path cycles, fetch
  stall-class cycles) are accrued inline.
* **event-skip fast-forward** (:class:`_FastForward`) — after each live
  cycle a lane proves, stage by stage, that nothing can happen at
  ``cycle + 1``, computes the earliest cycle anything *can* happen (fill
  arrival, squash, stall expiry, prefetch-ready, dispatch-stall expiry)
  and jumps there, bulk-accruing the per-cycle counters the skipped
  ticks would have incremented (wrong-path cycles, BTB-miss stall
  cycles, fetch stall cycles by entry class). Waking *early* is always
  safe — the live loop just proves inactivity again — so every bound is
  conservative.

Per-config state stays per-lane: BTB content is timing-dependent (LRU,
wrong-path pollution) and the conditional predictor's update sequence is
BTB-dependent (misses skip the update), so lanes own full private
hardware blocks and tick the exact PR 2 stage objects. That is what
makes the mode **golden-equivalent**: every lane's stats dict is
bit-identical to a fresh :class:`~repro.core.engine.FrontEndEngine` run
of the same (workload, config) — pinned by ``tests/test_batch.py``
against all 8 mechanisms.

The runtime dispatches whole same-workload groups here as
:class:`~repro.runtime.runner.BatchJob` units when ``--batch`` /
``REPRO_BATCH`` is on; results fan back into the per-cell result cache
under unchanged per-cell config digests.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..branch.predictors.tage import TagePredictor
from ..config import SimConfig
from ..errors import SimulationError
from ..frontend.predecode import boomerang_fill, predecode_block
from ..workloads.workload import Workload
from .engine import _CYCLE_CAP_FACTOR, FrontEndEngine
from .profiling import StageProfiler
from .results import aggregate_stage_counters
from .stages import PipelineState
from .stages.bpu import BPUStage, MissProbeBPU
from .stages.decode import DecodeDispatch
from .stages.fetch import FetchUnit
from .stages.fill import FillArrival, PredecodeFillArrival
from .stages.prefetch_issue import FTQScanPrefetchIssue, StreamPrefetchIssue
from .stages.retire import RetireUnit
from .stages.squash import SquashUnit
from .stages.state import CONDK, SEQ, UNCONDK

__all__ = ["BatchedEngine"]


class _SharedPredecode:
    """Per-workload memo for the pure predecode functions.

    ``boomerang_fill`` and ``predecode_block`` depend only on the static
    CFG and the probed address — never on timing or per-config state —
    and return immutable :class:`~repro.branch.btb.BTBEntry` values that
    consumers only iterate. One lane's work therefore serves every lane
    of the batch (and every repeat probe within a lane).
    """

    __slots__ = ("_fill_memo", "_block_memo")

    def __init__(self) -> None:
        self._fill_memo: dict = {}
        self._block_memo: dict = {}

    def fill(self, cfg, block, miss_pc):
        """Memoized :func:`~repro.frontend.predecode.boomerang_fill`."""
        key = (block, miss_pc)
        hit = self._fill_memo.get(key)
        if hit is None:
            hit = boomerang_fill(cfg, block, miss_pc)
            self._fill_memo[key] = hit
        return hit

    def predecode(self, cfg, block):
        """Memoized :func:`~repro.frontend.predecode.predecode_block`."""
        hit = self._block_memo.get(block)
        if hit is None:
            hit = predecode_block(cfg, block)
            self._block_memo[block] = hit
        return hit


#: Distinct-from-any-prediction sentinel for the memo's miss path.
_MISS = object()


class _TagePredictMemo:
    """Memoizing facade over a lane's TAGE predictor (batched lanes only).

    ``TagePredictor.predict`` is pure between state changes: the tables
    and the global history mutate only inside ``update``. Wrong-path
    walks probe the same loop blocks dozens of times within one squash
    episode with zero intervening updates, so memoizing predictions until
    the next update removes most of that repeated table walking — and it
    is bit-identical, because an unchanged predictor state must return an
    unchanged prediction. The inner predictor's predict-cache handshake
    with ``update`` is unaffected: on a memo hit the inner ``update``
    re-derives its working set itself, which is exactly the computation
    the memo skipped.
    """

    __slots__ = ("_inner", "_memo")

    def __init__(self, inner: TagePredictor):
        self._inner = inner
        self._memo: dict = {}

    def predict(self, pc: int) -> bool:
        pred = self._memo.get(pc, _MISS)
        if pred is _MISS:
            pred = self._inner.predict(pc)
            self._memo[pc] = pred
        return pred

    def update(self, pc: int, taken: bool) -> None:
        self._memo.clear()
        self._inner.update(pc, taken)


class _FastForward:
    """Event-skip oracle for one lane's pipeline.

    ``advance(state, cycle, cycle_cap)`` is called after a completed live
    cycle. It first checks whether any stage can *act* at ``cycle + 1``
    (exactly mirroring each stage's tick guards); if one can, it returns
    ``cycle`` unchanged and the loop runs the next cycle live. Otherwise
    it computes the earliest wake cycle from the pending-event bounds,
    bulk-accrues the counters the skipped idle ticks would have
    incremented, and returns ``wake - 1`` so the loop's ``cycle += 1``
    resumes live exactly at the wake cycle.

    Soundness notes (why skipped cycles are provably no-ops):

    * Only the BPU arms squashes/misses, only fetch pops the FTQ or
      requests fills, only decode dispatches, only retire retires — and
      each is gated by the exact conditions re-checked here; none of the
      gating state changes during a window by construction.
    * ``rob_instrs + decode_instrs`` is invariant under decode dispatch,
      so a fetch blocked on ROB occupancy stays blocked until a retire
      (live) or a squash (bounded) changes it.
    * The warmup snapshot fires during the retire tick of the cycle the
      threshold is crossed, so it can never be pending after a completed
      cycle.
    * The prefetch-scan watermark is caught up after every live cycle
      (the scan stage runs after the BPU), and stream prefetchers only
      emit from fetch/retire hooks — both live-only.
    """

    __slots__ = (
        "bpu",
        "fetch",
        "arrivals",
        "ftq_entries",
        "ftq_depth",
        "n_records",
        "rob_size",
        "has_ftq_scan",
        "pf_queue",
        "skipped_cycles",
        "fast_forwards",
    )

    def __init__(self, engine: FrontEndEngine):
        bpu = None
        fetch = None
        has_ftq_scan = False
        pf_queue = None
        for stage in engine.stages:
            if isinstance(stage, BPUStage):
                bpu = stage
            elif isinstance(stage, FetchUnit):
                fetch = stage
            elif isinstance(stage, FTQScanPrefetchIssue):
                has_ftq_scan = True
            elif isinstance(stage, StreamPrefetchIssue):
                pf_queue = engine.prefetcher._queue
        if bpu is None or fetch is None:
            raise SimulationError(
                "batched fast-forward needs a BPU and a fetch stage in the "
                "composition"
            )
        self.bpu = bpu
        self.fetch = fetch
        self.arrivals = engine.mem._arrivals  # fill-arrival heap (read-only)
        self.ftq_entries = engine.ftq.entries
        self.ftq_depth = engine.ftq.depth
        self.n_records = bpu.n_records
        self.rob_size = fetch.rob_size
        self.has_ftq_scan = has_ftq_scan
        self.pf_queue = pf_queue
        self.skipped_cycles = 0
        self.fast_forwards = 0

    def advance(self, state: PipelineState, cycle: int, cycle_cap: int) -> int:
        nxt = cycle + 1

        # ---- can any stage act at nxt? (mirror of each tick's guards) ----
        rob = state.rob
        if rob and not rob[0][1]:
            return cycle  # retire drains a correct-path ROB head
        dsu = state.dispatch_stall_until
        rob_size = self.rob_size
        decode_q = state.decode_q
        if (
            decode_q
            and dsu <= nxt
            and decode_q[0][0] <= nxt
            and state.rob_instrs + decode_q[0][1] <= rob_size
        ):
            return cycle  # decode dispatches its head group
        ftq_entries = self.ftq_entries
        fetchable = state.cur_entry is not None or bool(ftq_entries)
        if (
            dsu <= nxt
            and state.fetch_ready <= nxt
            and fetchable
            and state.rob_instrs + state.decode_instrs < rob_size
        ):
            return cycle  # fetch drains the FTQ head
        bsu = state.bpu_stall_until
        bmiss = state.bmiss
        if (
            bmiss is None
            and bsu <= nxt
            and len(ftq_entries) < self.ftq_depth
            and (state.wrong_path or state.bpu_idx < self.n_records)
        ):
            return cycle  # BPU predicts / walks the wrong path
        if self.has_ftq_scan:
            if state.throttle_q:
                return cycle  # throttle block pre-empts the probe port
            if bmiss is None and state.probe_pos < len(state.probe_q):
                return cycle  # prefetch engine issues a queued probe
        pf_queue = self.pf_queue
        if pf_queue is not None and pf_queue and pf_queue[0][0] <= nxt:
            return cycle  # stream prefetcher has a probe-ready block

        # ---- nothing can: earliest cycle anything becomes possible ----
        wake = state.squash_at
        arrivals = self.arrivals
        if arrivals:
            head = arrivals[0][0]
            if head < wake:
                wake = head
        if cycle < dsu < wake:
            wake = dsu
        fr = state.fetch_ready
        if cycle < fr < wake:
            wake = fr
        if decode_q and state.rob_instrs + decode_q[0][1] <= rob_size:
            head = decode_q[0][0]
            if head < wake:
                wake = head
        if bmiss is not None:
            bound = bmiss[2] if bmiss[2] > bsu else bsu
            if bound < wake:
                wake = bound
        elif cycle < bsu < wake:
            wake = bsu
        if pf_queue is not None and pf_queue:
            head = pf_queue[0][0]
            if head < wake:
                wake = head

        last = wake - 1
        if last > cycle_cap:
            # A fully-dead pipeline (or a wake beyond the budget) jumps to
            # the cap; the live loop then raises the same livelock error
            # at cap + 1 that the per-cell engine would reach by walking.
            last = cycle_cap
        if last <= cycle:
            return cycle
        window = last - cycle
        self.skipped_cycles += window
        self.fast_forwards += 1

        # ---- bulk-accrue what the skipped idle ticks would have counted ----
        bpu = self.bpu
        if state.wrong_path:
            bpu.wp_cycles += window  # counted before every other BPU guard
        if bmiss is not None:
            # The probe state machine charges one stall cycle per tick it
            # runs (cycle >= bpu_stall_until), resolving only at the wake.
            lo = bsu if bsu > nxt else nxt
            if lo <= last:
                bpu.btb_miss_stall_cycles += last - lo + 1
        if dsu <= cycle:
            if fr > cycle:
                # Fetch charges the recorded entry class every stalled
                # cycle (wrong-path stalls record no class and charge
                # nothing, matching the live tick).
                cls = state.stall_cls
                fetch = self.fetch
                if cls == SEQ:
                    fetch.stall_seq += window
                elif cls == CONDK:
                    fetch.stall_cond += window
                elif cls == UNCONDK:
                    fetch.stall_uncond += window
            elif fetchable:
                # ROB/decode full: the live tick's only effect is clearing
                # the stall class before bailing out of the drain loop.
                state.stall_cls = -1
        return last


class BatchedEngine:
    """Simulate N configurations of one workload in a single trace pass.

    Lanes are full per-config engines (see the module docstring for why
    per-config state cannot be shared bit-identically); the batch shares
    the workload, the sorted block-start table and the predecode memo,
    and every lane runs under the event-skip fast-forward. ``run()``
    returns one stats dict per config, in config order, each bit-identical
    to ``FrontEndEngine(workload, config).run()``.
    """

    def __init__(
        self,
        workload: Workload,
        configs: Iterable[SimConfig],
        profiler: StageProfiler | None = None,
    ):
        self.workload = workload
        self.configs = tuple(configs)
        if not self.configs:
            raise ValueError("BatchedEngine needs at least one config")
        #: Optional ``--profile-stages`` collector: every gated-in stage
        #: call (and the fast-forward oracle) is timed when set.
        self.profiler = profiler
        self.lanes = [FrontEndEngine(workload, cfg) for cfg in self.configs]

        shared = _SharedPredecode()
        shared_starts = None
        for lane in self.lanes:
            for stage in lane.stages:
                if isinstance(stage, BPUStage):
                    if shared_starts is None:
                        shared_starts = stage._starts_sorted
                    else:
                        stage._starts_sorted = shared_starts
                    if isinstance(stage, MissProbeBPU):
                        stage._fill = shared.fill
                    if isinstance(stage.predictor, TagePredictor):
                        stage.predictor = _TagePredictMemo(stage.predictor)
                elif isinstance(stage, PredecodeFillArrival):
                    stage._predecode = shared.predecode

        #: Fast-forward telemetry, aggregated over lanes by ``run()``.
        self.live_cycles = 0
        self.skipped_cycles = 0
        self.fast_forwards = 0

    def run(self, max_instructions: int | None = None) -> list[dict[str, float]]:
        """Run every lane; one stats dict per config, in config order."""
        return [self._run_lane(lane, max_instructions) for lane in self.lanes]

    # ------------------------------------------------------------------ lane

    def _run_lane(
        self, lane: FrontEndEngine, max_instructions: int | None
    ) -> dict[str, float]:
        """One lane's run loop: fused gates + fast-forward.

        Stage *effects* replicate ``FrontEndEngine.run`` exactly — same
        state construction, same per-cycle stage order, same cycle cap and
        livelock error, same drain break, same warmup-subtracted stats —
        but each stage's tick is called only when its own early-out guard
        (inlined here) says it can act this cycle. Each gate is copied
        from the head of the corresponding tick, so a gated-off call is a
        no-op by that stage's own code; the two counters idle ticks do
        maintain (BPU wrong-path cycles, fetch stall-class cycles) are
        accrued inline on the gated paths that own them.
        """
        wl = self.workload
        n_records = len(wl.trace)
        total_instrs = wl.trace.n_instrs
        if max_instructions is not None:
            total_instrs = min(total_instrs, max_instructions)
        warmup_instrs = min(wl.warmup_instrs, total_instrs // 2)

        stages = lane.stages
        mem = lane.mem
        ftq = lane.ftq

        # The fused loop hard-codes the composition spine every mechanism
        # shares (mechanisms.compose_stages): fill, squash, retire, decode,
        # fetch, BPU, then at most one prefetch-issue stage. Refuse clearly
        # if a future composition breaks that shape.
        tail_ok = len(stages) == 6 or (
            len(stages) == 7
            and isinstance(stages[6], FTQScanPrefetchIssue | StreamPrefetchIssue)
        )
        if not (
            tail_ok
            and isinstance(stages[0], FillArrival)
            and isinstance(stages[1], SquashUnit)
            and isinstance(stages[2], RetireUnit)
            and isinstance(stages[3], DecodeDispatch)
            and isinstance(stages[4], FetchUnit)
            and isinstance(stages[5], BPUStage)
        ):
            raise SimulationError(
                f"batched mode does not understand the stage composition of "
                f"{lane.config.mechanism!r} — run it per-cell"
            )
        fill_tick = stages[0].tick
        squash_tick = stages[1].tick
        retire_tick = stages[2].tick
        decode_tick = stages[3].tick
        fetch = stages[4]
        fetch_tick = fetch.tick
        bpu = stages[5]
        bpu_probe = bpu._advance_miss_probe
        bpu_predict = bpu._predict
        bpu_walk = bpu._walk_wrong_path
        scan = scan_tick = stream_tick = pf_queue = None
        if len(stages) == 7:
            if isinstance(stages[6], FTQScanPrefetchIssue):
                scan = stages[6]
                scan_tick = scan.tick
            else:
                stream_tick = stages[6].tick
                pf_queue = lane.prefetcher._queue

        profiler = self.profiler
        if profiler is not None:
            # Timing wrappers are pure pass-throughs: results stay
            # bit-identical; every gated-in call attributes to its stage.
            fill_tick = profiler.wrap(stages[0].name, fill_tick)
            squash_tick = profiler.wrap(stages[1].name, squash_tick)
            retire_tick = profiler.wrap(stages[2].name, retire_tick)
            decode_tick = profiler.wrap(stages[3].name, decode_tick)
            fetch_tick = profiler.wrap(fetch.name, fetch_tick)
            bpu_probe = profiler.wrap(bpu.name, bpu_probe)
            bpu_predict = profiler.wrap(bpu.name, bpu_predict)
            bpu_walk = profiler.wrap(bpu.name, bpu_walk)
            if scan_tick is not None:
                scan_tick = profiler.wrap(scan.name, scan_tick)
            if stream_tick is not None:
                stream_tick = profiler.wrap(stages[6].name, stream_tick)

        def collect(cycle: int) -> dict[str, float]:
            return aggregate_stage_counters(
                cycle, state.retired, stages, lane.btb, lane.btb_pf_buffer, ftq, mem
            )

        state = PipelineState(warmup_instrs=warmup_instrs, collect_counters=collect)

        cycle = 0
        cycle_cap = _CYCLE_CAP_FACTOR * max(total_instrs, 1)
        ff = _FastForward(lane)
        advance = ff.advance
        if profiler is not None:
            advance = profiler.wrap("fast-forward", advance)
        live = 0

        # Loop-stable objects (never rebound by any stage; deques mutate in
        # place, the squash flush uses clear()).
        arrivals = mem._arrivals
        ftq_entries = ftq.entries
        ftq_depth = ftq.depth
        rob = state.rob
        rob_size = fetch.rob_size

        while state.retired < total_instrs:
            cycle += 1
            if cycle > cycle_cap:
                raise SimulationError(
                    f"cycle cap exceeded ({cycle} cycles, {state.retired}/"
                    f"{total_instrs} instructions) — engine livelock for "
                    f"{lane.config.mechanism}"
                )
            live += 1

            # 1. fill arrivals — due iff the earliest scheduled fill is ready.
            if arrivals and arrivals[0][0] <= cycle:
                fill_tick(state, cycle)
            # 2. squash — due iff the scheduled squash cycle arrived.
            if state.squash_at <= cycle:
                squash_tick(state, cycle)
            # 3. retire — ROB work, or the pending warmup-boundary snapshot
            #    (which only ever becomes due inside a retiring tick, except
            #    for a zero-instruction warmup at the very first cycle).
            if rob:
                retire_tick(state, cycle)
            elif state.warmup_snapshot is None and state.retired >= warmup_instrs:
                retire_tick(state, cycle)
            # 4+5. decode dispatch, then fetch; both sit behind the dispatch
            #      data-stall, re-read after decode (it may arm a new one).
            dsu = state.dispatch_stall_until
            if dsu <= cycle:
                decode_q = state.decode_q
                if (
                    decode_q
                    and decode_q[0][0] <= cycle
                    and state.rob_instrs + decode_q[0][1] <= rob_size
                ):
                    decode_tick(state, cycle)
                    dsu = state.dispatch_stall_until
                if dsu <= cycle:
                    if state.fetch_ready > cycle:
                        cls = state.stall_cls
                        if cls == SEQ:
                            fetch.stall_seq += 1
                        elif cls == CONDK:
                            fetch.stall_cond += 1
                        elif cls == UNCONDK:
                            fetch.stall_uncond += 1
                    elif state.cur_entry is not None or ftq_entries:
                        if state.rob_instrs + state.decode_instrs < rob_size:
                            fetch_tick(state, cycle)
                        else:
                            state.stall_cls = -1  # tick's only effect when full
            # 6. BPU — wrong-path cycles accrue before every other guard.
            wrong = state.wrong_path
            if wrong:
                bpu.wp_cycles += 1
            bpu_idle = True
            if state.bpu_stall_until <= cycle:
                if state.bmiss is not None:
                    bpu_probe(state, cycle)
                    # A still-pending probe is skippable stall time; a
                    # resolved one frees the BPU to act next cycle.
                    bpu_idle = state.bmiss is not None
                elif len(ftq_entries) < ftq_depth:
                    if not wrong and state.bpu_idx < n_records:
                        bpu_predict(state, cycle)
                        bpu_idle = False
                    elif wrong:
                        bpu_walk(state, cycle)
                        bpu_idle = False
            # 7. prefetch issue — new FTQ pushes to scan, or the probe mux
            #    has traffic (throttle blocks / queued probes / ready stream).
            if scan is not None:
                if (
                    ftq.pushed != scan._scan_mark
                    or state.throttle_q
                    or (state.bmiss is None and state.probe_pos < len(state.probe_q))
                ):
                    scan_tick(state, cycle)
            elif pf_queue is not None and pf_queue and pf_queue[0][0] <= cycle:
                stream_tick(state, cycle)

            # End-of-trace drain: if the BPU has consumed the whole trace and
            # everything younger has drained, stop (counts remaining retire).
            if (
                state.bpu_idx >= n_records
                and not state.wrong_path
                and not ftq_entries
                and state.cur_entry is None
                and not state.decode_q
                and not rob
            ):
                break

            # Fast-forward attempt, pre-gated on the two dominant rejects:
            # a BPU that just acted can almost always act again, and a
            # retiring ROB head keeps the cycle live. Skipping an attempt
            # is always safe — advance is purely an optimization.
            if bpu_idle and (not rob or rob[0][1]):
                cycle = advance(state, cycle, cycle_cap)

        final = collect(cycle)
        base = state.warmup_snapshot or {k: 0 for k in final}
        stats = {k: final[k] - base.get(k, 0) for k in final}
        stats["warmup_instrs"] = float(base.get("retired_instrs", 0))
        stats["warmup_cycles"] = float(base.get("cycles", 0))
        stats["total_cycles"] = float(cycle)
        stats["llc_round_trip"] = float(mem.llc_round_trip)

        self.live_cycles += live
        self.skipped_cycles += ff.skipped_cycles
        self.fast_forwards += ff.fast_forwards
        return stats
