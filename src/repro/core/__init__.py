"""Core simulation: the cycle-level engine, stage composer and API."""

from .engine import (
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_NONE,
    CAUSE_TARGET,
    FrontEndEngine,
)
from .mechanisms import (
    FIGURE_MECHANISMS,
    MECHANISMS,
    STAGE_COMPOSERS,
    MechanismTraits,
    build_prefetcher,
    compose_stages,
    make_config,
    traits_for,
)
from .results import SimulationResult, aggregate_stage_counters
from .simulator import Simulator, run_mechanism
from .stages import PipelineState, StageContext

__all__ = [
    "CAUSE_BTB",
    "CAUSE_COND",
    "CAUSE_NONE",
    "CAUSE_TARGET",
    "FIGURE_MECHANISMS",
    "FrontEndEngine",
    "MECHANISMS",
    "MechanismTraits",
    "PipelineState",
    "STAGE_COMPOSERS",
    "SimulationResult",
    "Simulator",
    "StageContext",
    "aggregate_stage_counters",
    "build_prefetcher",
    "compose_stages",
    "make_config",
    "run_mechanism",
    "traits_for",
]
