"""Core simulation: the cycle-level engine, mechanism registry and API."""

from .engine import (
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_NONE,
    CAUSE_TARGET,
    FrontEndEngine,
)
from .mechanisms import (
    FIGURE_MECHANISMS,
    MECHANISMS,
    MechanismTraits,
    build_prefetcher,
    make_config,
    traits_for,
)
from .results import SimulationResult
from .simulator import Simulator, run_mechanism

__all__ = [
    "CAUSE_BTB",
    "CAUSE_COND",
    "CAUSE_NONE",
    "CAUSE_TARGET",
    "FIGURE_MECHANISMS",
    "FrontEndEngine",
    "MECHANISMS",
    "MechanismTraits",
    "SimulationResult",
    "Simulator",
    "build_prefetcher",
    "make_config",
    "run_mechanism",
    "traits_for",
]
