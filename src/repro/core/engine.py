"""Cycle-level decoupled front-end engine.

This is the simulator behind every experiment: a trace-driven, cycle-by-
cycle model of the paper's core (Table I) specialized per mechanism by
:mod:`repro.core.mechanisms`. One cycle executes, in order:

1. **fill arrivals** — completed L1-I fills install (prefetch buffer or
   L1-I); Confluence predecodes arriving blocks into its BTB;
2. **squash** — a resolved mispredicted/missed branch flushes the FTQ,
   decode pipe and wrong-path ROB tail, restores the RAS and redirects the
   BPU (cause recorded: BTB miss vs. direction vs. target — Figure 7);
3. **retire** — up to commit-width instructions leave the ROB; retiring
   blocks feed temporal-stream prefetchers (PIF/SHIFT monitor the retire
   stream, which is why they lag on redirects — paper Section III-A);
4. **decode→ROB** — delivered groups enter the back end after the decode
   latency, subject to ROB occupancy;
5. **fetch** — up to fetch-width instructions drain from the FTQ head; a
   demand L1-I miss stalls fetch and is charged to the sequential /
   conditional / unconditional class of the block's entry edge (Figure 3);
6. **BPU** — one basic-block prediction per cycle: BTB (+ Boomerang's BTB
   prefetch buffer) lookup, direction prediction, RAS push/pop; a detected
   BTB miss either stalls for Boomerang's predecode fill or degrades into
   a sequential run; wrong paths are really walked over the static CFG so
   wrong-path prefetches genuinely fill (or pollute) the prefetch buffer;
7. **prefetch issue** — one L1-I probe per cycle, honouring the priority
   mux: demand fetch > BTB miss probe > prefetch probe (paper Fig. 6).
"""

from __future__ import annotations

import bisect
from collections import deque

from ..branch.btb import BasicBlockBTB, BTBEntry, BTBPrefetchBuffer
from ..branch.predictors import make_predictor
from ..branch.predictors.base import OraclePredictor
from ..branch.ras import ReturnAddressStack
from ..config import SimConfig
from ..errors import SimulationError
from ..frontend.ftq import FetchTargetQueue
from ..frontend.predecode import boomerang_fill, predecode_block
from ..memory.hierarchy import InstructionMemory
from ..workloads.isa import BranchKind, EntryKind
from ..workloads.workload import Workload
from .mechanisms import build_prefetcher, traits_for

# Squash causes.
CAUSE_NONE = 0
CAUSE_BTB = 1       #: BTB miss for an eventually-taken branch
CAUSE_COND = 2      #: conditional direction mispredict
CAUSE_TARGET = 3    #: indirect/return target mispredict

# BranchKind locals (hot-loop comparisons on ints).
_COND = int(BranchKind.COND)
_JUMP = int(BranchKind.JUMP)
_CALL = int(BranchKind.CALL)
_RET = int(BranchKind.RET)
_IND_JUMP = int(BranchKind.IND_JUMP)
_IND_CALL = int(BranchKind.IND_CALL)

_SEQ = int(EntryKind.SEQUENTIAL)
_CONDK = int(EntryKind.CONDITIONAL)
_UNCONDK = int(EntryKind.UNCONDITIONAL)

#: Sequential blocks the predecode walk may visit before declaring a bug.
_PREDECODE_WALK_CAP = 16

#: Hard per-run cycle budget (multiples of trace instructions).
_CYCLE_CAP_FACTOR = 400


class FrontEndEngine:
    """One simulated core front-end + simplified back-end."""

    def __init__(self, workload: Workload, config: SimConfig):
        self.workload = workload
        self.config = config
        self.traits = traits_for(config.mechanism)

        self.mem = InstructionMemory(config.memory, perfect=config.perfect_l1i)
        self.btb = BasicBlockBTB(config.btb)
        self.btb_pf_buffer = BTBPrefetchBuffer(
            config.prefetch.btb_prefetch_buffer_entries
        )
        self.predictor = make_predictor(config.predictor)
        self.ras = ReturnAddressStack(config.core.ras_entries)
        self.ftq = FetchTargetQueue(config.core.ftq_depth)
        self.prefetcher = build_prefetcher(config, self.mem.llc_round_trip)

        cfg = workload.cfg
        self._starts_sorted = sorted(cfg.blocks)
        self._is_boomerang = self.traits.btb_prefill == "boomerang"
        self._is_confluence = self.traits.btb_prefill == "confluence"
        self._oracle = isinstance(self.predictor, OraclePredictor)

    # -------------------------------------------------------------- helpers

    def _next_block_start(self, pc: int) -> int | None:
        """Smallest basic-block start strictly greater than ``pc``."""
        idx = bisect.bisect_right(self._starts_sorted, pc)
        if idx < len(self._starts_sorted):
            return self._starts_sorted[idx]
        return None

    @staticmethod
    def _static_entry(blk) -> BTBEntry:
        target = 0 if blk.kind == BranchKind.RET else blk.target
        return BTBEntry(blk.n_instrs, int(blk.kind), target)

    # ------------------------------------------------------------------ run

    def run(self, max_instructions: int | None = None) -> dict[str, float]:
        """Simulate the workload's trace; returns the measured-region stats."""
        wl = self.workload
        cfg_blocks = wl.cfg.blocks
        records = wl.trace.records
        n_records = len(records)
        total_instrs = wl.trace.n_instrs
        if max_instructions is not None:
            total_instrs = min(total_instrs, max_instructions)
        warmup_instrs = min(wl.warmup_instrs, total_instrs // 2)

        core = self.config.core
        fetch_width = core.fetch_width
        commit_width = core.commit_width
        rob_size = core.rob_size
        decode_latency = core.decode_latency
        resolve_latency = core.resolve_latency
        redirect_bubble = core.redirect_bubble
        throttle_blocks = (
            self.config.prefetch.throttle_blocks if self._is_boomerang else 0
        )
        perfect_btb = self.config.perfect_btb
        decoupled = self.traits.decoupled
        # Data-side model: blocks whose hash falls under the threshold stall
        # dispatch (deterministic per block start address).
        data_stall_threshold = int(core.data_stall_bb_frac * 4096)
        data_stall_cycles = core.data_stall_cycles
        predecode_latency = core.predecode_latency

        mem = self.mem
        btb = self.btb
        btb_buf = self.btb_pf_buffer
        predictor = self.predictor
        ras = self.ras
        ftq = self.ftq
        prefetcher = self.prefetcher
        oracle = self._oracle
        boomerang = self._is_boomerang
        confluence = self._is_confluence
        branches_in_block = wl.cfg.branches_in_cache_block

        # --- BPU state
        bpu_idx = 0                   # next trace record (correct path)
        wrong_path = False
        wp_pc = 0
        div_resume_idx = -1
        div_cause = CAUSE_NONE
        ras_snapshot: tuple[int, ...] | None = None
        bpu_stall_until = 0
        # Boomerang BTB-miss resolution state: (miss_pc, block, ready, steps)
        bmiss: list[int] | None = None

        # --- fetch state
        cur_entry = None              # (start, n, tidx, wp, cause, learn)
        cur_off = 0
        fetch_ready = 0
        stall_cls = -1                # classification while stalled (or -1)
        last_block = -1               # last L1-I block demanded

        # --- back end
        decode_q: deque = deque()     # (ready, n, start, wp, cause)
        decode_instrs = 0
        rob: deque = deque()          # [n_left, wp, start, n_instrs]
        rob_instrs = 0
        squash_at = -1                # scheduled squash cycle (-1 = none)
        dispatch_stall_until = 0      # data-side LSQ backpressure model

        # --- prefetch engine (decoupled)
        probe_q: list[int] = []       # FIFO of blocks to probe
        probe_pos = 0
        throttle_q: deque[int] = deque()
        recent_probe: dict[int, None] = {}

        # --- stats
        cycle = 0
        retired = 0
        squash_btb = squash_cond = squash_target = 0
        stall_seq = stall_cond = stall_uncond = 0
        btb_miss_lookups = 0
        btb_miss_stall_cycles = 0
        wp_cycles = 0
        warmup_snapshot: dict[str, float] | None = None
        cycle_cap = _CYCLE_CAP_FACTOR * max(total_instrs, 1)

        def local_counters() -> dict[str, float]:
            counters: dict[str, float] = {
                "cycles": cycle,
                "retired_instrs": retired,
                "squash_btb": squash_btb,
                "squash_cond": squash_cond,
                "squash_target": squash_target,
                "stall_seq": stall_seq,
                "stall_cond": stall_cond,
                "stall_uncond": stall_uncond,
                "btb_miss_lookups": btb_miss_lookups,
                "btb_miss_stall_cycles": btb_miss_stall_cycles,
                "wp_cycles": wp_cycles,
                "btb_lookups": btb.lookups,
                "btb_hits": btb.hits,
                "btb_inserts": btb.inserts,
                "btb_pfb_hits": btb_buf.hits,
                "btb_pfb_inserts": btb_buf.inserts,
                "ftq_pushes": ftq.pushed,
                "ftq_flushes": ftq.flushes,
            }
            counters.update(mem.counters())
            return counters

        while retired < total_instrs:
            cycle += 1
            if cycle > cycle_cap:
                raise SimulationError(
                    f"cycle cap exceeded ({cycle} cycles, {retired}/{total_instrs} "
                    f"instructions) — engine livelock for {self.config.mechanism}"
                )

            # ---- 1. fill arrivals -------------------------------------------
            arrived = mem.drain_arrivals(cycle)
            if confluence and arrived and not perfect_btb:
                for block in arrived:
                    for pc, entry in predecode_block(wl.cfg, block):
                        btb.insert(pc, entry)

            # ---- 2. squash ---------------------------------------------------
            if squash_at >= 0 and cycle >= squash_at:
                if div_cause == CAUSE_BTB:
                    squash_btb += 1
                elif div_cause == CAUSE_COND:
                    squash_cond += 1
                else:
                    squash_target += 1
                # Flush younger (wrong-path) work everywhere.
                ftq.flush()
                cur_entry = None
                cur_off = 0
                fetch_ready = 0
                stall_cls = -1
                last_block = -1
                if decode_q:
                    kept = deque(g for g in decode_q if not g[3])
                    decode_instrs -= sum(g[1] for g in decode_q) - sum(
                        g[1] for g in kept
                    )
                    decode_q = kept
                # Wrong-path tail flush: pop younger entries off the right.
                while rob and rob[-1][1]:
                    rob_instrs -= rob.pop()[0]
                if ras_snapshot is not None:
                    ras.restore(ras_snapshot)
                    ras_snapshot = None
                wrong_path = False
                bpu_idx = div_resume_idx
                div_cause = CAUSE_NONE
                squash_at = -1
                bmiss = None
                bpu_stall_until = cycle + redirect_bubble
                probe_q = []
                probe_pos = 0
                throttle_q = deque()

            # ---- 3. retire ---------------------------------------------------
            budget = commit_width
            while budget > 0 and rob:
                head = rob[0]
                if head[1]:  # wrong-path head cannot retire; wait for squash
                    break
                take = head[0] if head[0] <= budget else budget
                head[0] -= take
                rob_instrs -= take
                retired += take
                budget -= take
                if head[0] == 0:
                    rob.popleft()
                    if prefetcher is not None:
                        start = head[2]
                        first = start >> 6
                        last = (start + (head[3] - 1) * 4) >> 6
                        for b in range(first, last + 1):
                            prefetcher.on_retired_block(b, cycle)
            if warmup_snapshot is None and retired >= warmup_instrs:
                warmup_snapshot = local_counters()

            # ---- 4. decode -> ROB (dispatch) ----------------------------------
            # Dispatch stalls on "data-heavy" blocks model LSQ backpressure:
            # the window behind a missing load fills and dispatch halts. This
            # is what keeps the ROB shallow on server workloads, so front-end
            # bubbles and squash refills expose their full latency.
            while dispatch_stall_until <= cycle and decode_q and decode_q[0][0] <= cycle:
                group = decode_q[0]
                if rob_instrs + group[1] > rob_size:
                    break
                decode_q.popleft()
                decode_instrs -= group[1]
                start = group[2]
                rob.append([group[1], group[3], start, group[1]])
                rob_instrs += group[1]
                if ((start >> 2) * 2654435761 & 0xFFF) < data_stall_threshold:
                    dispatch_stall_until = cycle + data_stall_cycles
                    break

            # ---- 5. fetch ----------------------------------------------------
            # While dispatch is data-stalled the fetch buffer is full and
            # delivery pauses; the BPU/prefetch engine keeps running ahead
            # (that overlap is exactly what decoupled prefetching exploits).
            # Cycles where fetch is not the bottleneck are not charged as
            # front-end stall cycles.
            if dispatch_stall_until > cycle:
                pass
            elif fetch_ready > cycle:
                if stall_cls == _SEQ:
                    stall_seq += 1
                elif stall_cls == _CONDK:
                    stall_cond += 1
                elif stall_cls == _UNCONDK:
                    stall_uncond += 1
            else:
                stall_cls = -1
                budget = fetch_width
                while budget > 0 and rob_instrs + decode_instrs < rob_size:
                    if cur_entry is None:
                        if ftq.empty:
                            break
                        cur_entry = ftq.pop()
                        cur_off = 0
                    start, n_instrs, tidx, wp, cause, learn = cur_entry
                    pc = start + cur_off * 4
                    block = pc >> 6
                    if block != last_block:
                        discontinuity = block != last_block + 1
                        ready = mem.demand_access(block, cycle)
                        if prefetcher is not None:
                            prefetcher.on_fetch_block(
                                block, cycle, last_block, discontinuity
                            )
                            if ready > cycle:
                                prefetcher.on_demand_miss(
                                    block, cycle, last_block, discontinuity
                                )
                        last_block = block
                        if ready > cycle:
                            fetch_ready = ready
                            if not wp:
                                if cur_off == 0:
                                    ek = records[tidx][5] if tidx >= 0 else _SEQ
                                else:
                                    ek = _SEQ
                                stall_cls = ek
                                if ek == _SEQ:
                                    stall_seq += 1
                                elif ek == _CONDK:
                                    stall_cond += 1
                                else:
                                    stall_uncond += 1
                            else:
                                stall_cls = -1
                            break
                    to_boundary = 16 - ((pc >> 2) & 15)
                    take = n_instrs - cur_off
                    if take > budget:
                        take = budget
                    if take > to_boundary:
                        take = to_boundary
                    cur_off += take
                    budget -= take
                    if cur_off >= n_instrs:
                        decode_q.append(
                            (cycle + decode_latency, n_instrs, start, wp, cause)
                        )
                        decode_instrs += n_instrs
                        if learn and not wp:
                            rec = records[tidx]
                            blk = cfg_blocks[start]
                            kind = rec[2]
                            if kind == _IND_JUMP or kind == _IND_CALL:
                                tgt = rec[4]
                            elif kind == _RET:
                                tgt = 0
                            else:
                                tgt = blk.target
                            btb.insert(start, BTBEntry(n_instrs, kind, tgt))
                        if cause != CAUSE_NONE:
                            squash_at = cycle + resolve_latency
                        cur_entry = None

            # ---- 6. BPU ------------------------------------------------------
            if wrong_path:
                wp_cycles += 1
            if cycle >= bpu_stall_until:
                if bmiss is not None:
                    btb_miss_stall_cycles += 1
                    if cycle >= bmiss[2]:
                        # Predecode the fetched block; walk forward if the
                        # block holds no branch at/after the miss address.
                        filled, others = boomerang_fill(wl.cfg, bmiss[1], bmiss[0])
                        for pc_o, entry_o in others:
                            btb_buf.insert(pc_o, entry_o)
                        if filled is not None:
                            btb.insert(filled[0], filled[1])
                            bmiss = None
                        else:
                            bmiss[3] += 1
                            if bmiss[3] > _PREDECODE_WALK_CAP:
                                raise SimulationError(
                                    "predecode walk exceeded cap at "
                                    f"{bmiss[0]:#x}"
                                )
                            bmiss[1] += 1
                            bmiss[2] = mem.data_ready(bmiss[1], cycle) + predecode_latency
                elif not ftq.full:
                    if not wrong_path and bpu_idx < n_records:
                        rec = records[bpu_idx]
                        start = rec[0]
                        n_instrs = rec[1]
                        kind = rec[2]
                        taken = rec[3]
                        actual_next = rec[4]
                        blk = cfg_blocks[start]
                        branch_pc = start + (n_instrs - 1) * 4

                        if perfect_btb:
                            entry = True
                        else:
                            entry = btb.lookup(start)
                            if entry is None and boomerang:
                                staged = btb_buf.take(start)
                                if staged is not None:
                                    btb.insert(start, staged)
                                    entry = staged

                        if entry is None:
                            btb_miss_lookups += 1
                            if boomerang:
                                # Stall and resolve via a BTB miss probe.
                                block = start >> 6
                                resident = mem.is_resident_or_inflight(block)
                                ready = mem.data_ready(block, cycle) + predecode_latency
                                bmiss = [start, block, ready, 0]
                                if throttle_blocks and not resident:
                                    for off in range(1, throttle_blocks + 1):
                                        throttle_q.append(block + off)
                            else:
                                # Sequential run past the unknown branch.
                                if taken:
                                    cause = CAUSE_BTB
                                    wrong_path = True
                                    wp_pc = start + n_instrs * 4
                                    div_resume_idx = bpu_idx + 1
                                    div_cause = CAUSE_BTB
                                    ras_snapshot = ras.snapshot()
                                else:
                                    cause = CAUSE_NONE
                                    bpu_idx += 1
                                ftq.push((start, n_instrs, bpu_idx - (0 if taken else 1), False, cause, True))
                                if decoupled:
                                    first = start >> 6
                                    last = (start + (n_instrs - 1) * 4) >> 6
                                    for b in range(first, last + 1):
                                        if b not in recent_probe:
                                            recent_probe[b] = None
                                            if len(recent_probe) > 128:
                                                del recent_probe[next(iter(recent_probe))]
                                            probe_q.append(b)
                        else:
                            cause = CAUSE_NONE
                            mispredicted_next = -1
                            if kind == _COND:
                                if oracle:
                                    predictor.stage(bool(taken))
                                pred = predictor.predict(branch_pc)
                                predictor.update(branch_pc, bool(taken))
                                if pred != bool(taken):
                                    cause = CAUSE_COND
                                    mispredicted_next = (
                                        blk.target if pred else start + n_instrs * 4
                                    )
                            elif kind == _CALL:
                                ras.push(start + n_instrs * 4)
                            elif kind == _RET:
                                pred_target = ras.pop()
                                if pred_target != actual_next:
                                    cause = CAUSE_TARGET
                                    mispredicted_next = (
                                        pred_target
                                        if pred_target is not None
                                        else start + n_instrs * 4
                                    )
                            elif kind == _IND_CALL or kind == _IND_JUMP:
                                if perfect_btb:
                                    pred_target = actual_next
                                else:
                                    pred_target = entry[2]
                                if kind == _IND_CALL:
                                    ras.push(start + n_instrs * 4)
                                if pred_target != actual_next:
                                    cause = CAUSE_TARGET
                                    mispredicted_next = pred_target
                                    btb.update_target(start, actual_next)
                            # JUMP: static target, always correct.

                            if cause != CAUSE_NONE:
                                wrong_path = True
                                wp_pc = mispredicted_next
                                div_resume_idx = bpu_idx + 1
                                div_cause = cause
                                ras_snapshot = ras.snapshot()
                            else:
                                bpu_idx += 1
                            ftq.push((start, n_instrs, bpu_idx - (1 if cause == CAUSE_NONE else 0), False, cause, False))
                            if decoupled:
                                first = start >> 6
                                last = (start + (n_instrs - 1) * 4) >> 6
                                for b in range(first, last + 1):
                                    if b not in recent_probe:
                                        recent_probe[b] = None
                                        if len(recent_probe) > 128:
                                            del recent_probe[next(iter(recent_probe))]
                                        probe_q.append(b)
                    elif wrong_path:
                        # Speculative walk over the static CFG.
                        blk = cfg_blocks.get(wp_pc)
                        if blk is None:
                            nxt = self._next_block_start(wp_pc)
                            if nxt is None or nxt - wp_pc > 64:
                                n_i = 4
                            else:
                                n_i = max(1, (nxt - wp_pc) >> 2)
                            ftq.push((wp_pc, n_i, -1, True, CAUSE_NONE, False))
                            seg_start = wp_pc
                            wp_pc += n_i * 4
                        else:
                            start = blk.start
                            n_i = blk.n_instrs
                            entry = None if perfect_btb else btb.lookup(start)
                            if perfect_btb:
                                entry = BTBEntry(n_i, int(blk.kind), blk.target)
                            if entry is None and boomerang:
                                staged = btb_buf.take(start)
                                if staged is not None:
                                    btb.insert(start, staged)
                                    entry = staged
                            if entry is None:
                                if boomerang:
                                    block = start >> 6
                                    resident = mem.is_resident_or_inflight(block)
                                    ready = mem.data_ready(block, cycle) + predecode_latency
                                    bmiss = [start, block, ready, 0]
                                    if throttle_blocks and not resident:
                                        for off in range(1, throttle_blocks + 1):
                                            throttle_q.append(block + off)
                                else:
                                    wp_pc = start + n_i * 4  # straight line
                            else:
                                kind = entry[1]
                                if kind == _COND:
                                    pred = predictor.predict(
                                        start + (entry[0] - 1) * 4
                                    )
                                    wp_pc = (
                                        entry[2] if pred else start + entry[0] * 4
                                    )
                                elif kind == _CALL or kind == _IND_CALL:
                                    ras.push(start + entry[0] * 4)
                                    wp_pc = entry[2]
                                elif kind == _RET:
                                    popped = ras.pop()
                                    wp_pc = (
                                        popped
                                        if popped is not None
                                        else start + entry[0] * 4
                                    )
                                else:
                                    wp_pc = entry[2]
                            if bmiss is None:
                                ftq.push((start, n_i, -1, True, CAUSE_NONE, False))
                            seg_start = start
                        if bmiss is None and decoupled:
                            first = seg_start >> 6
                            last = (seg_start + (n_i - 1) * 4) >> 6
                            for b in range(first, last + 1):
                                if b not in recent_probe:
                                    recent_probe[b] = None
                                    if len(recent_probe) > 128:
                                        del recent_probe[next(iter(recent_probe))]
                                    probe_q.append(b)

            # ---- 7. prefetch issue (1 probe/cycle max) -----------------------
            if throttle_q:
                mem.prefetch_probe(throttle_q.popleft(), cycle)
            elif bmiss is not None:
                pass  # probe port carries the BTB miss probe traffic
            elif decoupled:
                if probe_pos < len(probe_q):
                    mem.prefetch_probe(probe_q[probe_pos], cycle)
                    probe_pos += 1
                    if probe_pos > 512:
                        probe_q = probe_q[probe_pos:]
                        probe_pos = 0
            elif prefetcher is not None:
                block = prefetcher.next_prefetch(cycle)
                if block is not None:
                    mem.prefetch_probe(block, cycle)

            # End-of-trace drain: if the BPU has consumed the whole trace and
            # everything younger has drained, stop (counts remaining retire).
            if (
                bpu_idx >= n_records
                and not wrong_path
                and ftq.empty
                and cur_entry is None
                and not decode_q
                and not rob
            ):
                break

        final = local_counters()
        base = warmup_snapshot or {k: 0 for k in final}
        stats = {k: final[k] - base.get(k, 0) for k in final}
        stats["warmup_instrs"] = float(base.get("retired_instrs", 0))
        stats["warmup_cycles"] = float(base.get("cycles", 0))
        stats["total_cycles"] = float(cycle)
        stats["llc_round_trip"] = float(mem.llc_round_trip)
        return stats
