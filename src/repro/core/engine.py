"""Cycle-level decoupled front-end engine.

This is the simulator behind every experiment: a trace-driven, cycle-by-
cycle model of the paper's core (Table I). The engine itself is thin —
it builds the hardware blocks, asks :mod:`repro.core.mechanisms` to
compose the mechanism's pipeline-stage list (:mod:`repro.core.stages`),
then ticks that list over a shared :class:`~repro.core.stages.PipelineState`
once per cycle:

1. **fill arrivals** — completed L1-I fills install (prefetch buffer or
   L1-I); Confluence's variant predecodes arriving blocks into its BTB;
2. **squash** — a resolved mispredicted/missed branch flushes the FTQ,
   decode pipe and wrong-path ROB tail, restores the RAS and redirects the
   BPU (cause recorded: BTB miss vs. direction vs. target — Figure 7);
3. **retire** — up to commit-width instructions leave the ROB; retiring
   blocks feed temporal-stream prefetchers (PIF/SHIFT monitor the retire
   stream, which is why they lag on redirects — paper Section III-A);
4. **decode→ROB** — delivered groups enter the back end after the decode
   latency, subject to ROB occupancy;
5. **fetch** — up to fetch-width instructions drain from the FTQ head; a
   demand L1-I miss stalls fetch and is charged to the sequential /
   conditional / unconditional class of the block's entry edge (Figure 3);
6. **BPU** — one basic-block prediction per cycle; Boomerang's variant
   resolves detected BTB misses by stalling for a predecode fill, others
   degrade into a sequential run; wrong paths are really walked over the
   static CFG so wrong-path prefetches genuinely fill (or pollute) the
   prefetch buffer;
7. **prefetch issue** — one L1-I probe per cycle, honouring the priority
   mux: demand fetch > BTB miss probe > prefetch probe (paper Fig. 6).

All bookkeeping that remains here is run-scoped: the warmup/measured-region
split and the end-of-trace drain. Per-stage counters flatten into the
flat stats dict via :func:`repro.core.results.aggregate_stage_counters`.
"""

from __future__ import annotations

from ..branch.btb import BasicBlockBTB, BTBPrefetchBuffer
from ..branch.predictors import make_predictor
from ..branch.ras import ReturnAddressStack
from ..config import SimConfig
from ..errors import SimulationError
from ..frontend.ftq import FetchTargetQueue
from ..memory.hierarchy import InstructionMemory
from ..workloads.workload import Workload
from .mechanisms import build_prefetcher, compose_stages, traits_for
from .results import aggregate_stage_counters
from .stages import (
    CAUSE_BTB,
    CAUSE_COND,
    CAUSE_NONE,
    CAUSE_TARGET,
    PipelineState,
    StageContext,
)

__all__ = [
    "CAUSE_BTB",
    "CAUSE_COND",
    "CAUSE_NONE",
    "CAUSE_TARGET",
    "FrontEndEngine",
]

#: Hard per-run cycle budget (multiples of trace instructions).
_CYCLE_CAP_FACTOR = 400


class FrontEndEngine:
    """One simulated core front-end + simplified back-end."""

    def __init__(self, workload: Workload, config: SimConfig):
        self.workload = workload
        self.config = config
        self.traits = traits_for(config.mechanism)

        self.mem = InstructionMemory(config.memory, perfect=config.perfect_l1i)
        self.btb = BasicBlockBTB(config.btb)
        self.btb_pf_buffer = BTBPrefetchBuffer(
            config.prefetch.btb_prefetch_buffer_entries
        )
        self.predictor = make_predictor(config.predictor)
        self.ras = ReturnAddressStack(config.core.ras_entries)
        self.ftq = FetchTargetQueue(config.core.ftq_depth)
        self.prefetcher = build_prefetcher(config, self.mem.llc_round_trip)

        self.stages = compose_stages(
            StageContext(
                workload=workload,
                config=config,
                mem=self.mem,
                btb=self.btb,
                btb_buf=self.btb_pf_buffer,
                predictor=self.predictor,
                ras=self.ras,
                ftq=self.ftq,
                prefetcher=self.prefetcher,
            )
        )

    # ------------------------------------------------------------------ run

    def run(self, max_instructions: int | None = None) -> dict[str, float]:
        """Simulate the workload's trace; returns the measured-region stats."""
        wl = self.workload
        n_records = len(wl.trace)
        total_instrs = wl.trace.n_instrs
        if max_instructions is not None:
            total_instrs = min(total_instrs, max_instructions)
        warmup_instrs = min(wl.warmup_instrs, total_instrs // 2)

        stages = self.stages
        mem = self.mem
        ftq = self.ftq

        def collect(cycle: int) -> dict[str, float]:
            return aggregate_stage_counters(
                cycle, state.retired, stages, self.btb, self.btb_pf_buffer, ftq, mem
            )

        state = PipelineState(warmup_instrs=warmup_instrs, collect_counters=collect)

        cycle = 0
        cycle_cap = _CYCLE_CAP_FACTOR * max(total_instrs, 1)
        ticks = tuple(stage.tick for stage in stages)  # prebound hot loop

        while state.retired < total_instrs:
            cycle += 1
            if cycle > cycle_cap:
                raise SimulationError(
                    f"cycle cap exceeded ({cycle} cycles, {state.retired}/"
                    f"{total_instrs} instructions) — engine livelock for "
                    f"{self.config.mechanism}"
                )

            for tick in ticks:
                tick(state, cycle)

            # End-of-trace drain: if the BPU has consumed the whole trace and
            # everything younger has drained, stop (counts remaining retire).
            if (
                state.bpu_idx >= n_records
                and not state.wrong_path
                and ftq.empty
                and state.cur_entry is None
                and not state.decode_q
                and not state.rob
            ):
                break

        final = collect(cycle)
        base = state.warmup_snapshot or {k: 0 for k in final}
        stats = {k: final[k] - base.get(k, 0) for k in final}
        stats["warmup_instrs"] = float(base.get("retired_instrs", 0))
        stats["warmup_cycles"] = float(base.get("cycles", 0))
        stats["total_cycles"] = float(cycle)
        stats["llc_round_trip"] = float(mem.llc_round_trip)
        return stats
