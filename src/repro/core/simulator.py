"""Public simulation API.

Typical use::

    from repro import Simulator, make_config, load_workload

    workload = load_workload("apache")
    boomerang = Simulator(workload, make_config("boomerang")).run()
    baseline = Simulator(workload, make_config("none")).run()
    print(boomerang.speedup_over(baseline))

:func:`run_mechanism` wraps the three lines above for one-off runs.
"""

from __future__ import annotations

from ..config import SimConfig
from ..workloads.profiles import WorkloadProfile
from ..workloads.workload import Workload, load_workload
from .engine import FrontEndEngine
from .mechanisms import make_config
from .results import SimulationResult


class Simulator:
    """One workload + one configuration = one runnable simulation."""

    def __init__(self, workload: Workload, config: SimConfig | None = None):
        self.workload = workload
        self.config = config if config is not None else make_config("none")

    def run(self, max_instructions: int | None = None) -> SimulationResult:
        """Simulate and return the measured-region result.

        Engines are single-use (they accumulate microarchitectural state),
        so each call builds a fresh one — results are reproducible for a
        given (workload, config) pair.
        """
        engine = FrontEndEngine(self.workload, self.config)
        raw = engine.run(max_instructions=max_instructions)
        return SimulationResult(
            workload=self.workload.name,
            mechanism=self.config.mechanism,
            raw=raw,
        )


def run_mechanism(
    mechanism: str,
    workload: Workload | WorkloadProfile | str,
    config: SimConfig | None = None,
    max_instructions: int | None = None,
    scale: float = 1.0,
    **config_overrides,
) -> SimulationResult:
    """Convenience: build config + workload and run one simulation."""
    if not isinstance(workload, Workload):
        workload = load_workload(workload, scale=scale)
    cfg = make_config(mechanism, base=config, **config_overrides)
    return Simulator(workload, cfg).run(max_instructions=max_instructions)
