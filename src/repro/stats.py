"""Lightweight statistics counters shared by all simulated components.

The simulator favours plain integer attributes on hot paths; this module
provides the aggregation/reporting layer on top of them: a ``StatGroup``
maps names to integer/float values and supports merging, ratios and pretty
printing for the experiment tables.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping


class StatGroup:
    """A named bag of numeric statistics.

    Behaves like a ``dict[str, float]`` with convenience arithmetic. Missing
    keys read as zero, which keeps reporting code free of ``.get`` noise.
    """

    def __init__(self, name: str = "", values: Mapping[str, float] | None = None):
        self.name = name
        self._values: dict[str, float] = dict(values or {})

    def __getitem__(self, key: str) -> float:
        return self._values.get(key, 0)

    def __setitem__(self, key: str, value: float) -> None:
        self._values[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def add(self, key: str, amount: float = 1) -> None:
        """Increment ``key`` by ``amount`` (creating it at zero)."""
        self._values[key] = self._values.get(key, 0) + amount

    def merge(self, other: "StatGroup" | Mapping[str, float]) -> "StatGroup":
        """Accumulate another group's values into this one; returns self."""
        items = other._values.items() if isinstance(other, StatGroup) else other.items()
        for key, value in items:
            self.add(key, value)
        return self

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters (0.0 when the denominator is zero)."""
        denom = self._values.get(denominator, 0)
        if not denom:
            return 0.0
        return self._values.get(numerator, 0) / denom

    def per_kilo(self, numerator: str, denominator: str) -> float:
        """``numerator`` per 1000 units of ``denominator``."""
        return 1000.0 * self.ratio(numerator, denominator)

    def as_dict(self) -> dict[str, float]:
        """A copy of the underlying mapping."""
        return dict(self._values)

    def subset(self, prefix: str) -> "StatGroup":
        """A new group with only the keys starting with ``prefix``."""
        picked = {k: v for k, v in self._values.items() if k.startswith(prefix)}
        return StatGroup(f"{self.name}:{prefix}" if self.name else prefix, picked)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={self._values[k]:g}" for k in sorted(self._values))
        return f"StatGroup({self.name!r}, {{{inner}}})"


def weighted_mean(pairs: Iterable[tuple[float, float]]) -> float:
    """Mean of ``value`` weighted by ``weight`` over ``(value, weight)`` pairs."""
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        total += value * weight
        weight_sum += weight
    if weight_sum == 0:
        return 0.0
    return total / weight_sum


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the conventional average for speedups.

    Raises ``ValueError`` on non-positive inputs since a speedup of zero or
    below indicates a broken measurement rather than a slow one.
    """
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(log_sum / count)
