"""The single ``os.environ`` access point for every ``REPRO_*`` option.

Option *precedence* (explicit kwargs/CLI flags beat environment variables
beat defaults) is asserted in :func:`repro.runtime.resolve_options` and the
other documented resolvers — but before this module existed, the *reads*
themselves were scattered: ~21 raw ``os.environ`` lookups across 10 files,
each free to invent its own empty-string semantics, typo a variable name,
or quietly introduce a second resolution point for an option that already
has one. Every read now funnels through :func:`read_env`, which only
accepts names registered in :data:`REPRO_ENV_OPTIONS` — an unregistered
(or misspelled) variable is a hard :class:`~repro.errors.ConfigError`
instead of a silently-ignored knob.

``reprolint`` (:mod:`repro.devtools`) enforces the funnel mechanically:
rule ``RPL001`` flags any ``os.environ`` / ``os.getenv`` use in the
``repro`` package outside this module, so a new environment read cannot
bypass the registry. The registry doubles as the authoritative list of
environment knobs for docs and ``--help`` text.

Semantics helpers:

* :func:`read_env` — the raw value, exactly as set (``""`` is preserved:
  ``REPRO_TRACE_STORE=""`` means *explicitly disabled*, distinct from
  unset);
* :func:`env_str` — collapse unset *and* empty to a default (the common
  "empty means default" convention of the other options);
* :func:`env_flag` — boolean convention shared by ``REPRO_BROKER_STEAL``
  (``0`` / ``false`` / ``no`` disable, anything else enables);
* :func:`exported` — temporarily export a value for child processes
  (spawn-started pool workers) and restore the previous state after.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, overload

from .errors import ConfigError


@dataclass(frozen=True)
class EnvOption:
    """One registered ``REPRO_*`` environment option."""

    name: str
    description: str
    #: Value shape, for docs: "int", "float", "path", "choice", "flag", "str".
    kind: str = "str"
    #: Valid values for ``kind="choice"`` options, if statically known.
    choices: tuple[str, ...] = ()
    #: Dotted module owning the documented resolution point for this option.
    owner: str = "repro.runtime.runner"


#: Every environment variable the repro package reads, by name.
REPRO_ENV_OPTIONS: dict[str, EnvOption] = {
    opt.name: opt
    for opt in (
        EnvOption(
            "REPRO_JOBS",
            "process-pool width for the experiment runtime (>= 1)",
            kind="int",
        ),
        EnvOption(
            "REPRO_CACHE_DIR",
            "persistent result-cache directory (also hosts the broker queue)",
            kind="path",
        ),
        EnvOption(
            "REPRO_BACKEND",
            "executor backend: auto | serial | pool | broker",
            kind="choice",
            choices=("auto", "serial", "pool", "broker"),
        ),
        EnvOption(
            "REPRO_BATCH",
            "group same-workload jobs into batched engine runs (0/false/no off)",
            kind="flag",
        ),
        EnvOption(
            "REPRO_BATCH_WIDTH",
            "max configs per batched engine run (>= 2; default 16)",
            kind="int",
        ),
        EnvOption(
            "REPRO_FIDELITY",
            "result fidelity tier: exact | analytic | hybrid",
            kind="choice",
            choices=("exact", "analytic", "hybrid"),
        ),
        EnvOption(
            "REPRO_ANALYTIC_ANCHORS",
            "per-series calibration anchor grid 'LATxBTB' (default 3x2)",
            kind="str",
        ),
        EnvOption(
            "REPRO_ANALYTIC_MAX_ERR",
            "hybrid: series above this error bound re-dispatch exact (0..1]",
            kind="float",
        ),
        EnvOption(
            "REPRO_SCALE",
            "experiment scale: quick | default | full",
            kind="choice",
            choices=("quick", "default", "full"),
            owner="repro.experiments.common",
        ),
        EnvOption(
            "REPRO_WORKLOAD_SET",
            "workload profile set: paper | extended | all",
            kind="choice",
            choices=("paper", "extended", "all"),
            owner="repro.workloads.profiles",
        ),
        EnvOption(
            "REPRO_TRACE_STORE",
            "workload trace-store directory ('' = explicitly disabled)",
            kind="path",
            owner="repro.workloads.workload",
        ),
        EnvOption(
            "REPRO_BROKER_LEASE",
            "broker lease duration in seconds before a claim is recoverable",
            kind="float",
            owner="repro.runtime.broker",
        ),
        EnvOption(
            "REPRO_BROKER_MAX_ATTEMPTS",
            "execution attempts before a broker job fails terminally",
            kind="int",
            owner="repro.runtime.broker",
        ),
        EnvOption(
            "REPRO_BROKER_TIMEOUT",
            "coordinator wait budget in seconds (unset = wait forever)",
            kind="float",
            owner="repro.runtime.broker",
        ),
        EnvOption(
            "REPRO_BROKER_STEAL",
            "whether the submitting coordinator steals jobs itself",
            kind="flag",
            owner="repro.runtime.broker",
        ),
        EnvOption(
            "REPRO_BROKER_SCHEDULER",
            "broker claim order: longest | fifo",
            kind="choice",
            choices=("longest", "fifo"),
            owner="repro.runtime.broker",
        ),
        EnvOption(
            "REPRO_SUPERVISOR_MIN",
            "supervisor fleet floor: persistent workers kept alive (>= 0)",
            kind="int",
            owner="repro.runtime.supervisor",
        ),
        EnvOption(
            "REPRO_SUPERVISOR_MAX",
            "supervisor fleet ceiling, whatever the backlog demands (>= 1)",
            kind="int",
            owner="repro.runtime.supervisor",
        ),
        EnvOption(
            "REPRO_SUPERVISOR_COOLDOWN",
            "minimum seconds between supervisor scale-up rounds",
            kind="float",
            owner="repro.runtime.supervisor",
        ),
        EnvOption(
            "REPRO_SUPERVISOR_BACKOFF",
            "base crash-restart delay in seconds (doubles per crash, capped)",
            kind="float",
            owner="repro.runtime.supervisor",
        ),
        EnvOption(
            "REPRO_SUPERVISOR_IDLE",
            "surge-worker --max-idle handed out by the supervisor (seconds)",
            kind="float",
            owner="repro.runtime.supervisor",
        ),
        EnvOption(
            "REPRO_FAULTPOINTS",
            "fault-injection spec 'point:N,...' (test harness only)",
            kind="str",
            owner="repro.runtime.faultpoints",
        ),
        EnvOption(
            "REPRO_WAREHOUSE_AUTOREFRESH",
            "refresh the result warehouse after each cached sweep run",
            kind="flag",
            owner="repro.warehouse.core",
        ),
    )
}

#: Values :func:`env_flag` treats as false (shared broker convention).
_FALSY = ("0", "false", "no")


def _require_registered(name: str) -> None:
    if name not in REPRO_ENV_OPTIONS:
        known = ", ".join(sorted(REPRO_ENV_OPTIONS))
        raise ConfigError(
            f"unregistered environment option {name!r}; every REPRO_* "
            f"variable must be declared in repro.envopts.REPRO_ENV_OPTIONS "
            f"(known: {known})"
        )


def read_env(name: str) -> str | None:
    """The raw value of a registered option (``None`` when unset).

    The empty string is preserved — ``REPRO_TRACE_STORE=""`` carries
    meaning (explicit disable). Use :func:`env_str` for options where
    empty should collapse to the default.
    """
    _require_registered(name)
    return os.environ.get(name)


@overload
def env_str(name: str, default: str) -> str: ...


@overload
def env_str(name: str, default: None = None) -> str | None: ...


def env_str(name: str, default: str | None = None) -> str | None:
    """A registered option's value, with unset *and* empty → ``default``."""
    return read_env(name) or default


def env_flag(name: str, default: bool = True) -> bool:
    """Boolean option: ``0`` / ``false`` / ``no`` disable; unset → default."""
    raw = read_env(name)
    if raw is None:
        return default
    return raw not in _FALSY


@contextmanager
def exported(name: str, value: str | None) -> Iterator[None]:
    """Temporarily export ``name=value`` for child processes.

    ``None`` means nothing to export (no-op). The previous state —
    including "was unset" — is restored on exit, so a transient export
    for a pool's lifetime can never leak into later resolution.
    """
    _require_registered(name)
    if value is None:
        yield
        return
    before = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = before
