"""Cache-block predecoder.

Models the hardware that scans the raw bytes of a fetched cache block and
extracts the branch instructions it contains — branch opcodes encode the
kind, and direct branches embed their target offset. Two consumers:

* **Boomerang** (paper Section IV-B): resolve a BTB miss by finding the
  first branch at or after the missing entry's start address, walking
  sequential blocks if the block holds no such branch; stage the block's
  other branches in the BTB prefetch buffer.
* **Confluence**: bulk-insert every branch of an arriving block into the BTB.

The predecoder reads ground truth from the static CFG — in hardware it
reads the same facts from the instruction bytes themselves, which is why
this path needs no metadata.
"""

from __future__ import annotations

from ..branch.btb import BTBEntry
from ..config import INSTR_BYTES
from ..workloads.cfg import ControlFlowGraph, StaticBlock
from ..workloads.isa import BranchKind


def _entry_for(block: StaticBlock) -> BTBEntry:
    """Natural BTB entry of a static basic block."""
    target = 0 if block.kind == BranchKind.RET else block.target
    return BTBEntry(n_instrs=block.n_instrs, kind=int(block.kind), target=target)


def predecode_block(cfg: ControlFlowGraph, cache_block: int) -> list[tuple[int, BTBEntry]]:
    """All (bb_start, entry) pairs for branches inside ``cache_block``.

    This is Confluence's bulk-fill view of one block.
    """
    return [(blk.start, _entry_for(blk)) for blk in cfg.branches_in_cache_block(cache_block)]


def find_terminating_branch(
    cfg: ControlFlowGraph, cache_block: int, from_pc: int
) -> StaticBlock | None:
    """First branch at/after ``from_pc`` within ``cache_block``, if any.

    ``None`` tells Boomerang's miss state machine to probe the next
    sequential block (paper step 3b).
    """
    for blk in cfg.branches_in_cache_block(cache_block):
        if blk.branch_pc >= from_pc:
            return blk
    return None


def boomerang_fill(
    cfg: ControlFlowGraph, cache_block: int, miss_pc: int
) -> tuple[tuple[int, BTBEntry] | None, list[tuple[int, BTBEntry]]]:
    """Boomerang predecode step for one block.

    Returns ``(terminating, others)`` where ``terminating`` is the entry
    that resolves the BTB miss at ``miss_pc`` (keyed at ``miss_pc``, sized
    from ``miss_pc`` to the found branch) or ``None`` if the block holds no
    branch at/after ``miss_pc``; ``others`` are the block's remaining
    branch entries, destined for the BTB prefetch buffer.
    """
    branches = cfg.branches_in_cache_block(cache_block)
    terminator: StaticBlock | None = None
    for blk in branches:
        if blk.branch_pc >= miss_pc:
            terminator = blk
            break
    others = [
        (blk.start, _entry_for(blk))
        for blk in branches
        if terminator is None or blk.branch_pc != terminator.branch_pc
    ]
    if terminator is None:
        return None, others
    n_instrs = (terminator.branch_pc - miss_pc) // INSTR_BYTES + 1
    target = 0 if terminator.kind == BranchKind.RET else terminator.target
    entry = BTBEntry(n_instrs=n_instrs, kind=int(terminator.kind), target=target)
    return (miss_pc, entry), others
