"""Fetch target queue (FTQ).

The FTQ decouples the branch-prediction unit from the fetch engine: the BPU
pushes one basic-block fetch region per cycle at the tail; the fetch engine
drains from the head; the prefetch engine scans newly pushed entries. Deep
FTQs (32 entries) are what let FDIP/Boomerang run far ahead of fetch; the
no-prefetch baseline uses a shallow one that models an ordinary coupled
fetch buffer.

Entries are engine-defined tuples; the FTQ only manages capacity, ordering
and the prefetch-scan watermark. The backing deque is exposed as
:attr:`FetchTargetQueue.entries` so per-cycle pipeline stages can bind it
once and test occupancy/tails without a Python-level property call; treat
it as read-only — all mutation goes through ``push``/``pop``/``flush``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator


class FetchTargetQueue:
    """Bounded FIFO of fetch regions with a prefetch-scan cursor."""

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("FTQ depth must be >= 1")
        self.depth = depth
        #: Backing deque, oldest entry first. Read-only for stages.
        self.entries: deque = deque()
        #: Count of entries ever pushed; the prefetch engine keeps its own
        #: watermark against this to scan each entry exactly once.
        self.pushed = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self.entries

    def push(self, entry: tuple) -> None:
        if len(self.entries) >= self.depth:
            raise OverflowError("push on full FTQ")
        self.entries.append(entry)
        self.pushed += 1

    def pop(self) -> tuple:
        """Remove and return the head entry (fetch engine side)."""
        return self.entries.popleft()

    def peek(self) -> tuple | None:
        return self.entries[0] if self.entries else None

    def flush(self) -> int:
        """Drop everything (squash); returns how many entries were dropped."""
        dropped = len(self.entries)
        self.entries.clear()
        self.flushes += 1
        return dropped
