"""Front-end building blocks: fetch target queue and block predecoder."""

from .ftq import FetchTargetQueue
from .predecode import boomerang_fill, find_terminating_branch, predecode_block

__all__ = [
    "FetchTargetQueue",
    "boomerang_fill",
    "find_terminating_branch",
    "predecode_block",
]
