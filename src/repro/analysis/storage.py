"""Analytic storage-cost model (paper Section VI-D).

Reproduces the paper's metadata accounting:

* **Boomerang**: a 32-entry FTQ (46-bit basic-block address + 5-bit size =
  51 bits/entry → 204 bytes) plus a 32-entry BTB prefetch buffer (46-bit
  tag + 30-bit target + 3-bit type + 5-bit size = 84 bits/entry → 336
  bytes): **540 bytes total**, none of it prefetcher metadata proper.
* **Confluence**: 8K-entry index table embedded in the LLC tag array
  (240 KB for an 8 MB LLC) plus a 32K-entry history virtualized into LLC
  capacity (~200+ KB carved per co-scheduled workload).
* **PIF**: private per-core history + index (>200 KB/core).
* **SHIFT**: the same metadata virtualized and shared (charged per
  workload, plus the LLC tag extension).
* **RDIP**: ~60 KB/core (paper Section II-B), included for context.
* **DIP**: 8K-entry discontinuity table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig

#: Bit widths used throughout the paper's accounting.
ADDR_BITS = 46          #: virtual address bits (SPARC)
TARGET_BITS = 30        #: maximum branch offset (SPARC)
BRANCH_TYPE_BITS = 3
BB_SIZE_BITS = 5


@dataclass(frozen=True)
class StorageCost:
    """Dedicated metadata of one mechanism, split by placement."""

    mechanism: str
    #: Dedicated per-core SRAM in bytes.
    per_core_bytes: float
    #: LLC capacity carved out per co-scheduled workload, in bytes.
    llc_carve_bytes: float = 0.0
    #: One-off structures charged to the shared LLC (e.g. tag extension).
    shared_bytes: float = 0.0
    notes: str = ""

    @property
    def total_bytes(self) -> float:
        return self.per_core_bytes + self.llc_carve_bytes + self.shared_bytes


def ftq_bytes(depth: int) -> float:
    """FTQ storage: basic-block start address + size per entry."""
    return depth * (ADDR_BITS + BB_SIZE_BITS) / 8.0


def btb_prefetch_buffer_bytes(entries: int) -> float:
    """Boomerang's staging buffer: tag + target + type + size per entry."""
    return entries * (ADDR_BITS + TARGET_BITS + BRANCH_TYPE_BITS + BB_SIZE_BITS) / 8.0


def btb_bytes(entries: int) -> float:
    """A basic-block BTB's storage (context for the two-level alternatives)."""
    return entries * (ADDR_BITS + TARGET_BITS + BRANCH_TYPE_BITS + BB_SIZE_BITS) / 8.0


def stream_history_bytes(history_entries: int) -> float:
    return history_entries * ADDR_BITS / 8.0


def stream_index_bytes(index_entries: int, pointer_bits: int = 18) -> float:
    return index_entries * (ADDR_BITS + pointer_bits) / 8.0


def confluence_index_extension_bytes(llc_bytes: int, index_entries: int = 8192) -> float:
    """LLC tag-array extension holding the index (paper: 240 KB at 8 MB).

    The paper's figure scales with LLC size; we anchor to their quoted
    240 KB for an 8 MB LLC.
    """
    return 240 * 1024 * (llc_bytes / (8 * 1024 * 1024))


def boomerang_cost(config: SimConfig) -> StorageCost:
    ftq = ftq_bytes(config.core.ftq_depth)
    buf = btb_prefetch_buffer_bytes(config.prefetch.btb_prefetch_buffer_entries)
    return StorageCost(
        mechanism="boomerang",
        per_core_bytes=ftq + buf,
        notes="FTQ + BTB prefetch buffer only; no prefetcher metadata",
    )


def fdip_cost(config: SimConfig) -> StorageCost:
    return StorageCost(
        mechanism="fdip",
        per_core_bytes=ftq_bytes(config.core.ftq_depth),
        notes="deep FTQ only",
    )


def pif_cost(config: SimConfig) -> StorageCost:
    pf = config.prefetch
    return StorageCost(
        mechanism="pif",
        per_core_bytes=stream_history_bytes(pf.stream_history_entries)
        + stream_index_bytes(pf.stream_index_entries),
        notes="private temporal-stream history + index per core",
    )


def shift_cost(config: SimConfig, n_workloads: int = 1) -> StorageCost:
    pf = config.prefetch
    return StorageCost(
        mechanism="shift",
        per_core_bytes=0.0,
        llc_carve_bytes=n_workloads * stream_history_bytes(pf.stream_history_entries),
        shared_bytes=confluence_index_extension_bytes(config.memory.llc.size_bytes * 2),
        notes="history virtualized in LLC (per workload) + index in LLC tags",
    )


def confluence_cost(config: SimConfig, n_workloads: int = 1) -> StorageCost:
    base = shift_cost(config, n_workloads)
    return StorageCost(
        mechanism="confluence",
        per_core_bytes=base.per_core_bytes,
        llc_carve_bytes=base.llc_carve_bytes,
        shared_bytes=base.shared_bytes,
        notes="SHIFT metadata (1K-entry block BTB per original design)",
    )


def dip_cost(config: SimConfig) -> StorageCost:
    entries = config.prefetch.dip_table_entries
    return StorageCost(
        mechanism="dip",
        per_core_bytes=entries * (2 * 40) / 8.0,
        notes="discontinuity prediction table",
    )


def next_line_cost(config: SimConfig) -> StorageCost:
    return StorageCost(mechanism="next_line", per_core_bytes=0.0, notes="stateless")


def rdip_cost() -> StorageCost:
    """RDIP context entry (paper quotes >60 KB/core; not simulated)."""
    return StorageCost(
        mechanism="rdip",
        per_core_bytes=60 * 1024,
        notes="return-address-stack-indexed metadata (context only)",
    )


def two_level_btb_cost(second_level_entries: int = 16384) -> StorageCost:
    """A dedicated 2-level BTB alternative (paper: up to 280 KB of state)."""
    return StorageCost(
        mechanism="two_level_btb",
        per_core_bytes=btb_bytes(second_level_entries),
        notes="dedicated second-level BTB (context only)",
    )


def storage_comparison(config: SimConfig | None = None, n_workloads: int = 1) -> list[StorageCost]:
    """The Section VI-D comparison table, in paper order."""
    cfg = config if config is not None else SimConfig()
    return [
        next_line_cost(cfg),
        dip_cost(cfg),
        fdip_cost(cfg),
        pif_cost(cfg),
        rdip_cost(),
        shift_cost(cfg, n_workloads),
        confluence_cost(cfg, n_workloads),
        boomerang_cost(cfg),
    ]
