"""ASCII table / bar-chart formatting for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a simple aligned ASCII table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(cells) for cells in rendered)
    return "\n".join(lines)


def format_bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """A single horizontal ASCII bar, for quick visual comparisons."""
    if scale <= 0:
        return ""
    filled = int(round(width * min(value / scale, 1.0)))
    return char * filled


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 40,
    value_fmt: str = "{:.2f}",
) -> str:
    """Labelled horizontal bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    scale = max(values) if values else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = format_bar(value, scale, width)
        lines.append(f"{label.rjust(label_w)} | {bar} {value_fmt.format(value)}")
    return "\n".join(lines)


def human_bytes(n: float) -> str:
    """740 -> '740 B', 245760 -> '240.0 KB'."""
    if n < 1024:
        return f"{n:.0f} B"
    if n < 1024 * 1024:
        return f"{n / 1024:.1f} KB"
    return f"{n / (1024 * 1024):.2f} MB"
