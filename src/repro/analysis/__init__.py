"""Analysis helpers: storage accounting and report formatting."""

from .storage import (
    StorageCost,
    boomerang_cost,
    btb_bytes,
    btb_prefetch_buffer_bytes,
    confluence_cost,
    dip_cost,
    fdip_cost,
    ftq_bytes,
    next_line_cost,
    pif_cost,
    rdip_cost,
    shift_cost,
    storage_comparison,
    stream_history_bytes,
    stream_index_bytes,
    two_level_btb_cost,
)
from .tables import format_bar, format_bar_chart, format_table, human_bytes

__all__ = [
    "StorageCost",
    "boomerang_cost",
    "btb_bytes",
    "btb_prefetch_buffer_bytes",
    "confluence_cost",
    "dip_cost",
    "fdip_cost",
    "format_bar",
    "format_bar_chart",
    "format_table",
    "ftq_bytes",
    "human_bytes",
    "next_line_cost",
    "pif_cost",
    "rdip_cost",
    "shift_cost",
    "storage_comparison",
    "stream_history_bytes",
    "stream_index_bytes",
    "two_level_btb_cost",
]
