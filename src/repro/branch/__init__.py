"""Branch-prediction substrate: BTBs, return address stack, predictors."""

from .btb import BasicBlockBTB, BTBEntry, BTBPrefetchBuffer, ConventionalBTB
from .predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    DirectionPredictor,
    GsharePredictor,
    NeverTakenPredictor,
    OraclePredictor,
    TagePredictor,
    make_predictor,
)
from .ras import ReturnAddressStack

__all__ = [
    "AlwaysTakenPredictor",
    "BasicBlockBTB",
    "BTBEntry",
    "BTBPrefetchBuffer",
    "BimodalPredictor",
    "ConventionalBTB",
    "DirectionPredictor",
    "GsharePredictor",
    "NeverTakenPredictor",
    "OraclePredictor",
    "ReturnAddressStack",
    "TagePredictor",
    "make_predictor",
]
