"""Return address stack with snapshot/restore for wrong-path recovery.

The BPU pushes on calls and pops on returns while running ahead; a squash
must restore the RAS to its state at the point of divergence, which the
engine does by snapshotting at divergence and restoring at the squash.
"""

from __future__ import annotations

from collections import deque


class ReturnAddressStack:
    """Fixed-capacity circular return-address stack.

    Backed by a ``deque(maxlen=capacity)`` so the overflow path (drop the
    oldest entry) is O(1) instead of an O(n) list shift — deep call chains
    overflow the RAS on every push.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("RAS capacity must be >= 1")
        self.capacity = capacity
        self._stack: deque[int] = deque(maxlen=capacity)
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, return_pc: int) -> None:
        """Push a return address; overflow drops the oldest entry."""
        self.pushes += 1
        if len(self._stack) >= self.capacity:
            self.overflows += 1  # the bounded deque evicts the oldest
        self._stack.append(return_pc)

    def pop(self) -> int | None:
        """Pop the predicted return target; None when empty (underflow)."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def snapshot(self) -> tuple[int, ...]:
        """Cheap immutable copy of the current contents."""
        return tuple(self._stack)

    def restore(self, snap: tuple[int, ...]) -> None:
        self._stack = deque(snap, maxlen=self.capacity)

    def reset(self) -> None:
        self._stack.clear()
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0
