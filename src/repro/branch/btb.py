"""Branch target buffers.

The central structure is the **basic-block-oriented BTB** (Yeh & Patt),
which Boomerang depends on: each entry describes one basic block — its
size and its terminating branch's kind and target — keyed by the block's
start address. Because every entry holds exactly one branch, a lookup that
returns nothing is an unambiguous *BTB miss* (a conventional
instruction-granularity BTB cannot distinguish "miss" from "not a branch";
see paper Section IV-B).

Also provided: the small FIFO **BTB prefetch buffer** Boomerang uses to
stage predecoded entries without polluting the BTB, and a conventional
branch-PC-keyed BTB for comparison experiments.
"""

from __future__ import annotations

from typing import NamedTuple

from ..config import BTBParams
from ..workloads.isa import BranchKind


class BTBEntry(NamedTuple):
    """Payload of one basic-block BTB entry."""

    n_instrs: int        #: basic-block size in instructions
    kind: int            #: BranchKind of the terminating branch
    target: int          #: predicted taken-target (0 for returns)


class BasicBlockBTB:
    """Set-associative, LRU, basic-block-oriented BTB."""

    def __init__(self, params: BTBParams):
        self.params = params
        self._set_mask = params.n_sets - 1
        self._assoc = params.assoc
        self._sets: list[dict[int, BTBEntry]] = [dict() for _ in range(params.n_sets)]
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0

    def _set_for(self, pc: int) -> dict[int, BTBEntry]:
        # Instructions are 4-byte aligned; drop the zero bits for indexing.
        return self._sets[(pc >> 2) & self._set_mask]

    def lookup(self, pc: int) -> BTBEntry | None:
        """Look up the basic block starting at ``pc`` (LRU touch on hit)."""
        self.lookups += 1
        way = self._set_for(pc)
        entry = way.get(pc)
        if entry is not None:
            del way[pc]
            way[pc] = entry
            self.hits += 1
        return entry

    def contains(self, pc: int) -> bool:
        """Presence check with no LRU or counter side effects."""
        return pc in self._set_for(pc)

    def insert(self, pc: int, entry: BTBEntry) -> int | None:
        """Install/refresh an entry; returns the evicted key, if any."""
        way = self._set_for(pc)
        victim = None
        if pc in way:
            del way[pc]
        elif len(way) >= self._assoc:
            victim = next(iter(way))
            del way[victim]
            self.evictions += 1
        way[pc] = entry
        self.inserts += 1
        return victim

    def update_target(self, pc: int, target: int) -> bool:
        """Retarget an existing entry (indirect-branch learning)."""
        way = self._set_for(pc)
        entry = way.get(pc)
        if entry is None:
            return False
        way[pc] = entry._replace(target=target)
        return True

    def occupancy(self) -> int:
        return sum(len(way) for way in self._sets)

    def reset(self) -> None:
        for way in self._sets:
            way.clear()
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.evictions = 0


class BTBPrefetchBuffer:
    """Boomerang's 32-entry FIFO staging buffer for predecoded BTB entries.

    Looked up in parallel with the BTB; a hit moves the entry into the BTB
    (the caller does the move). FIFO replacement, per the paper.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("BTB prefetch buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[int, BTBEntry] = {}
        self.hits = 0
        self.inserts = 0
        self.evictions = 0

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, pc: int, entry: BTBEntry) -> None:
        if pc in self._entries:
            self._entries[pc] = entry
            return
        if len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self.evictions += 1
        self._entries[pc] = entry
        self.inserts += 1

    def take(self, pc: int) -> BTBEntry | None:
        """Remove and return the entry for ``pc`` (hit path)."""
        entry = self._entries.pop(pc, None)
        if entry is not None:
            self.hits += 1
        return entry

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.inserts = 0
        self.evictions = 0


class ConventionalBTB:
    """Branch-PC-keyed BTB (taken branches only) for comparison studies.

    A miss here is ambiguous — it may mean "not a branch" — which is exactly
    why Boomerang needs the basic-block organization. Provided so examples
    and tests can demonstrate that limitation.
    """

    def __init__(self, params: BTBParams):
        self.params = params
        self._set_mask = params.n_sets - 1
        self._assoc = params.assoc
        self._sets: list[dict[int, tuple[int, int]]] = [
            dict() for _ in range(params.n_sets)
        ]
        self.lookups = 0
        self.hits = 0

    def lookup(self, branch_pc: int) -> tuple[int, int] | None:
        """Returns (kind, target) for a branch at ``branch_pc``, if known."""
        self.lookups += 1
        way = self._sets[(branch_pc >> 2) & self._set_mask]
        entry = way.get(branch_pc)
        if entry is not None:
            del way[branch_pc]
            way[branch_pc] = entry
            self.hits += 1
        return entry

    def insert(self, branch_pc: int, kind: int, target: int) -> None:
        if kind == BranchKind.COND and target == 0:
            raise ValueError("conditional BTB entries need a real target")
        way = self._sets[(branch_pc >> 2) & self._set_mask]
        if branch_pc in way:
            del way[branch_pc]
        elif len(way) >= self._assoc:
            del way[next(iter(way))]
        way[branch_pc] = (kind, target)
