"""Direction-predictor interface.

Trace-driven idiom: the engine calls :meth:`predict` for every conditional
branch on the correct path and immediately :meth:`update`\\ s with the true
outcome (the first time that dynamic branch is predicted). Wrong-path
lookups call :meth:`predict` only, so speculative state never needs to be
rolled back — see DESIGN.md section 5.4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class DirectionPredictor(ABC):
    """Predicts taken/not-taken for conditional branches."""

    #: Registry name; subclasses override.
    name = "base"

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predict the outcome of the conditional branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the true outcome (also advances any global history)."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Modelled hardware budget in bits (for the storage report)."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Forget all learned state (optional for stateless predictors)."""


class NeverTakenPredictor(DirectionPredictor):
    """Paper Section III-A's naive baseline: always follow the fall-through."""

    name = "never_taken"

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass

    def storage_bits(self) -> int:
        return 0


class AlwaysTakenPredictor(DirectionPredictor):
    """Static always-taken baseline."""

    name = "always_taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def storage_bits(self) -> int:
        return 0


class OraclePredictor(DirectionPredictor):
    """Perfect direction prediction (engine supplies the outcome).

    ``predict`` returns the last outcome staged via :meth:`stage`; the
    engine stages the trace's true outcome just before predicting, which
    models a perfect predictor without changing the call protocol.
    """

    name = "oracle"

    def __init__(self) -> None:
        self._staged = False

    def stage(self, outcome: bool) -> None:
        self._staged = outcome

    def predict(self, pc: int) -> bool:
        return self._staged

    def update(self, pc: int, taken: bool) -> None:
        pass

    def storage_bits(self) -> int:
        return 0
