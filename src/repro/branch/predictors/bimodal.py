"""Bimodal (2-bit saturating counter) direction predictor.

The paper's "FDIP 2-bit" configuration (Figure 2) uses exactly this:
a PC-indexed table of 2-bit counters, no global history.
"""

from __future__ import annotations

from .base import DirectionPredictor


class BimodalPredictor(DirectionPredictor):
    """PC-indexed 2-bit saturating counters."""

    name = "bimodal"

    #: Counter values 0-3; >=2 predicts taken. Initialised weakly not-taken.
    _INIT = 1

    def __init__(self, entries: int = 4096):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("bimodal entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._table = [self._INIT] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1

    def storage_bits(self) -> int:
        return 2 * self.entries

    def reset(self) -> None:
        self._table = [self._INIT] * self.entries
