"""Branch direction predictors: never/always-taken, bimodal, gshare, TAGE."""

from __future__ import annotations

from ...config import PredictorParams
from ...errors import ConfigError
from .base import (
    AlwaysTakenPredictor,
    DirectionPredictor,
    NeverTakenPredictor,
    OraclePredictor,
)
from .bimodal import BimodalPredictor
from .gshare import GsharePredictor
from .tage import TagePredictor


def make_predictor(params: PredictorParams) -> DirectionPredictor:
    """Instantiate the direction predictor described by ``params``."""
    kind = params.kind
    if kind == "never_taken":
        return NeverTakenPredictor()
    if kind == "always_taken":
        return AlwaysTakenPredictor()
    if kind == "oracle":
        return OraclePredictor()
    if kind == "bimodal":
        return BimodalPredictor(entries=params.bimodal_entries)
    if kind == "gshare":
        return GsharePredictor(
            entries=params.gshare_entries, history_bits=params.gshare_history
        )
    if kind == "tage":
        return TagePredictor(
            base_entries=params.bimodal_entries,
            table_entries=params.tage_table_entries,
            tag_bits=params.tage_tag_bits,
            history_lengths=params.tage_history_lengths,
        )
    raise ConfigError(f"unknown predictor kind {kind!r}")


__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "DirectionPredictor",
    "GsharePredictor",
    "NeverTakenPredictor",
    "OraclePredictor",
    "TagePredictor",
    "make_predictor",
]
