"""TAGE direction predictor (Seznec & Michaud), the paper's Table I choice.

A base bimodal table plus N partially-tagged tables indexed by geometrically
increasing global-history lengths. This implementation follows the standard
formulation: longest-matching table provides the prediction; allocation on
mispredicts targets a longer-history table with a free useful counter;
useful bits age periodically. Sized to the paper's 8 KB budget by default
(4K-entry base + 4 x 1K-entry tagged tables, 8-bit tags).
"""

from __future__ import annotations

from .base import DirectionPredictor


def _fold(history: int, bits: int) -> int:
    """XOR-fold an arbitrary-width history integer into ``bits`` bits.

    Reference formulation; the tagged tables maintain the same folds
    incrementally (circular shift registers), one O(1) step per history
    bit, instead of re-walking the whole history every lookup.
    """
    mask = (1 << bits) - 1
    acc = 0
    while history:
        acc ^= history & mask
        history >>= bits
    return acc


class _FoldedRegister:
    """Circular shift register holding ``_fold(history & mask, bits)``.

    Folding is GF(2)-linear per bit position: history bit ``p`` contributes
    at folded position ``p % bits``. Shifting a new bit into the history
    therefore rotates the folded value left by one, XORs the new bit in at
    position 0, and XORs the outgoing bit (the one leaving the table's
    history window) out at position ``history_length % bits``.
    """

    __slots__ = ("value", "_bits", "_mask", "_out_pos")

    def __init__(self, history_length: int, bits: int):
        self.value = 0
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._out_pos = history_length % bits

    def shift(self, new_bit: int, out_bit: int) -> None:
        v = self.value
        v = ((v << 1) | (v >> (self._bits - 1))) & self._mask  # rotate left
        self.value = v ^ new_bit ^ (out_bit << self._out_pos)

    def reset(self) -> None:
        self.value = 0


class _TaggedTable:
    """One tagged TAGE component."""

    __slots__ = ("history_length", "index_bits", "tag_bits", "ctr", "tag", "useful",
                 "_index_mask", "_tag_mask", "_hist_mask",
                 "_f_index", "_f_tag0", "_f_tag1")

    def __init__(self, entries: int, tag_bits: int, history_length: int):
        self.history_length = history_length
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.ctr = [3] * entries          # 3-bit counter, >=4 predicts taken
        self.tag = [0] * entries
        self.useful = [0] * entries       # 2-bit useful counter
        self._index_mask = entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._hist_mask = (1 << history_length) - 1
        self._f_index = _FoldedRegister(history_length, self.index_bits)
        self._f_tag0 = _FoldedRegister(history_length, tag_bits)
        self._f_tag1 = _FoldedRegister(history_length, tag_bits - 1)

    def shift_history(self, new_bit: int, history_before: int) -> None:
        """Advance the folded registers for one global-history shift."""
        out_bit = (history_before >> (self.history_length - 1)) & 1
        self._f_index.shift(new_bit, out_bit)
        self._f_tag0.shift(new_bit, out_bit)
        self._f_tag1.shift(new_bit, out_bit)

    def reset_history(self) -> None:
        self._f_index.reset()
        self._f_tag0.reset()
        self._f_tag1.reset()

    def index_of(self, pc: int) -> int:
        return (
            (pc >> 2) ^ (pc >> (2 + self.index_bits)) ^ self._f_index.value
        ) & self._index_mask

    def tag_of(self, pc: int) -> int:
        return (
            (pc >> 2) ^ self._f_tag0.value ^ (self._f_tag1.value << 1)
        ) & self._tag_mask


class TagePredictor(DirectionPredictor):
    """TAGE with a bimodal base and geometric-history tagged tables."""

    name = "tage"

    #: Clear all useful bits every this many updates (graceful aging).
    _USEFUL_RESET_PERIOD = 1 << 18

    def __init__(
        self,
        base_entries: int = 4096,
        table_entries: int = 1024,
        tag_bits: int = 8,
        history_lengths: tuple[int, ...] = (5, 15, 44, 130),
    ):
        if base_entries & (base_entries - 1):
            raise ValueError("base entries must be a power of two")
        if table_entries & (table_entries - 1):
            raise ValueError("table entries must be a power of two")
        if list(history_lengths) != sorted(set(history_lengths)):
            raise ValueError("history lengths must be strictly increasing")
        self.base_entries = base_entries
        self._base_mask = base_entries - 1
        self.base = [1] * base_entries    # 2-bit counters, weakly not-taken
        self.tables = [
            _TaggedTable(table_entries, tag_bits, length) for length in history_lengths
        ]
        # Flattened per-table constants + folded registers for the hot
        # lookup/shift loops (registers are stable objects; the mutable
        # ctr/tag/useful lists are NOT cached — reset()/aging rebind them).
        self._lookup_plan = [
            (t, t.index_bits, t._index_mask, t._tag_mask,
             t._f_index, t._f_tag0, t._f_tag1)
            for t in self.tables
        ]
        self._shift_plan = [
            (reg, t.history_length - 1, reg._bits - 1, reg._mask, reg._out_pos)
            for t in self.tables
            for reg in (t._f_index, t._f_tag0, t._f_tag1)
        ]
        self._max_hist_mask = (1 << history_lengths[-1]) - 1
        self.history = 0
        self._updates = 0
        self._alloc_seed = 0x9E3779B9      # deterministic pseudo-randomness
        # predict() caches its working set for the matching update().
        self._cached_pc: int | None = None
        self._cached: tuple | None = None

    # -- prediction ---------------------------------------------------------

    def _lookup(self, pc: int) -> tuple[list[int], list[int], int, int]:
        """Compute (indices, tags, provider, alt) for ``pc`` at current history.

        The loop inlines :meth:`_TaggedTable.index_of` / ``tag_of`` over the
        flattened plan — this runs once per prediction and the method-call
        overhead is measurable in grid sweeps.
        """
        indices = []
        tags = []
        provider = -1
        alt = -1
        pc2 = pc >> 2
        t = 0
        for table, ibits, imask, tmask, f_idx, f_t0, f_t1 in self._lookup_plan:
            idx = (pc2 ^ (pc2 >> ibits) ^ f_idx.value) & imask
            tag = (pc2 ^ f_t0.value ^ (f_t1.value << 1)) & tmask
            indices.append(idx)
            tags.append(tag)
            if table.tag[idx] == tag:
                alt = provider
                provider = t
            t += 1
        return indices, tags, provider, alt

    def _base_pred(self, pc: int) -> bool:
        return self.base[(pc >> 2) & self._base_mask] >= 2

    def predict(self, pc: int) -> bool:
        indices, tags, provider, alt = self._lookup(pc)
        if provider >= 0:
            table = self.tables[provider]
            idx = indices[provider]
            ctr = table.ctr[idx]
            pred = ctr >= 4
            alt_pred = (
                self.tables[alt].ctr[indices[alt]] >= 4
                if alt >= 0
                else self._base_pred(pc)
            )
            # "Use alt on newly allocated": a weak, never-proven-useful
            # provider entry is likely fresh noise — trust the alternate.
            provider_pred = pred
            if table.useful[idx] == 0 and ctr in (3, 4):
                pred = alt_pred
        else:
            pred = self._base_pred(pc)
            alt_pred = pred
            provider_pred = pred
        self._cached_pc = pc
        self._cached = (indices, tags, provider, alt, pred, alt_pred, provider_pred)
        return pred

    # -- training -----------------------------------------------------------

    def update(self, pc: int, taken: bool) -> None:
        if self._cached_pc != pc or self._cached is None:
            self.predict(pc)
        indices, tags, provider, alt, pred, alt_pred, provider_pred = self._cached  # type: ignore[misc]
        self._cached_pc = None
        self._cached = None

        if provider >= 0:
            table = self.tables[provider]
            idx = indices[provider]
            ctr = table.ctr[idx]
            if taken:
                if ctr < 7:
                    table.ctr[idx] = ctr + 1
            elif ctr > 0:
                table.ctr[idx] = ctr - 1
            # Useful counter: provider was useful iff it disagreed with the
            # alternate and was right (harmful if it was wrong).
            if provider_pred != alt_pred:
                u = table.useful[idx]
                if provider_pred == taken:
                    if u < 3:
                        table.useful[idx] = u + 1
                elif u > 0:
                    table.useful[idx] = u - 1
        else:
            bidx = (pc >> 2) & self._base_mask
            ctr = self.base[bidx]
            if taken:
                if ctr < 3:
                    self.base[bidx] = ctr + 1
            elif ctr > 0:
                self.base[bidx] = ctr - 1

        # Allocate a longer-history entry on a mispredict.
        if pred != taken and provider < len(self.tables) - 1:
            self._allocate(indices, tags, provider, taken)

        self._updates += 1
        if self._updates % self._USEFUL_RESET_PERIOD == 0:
            for table in self.tables:
                table.useful = [0] * len(table.useful)

        bit = 1 if taken else 0
        history_before = self.history
        # Inlined _TaggedTable.shift_history over every folded register
        # (12 rotate-XOR steps), hottest part of the update path.
        for reg, out_shift, rot, mask, out_pos in self._shift_plan:
            out_bit = (history_before >> out_shift) & 1
            v = reg.value
            v = ((v << 1) | (v >> rot)) & mask  # rotate left
            reg.value = v ^ bit ^ (out_bit << out_pos)
        self.history = ((history_before << 1) | bit) & self._max_hist_mask

    def _allocate(
        self, indices: list[int], tags: list[int], provider: int, taken: bool
    ) -> None:
        start = provider + 1
        candidates = [
            t for t in range(start, len(self.tables))
            if self.tables[t].useful[indices[t]] == 0
        ]
        if not candidates:
            # Nothing free: age the candidates instead of allocating.
            for t in range(start, len(self.tables)):
                idx = indices[t]
                if self.tables[t].useful[idx] > 0:
                    self.tables[t].useful[idx] -= 1
            return
        # Prefer shorter history (standard TAGE bias: pick the first free
        # table with probability 1/2, else the next).
        self._alloc_seed = (self._alloc_seed * 1103515245 + 12345) & 0xFFFFFFFF
        pick = candidates[0]
        if len(candidates) > 1 and (self._alloc_seed >> 16) & 1:
            pick = candidates[1]
        table = self.tables[pick]
        idx = indices[pick]
        table.tag[idx] = tags[pick]
        table.ctr[idx] = 4 if taken else 3
        table.useful[idx] = 0

    # -- accounting ---------------------------------------------------------

    def storage_bits(self) -> int:
        bits = 2 * self.base_entries
        for table in self.tables:
            entry_bits = 3 + table.tag_bits + 2
            bits += entry_bits * len(table.ctr)
        bits += self.tables[-1].history_length  # global history register
        return bits

    def reset(self) -> None:
        self.base = [1] * self.base_entries
        for table in self.tables:
            n = len(table.ctr)
            table.ctr = [3] * n
            table.tag = [0] * n
            table.useful = [0] * n
            table.reset_history()
        self.history = 0
        self._updates = 0
        self._cached_pc = None
        self._cached = None
