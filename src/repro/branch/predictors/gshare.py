"""gshare direction predictor (global history XOR PC).

Not evaluated in the paper, but a standard mid-tier baseline between
bimodal and TAGE; useful for sensitivity studies beyond the paper's set.
"""

from __future__ import annotations

from .base import DirectionPredictor


class GsharePredictor(DirectionPredictor):
    """Global-history-XOR-PC indexed 2-bit counters."""

    name = "gshare"

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("gshare entries must be a power of two")
        if history_bits < 1:
            raise ValueError("gshare needs at least one history bit")
        self.entries = entries
        self.history_bits = history_bits
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self._table = [1] * entries
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._hist_mask

    def storage_bits(self) -> int:
        return 2 * self.entries + self.history_bits

    def reset(self) -> None:
        self._table = [1] * self.entries
        self._history = 0
