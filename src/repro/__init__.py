"""repro — reproduction of *Boomerang: A Metadata-Free Architecture for
Control Flow Delivery* (Kumar, Huang, Grot, Nagarajan; HPCA 2017).

Public surface:

* :func:`load_workload`, :data:`ALL_PROFILES` — synthetic server workloads,
* :func:`make_config`, :class:`SimConfig` — microarchitecture configuration,
* :class:`Simulator`, :func:`run_mechanism` — run one simulation,
* :data:`MECHANISMS` — all control-flow delivery schemes,
* ``repro.experiments`` — regenerate every table/figure of the paper.
"""

from .config import (
    BLOCK_BYTES,
    INSTR_BYTES,
    BTBParams,
    CacheParams,
    CoreParams,
    MemoryParams,
    NoCParams,
    PredictorParams,
    PrefetchParams,
    SimConfig,
)
from .core import (
    FIGURE_MECHANISMS,
    MECHANISMS,
    FrontEndEngine,
    SimulationResult,
    Simulator,
    make_config,
    run_mechanism,
)
from .errors import (
    ConfigError,
    ReproError,
    SimulationError,
    UnknownMechanismError,
    WorkloadError,
)
from .workloads import (
    ALL_PROFILES,
    EXTENDED_PROFILES,
    Workload,
    WorkloadProfile,
    get_profile,
    load_workload,
    profile_names,
    workload_set,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES",
    "BLOCK_BYTES",
    "BTBParams",
    "CacheParams",
    "ConfigError",
    "CoreParams",
    "EXTENDED_PROFILES",
    "FIGURE_MECHANISMS",
    "FrontEndEngine",
    "INSTR_BYTES",
    "MECHANISMS",
    "MemoryParams",
    "NoCParams",
    "PredictorParams",
    "PrefetchParams",
    "ReproError",
    "SimConfig",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "UnknownMechanismError",
    "Workload",
    "WorkloadError",
    "WorkloadProfile",
    "__version__",
    "get_profile",
    "load_workload",
    "make_config",
    "profile_names",
    "run_mechanism",
    "workload_set",
]
