"""Two-tier fidelity: a calibrated closed-form fast path for sweeps.

The exact engine answers one cell in seconds; a dense latency × BTB
grid has hundreds per workload and the ROADMAP's north star wants
millions. This package adds the second tier: a per-series closed-form
model (:mod:`.model`) calibrated from a small anchor set of exact cells
(:mod:`.planner`), whose synthesized records live under their own schema
tag (:mod:`.store`) so they can never shadow exact results.

Three fidelity tiers (``--fidelity`` / ``REPRO_FIDELITY``, resolved with
the usual flag > env > default precedence in
:func:`repro.runtime.runner.resolve_options`):

* ``exact`` — every cell runs on the cycle-accurate engine (default;
  bit-identical to every previous release),
* ``analytic`` — per series: anchors run exact, every other cell is
  synthesized by the fitted model (exact fallback where the model
  refuses to fit),
* ``hybrid`` — like ``analytic``, but series whose self-reported error
  bound exceeds ``REPRO_ANALYTIC_MAX_ERR`` and cells outside the anchor
  hull are re-dispatched to the exact engine.
"""

#: The fidelity tiers, in escalating-trust order. The authoritative
#: registry the ``REPRO_FIDELITY`` envopts choices must mirror (RPL006).
FIDELITY_NAMES = ("exact", "analytic", "hybrid")

from .model import (  # noqa: E402
    AnalyticFitError,
    AnchorPoint,
    SeriesFit,
    combined_speedup_bound,
    fit_series,
    is_analytic,
    reported_bound,
)
from .planner import (  # noqa: E402
    DEFAULT_ANCHOR_SPEC,
    SeriesPlan,
    cell_axes,
    job_pressure,
    parse_anchor_spec,
    plan_series,
    plan_summary,
    series_key,
)
from .store import (  # noqa: E402
    ANALYTIC_SCHEMA_TAG,
    AnalyticStore,
    prune_analytic,
    scan_analytic,
)

__all__ = [
    "ANALYTIC_SCHEMA_TAG",
    "DEFAULT_ANCHOR_SPEC",
    "FIDELITY_NAMES",
    "AnalyticFitError",
    "AnalyticStore",
    "AnchorPoint",
    "SeriesFit",
    "SeriesPlan",
    "cell_axes",
    "combined_speedup_bound",
    "fit_series",
    "is_analytic",
    "job_pressure",
    "parse_anchor_spec",
    "plan_series",
    "plan_summary",
    "prune_analytic",
    "reported_bound",
    "scan_analytic",
    "series_key",
]
