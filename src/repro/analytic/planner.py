"""Series grouping, anchor selection, and the hybrid dispatch plan.

A batch of jobs decomposes into **series**: cells that differ *only* in
LLC round-trip latency and BTB capacity — the two axes the closed-form
model (:mod:`repro.analytic.model`) is fit over. The series key is the
config digest with both axes pinned to sentinels, so any other knob
(mechanism, predictor, FTQ depth, ...) starts a new series and the model
never interpolates across semantics it was not calibrated for.

Per series, the planner picks a small **anchor grid** — evenly spaced
latencies × extreme BTB sizes, ``LATxBTB`` per ``REPRO_ANALYTIC_ANCHORS``
(default ``3x2``) — always including each axis' endpoints, so every other
cell *interpolates* inside the anchor hull. Series too small or too flat
to calibrate (fewer than 3 distinct latencies, fewer than 2 distinct BTB
sizes, or no cells left over to estimate) are passed through to the exact
engine unchanged: the analytic tier refuses to guess where it cannot
cross-validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import SimConfig
from ..errors import ConfigError
from ..runtime.confighash import config_digest
from ..runtime.runner import SimJob
from ..workloads.profiles import get_profile
from .model import N_FEATURES

#: Default per-series anchor grid: 3 latency points × 2 BTB sizes.
DEFAULT_ANCHOR_SPEC = "3x2"

#: Axis sentinels the series key pins the modeled axes to. Arbitrary
#: valid values — any two configs that agree after pinning are one series.
_SENTINEL_LATENCY = 1
_SENTINEL_BTB_ENTRIES = 2048


def parse_anchor_spec(spec: str) -> tuple[int, int]:
    """``"LATxBTB"`` → (latency anchors, BTB anchors), validated.

    At least 3 latency × 2 BTB anchors are required: the model has
    ``N_FEATURES`` coefficients and the leave-one-out bound refits on
    one fewer anchor, so anything smaller cannot be cross-validated.
    """
    parts = spec.lower().split("x")
    try:
        lat_n, btb_n = (int(p) for p in parts)
    except ValueError:
        raise ConfigError(
            f"anchor spec must be 'LATxBTB' (e.g. '3x2'), got {spec!r}"
        ) from None
    if lat_n < 3 or btb_n < 2 or lat_n * btb_n <= N_FEATURES:
        raise ConfigError(
            f"anchor spec needs >= 3 latency and >= 2 BTB anchors "
            f"(> {N_FEATURES} total), got {spec!r}"
        )
    return lat_n, btb_n


def series_key(config: SimConfig) -> str:
    """Digest of the config with the two modeled axes pinned to sentinels."""
    pinned = config.with_llc_latency(_SENTINEL_LATENCY).with_btb_entries(
        _SENTINEL_BTB_ENTRIES
    )
    return config_digest(pinned)


def cell_axes(job: SimJob) -> tuple[int, int]:
    """A job's position on the modeled plane: (LLC round trip, BTB entries)."""
    return (job.config.memory.llc_round_trip, job.config.btb.entries)


def job_pressure(job: SimJob) -> float:
    """The BTB-pressure feature of one job, at its workload scale."""
    profile = get_profile(job.workload)
    if job.workload_scale != 1.0:
        profile = profile.scaled(job.workload_scale)
    return profile.btb_pressure(job.config.btb.entries)


def _spread(values: Sequence[int], count: int) -> tuple[int, ...]:
    """``count`` evenly spaced picks from a sorted axis, endpoints included."""
    if count >= len(values):
        return tuple(values)
    last = len(values) - 1
    picks = {round(i * last / (count - 1)) for i in range(count)}
    return tuple(values[i] for i in sorted(picks))


@dataclass(frozen=True)
class SeriesPlan:
    """One modelable series: its cells and the anchors that calibrate it."""

    workload: str
    workload_scale: float
    mechanism: str
    series: str
    cells: tuple[SimJob, ...]
    anchors: tuple[SimJob, ...]

    @property
    def estimated(self) -> tuple[SimJob, ...]:
        """The non-anchor cells the fitted model will synthesize."""
        anchor_keys = {job.key for job in self.anchors}
        return tuple(job for job in self.cells if job.key not in anchor_keys)


def plan_series(
    jobs: Sequence[SimJob], anchor_spec: str = DEFAULT_ANCHOR_SPEC
) -> tuple[list[SeriesPlan], list[SimJob]]:
    """Partition jobs into modelable series plus an exact passthrough list.

    Returns ``(plans, passthrough)``: every job appears exactly once,
    either as a cell of some plan or in the passthrough list. Jobs are
    assumed deduplicated by key (the runtime's pending set is).
    """
    lat_n, btb_n = parse_anchor_spec(anchor_spec)
    groups: dict[tuple[str, float, str], list[SimJob]] = {}
    for job in jobs:
        key = (job.workload, job.workload_scale, series_key(job.config))
        groups.setdefault(key, []).append(job)
    plans: list[SeriesPlan] = []
    passthrough: list[SimJob] = []
    for (workload, scale, series), cells in groups.items():
        latencies = sorted({cell_axes(job)[0] for job in cells})
        btbs = sorted({cell_axes(job)[1] for job in cells})
        if len(latencies) < 3 or len(btbs) < 2:
            passthrough.extend(cells)
            continue
        anchor_lats = set(_spread(latencies, lat_n))
        anchor_btbs = set(_spread(btbs, btb_n))
        anchors = tuple(
            job
            for job in cells
            if cell_axes(job)[0] in anchor_lats
            and cell_axes(job)[1] in anchor_btbs
        )
        # A sparse (non-product) grid can under-fill the anchor cross;
        # and a series the anchors nearly cover has nothing worth
        # estimating — both go exact rather than degrade the bound.
        if len(anchors) <= N_FEATURES or len(anchors) >= len(cells):
            passthrough.extend(cells)
            continue
        plans.append(
            SeriesPlan(
                workload=workload,
                workload_scale=scale,
                mechanism=cells[0].config.mechanism,
                series=series,
                cells=tuple(cells),
                anchors=anchors,
            )
        )
    return plans, passthrough


def plan_summary(
    plans: Sequence[SeriesPlan], passthrough: Sequence[SimJob]
) -> tuple[int, int]:
    """(exact cells, analytic cells) a plan would dispatch."""
    exact = len(passthrough) + sum(len(p.anchors) for p in plans)
    estimated = sum(len(p.estimated) for p in plans)
    return exact, estimated
