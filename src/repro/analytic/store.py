"""Persistent store for analytic (model-synthesized) cell records.

Mirrors the exact result cache's layout — one JSON record per cell under
``<cache_dir>/<tag>/<workload>/s<scale>__<hash16>.json`` — but under a
**disjoint schema tag** so the two populations can never mix::

    analytic-v1-<fingerprint12>     (this store)
    engine-v1-<fingerprint12>       (repro.runtime.cache, exact results)

The fingerprint hashes the analytic package's own source *plus* the
exact engine's :data:`~repro.runtime.cache.SCHEMA_TAG`: changing the
model, the planner, or anything that changes exact results orphans every
analytic record — an estimate calibrated against a dead engine version
is itself dead. Records additionally carry (and :meth:`AnalyticStore.get`
verifies) the full tag, so even a record copied across directories can
never satisfy a lookup from the wrong tier. The exact cache's own tag
regex matches only ``engine-v*`` directories, and this store's matches
only ``analytic-v*``; ``python -m repro.runtime list|prune`` scans both,
compaction touches neither (shards exist only under engine tags).

Analytic records are deliberately loose-only (no shard layout): they are
cheap to recompute from the anchors, so the compaction machinery's
crash-safety complexity buys nothing here.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from pathlib import Path

from ..core.results import SimulationResult
from ..runtime.atomicio import atomic_write_json
from ..runtime.cache import SCHEMA_TAG as ENGINE_SCHEMA_TAG
from ..runtime.cache import CacheTagInfo

#: Bump on record format changes; model/engine changes are fingerprinted.
_SCHEMA_MAJOR = "analytic-v1"


def _source_fingerprint() -> str:
    """Hash the analytic package source and the exact engine's tag."""
    pkg_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(ENGINE_SCHEMA_TAG.encode())
    for path in sorted(pkg_root.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


#: Versions every analytic record; never equal to an engine tag.
ANALYTIC_SCHEMA_TAG = f"{_SCHEMA_MAJOR}-{_source_fingerprint()}"

#: Digest prefix length in filenames (full digest verified on read).
_NAME_DIGEST_CHARS = 16

#: Directory shape this store owns; disjoint from the engine cache's
#: ``engine-v*`` shape, so each tier's scan/prune can never touch the
#: other's records (or anything else living beside the cache).
_TAG_DIR_RE = re.compile(r"^analytic-v\d+-[0-9a-f]{12}$")


class AnalyticStore:
    """Directory-backed store of model-synthesized cell records.

    The API mirrors :class:`~repro.runtime.cache.ResultCache` (same key
    triple, same hit/miss/store counters) so the runtime can layer the
    two tiers symmetrically — but a record round-tripped through one can
    never be served by the other: disjoint tag directories, and the tag
    inside each record is verified on read.
    """

    def __init__(self, cache_dir: str | os.PathLike[str]):
        self.root = Path(cache_dir) / ANALYTIC_SCHEMA_TAG
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, workload: str, scale_tok: str, digest: str) -> Path:
        name = f"s{scale_tok}__{digest[:_NAME_DIGEST_CHARS]}.json"
        return self.root / workload / name

    def get(
        self, workload: str, scale_tok: str, digest: str
    ) -> SimulationResult | None:
        """The stored analytic result, or ``None`` on miss/corruption."""
        path = self._path(workload, scale_tok, digest)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            record = None
        if not isinstance(record, dict):
            record = None
        if record is None:
            self.misses += 1
            return None
        if (
            record.get("schema") != ANALYTIC_SCHEMA_TAG
            or record.get("config_digest") != digest
            or record.get("workload") != workload
            or record.get("scale") != scale_tok
            or not isinstance(record.get("raw"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return SimulationResult(
            workload=record["workload"],
            mechanism=record.get("mechanism", ""),
            raw=record["raw"],
        )

    def put(
        self,
        workload: str,
        scale_tok: str,
        digest: str,
        result: SimulationResult,
    ) -> None:
        """Atomically persist one analytic record."""
        path = self._path(workload, scale_tok, digest)
        record = {
            "schema": ANALYTIC_SCHEMA_TAG,
            "workload": workload,
            "scale": scale_tok,
            "config_digest": digest,
            "mechanism": result.mechanism,
            "raw": result.raw,
        }
        try:
            atomic_write_json(path, record)
        except OSError:
            return  # same degrade-to-no-caching contract as the exact cache
        self.stores += 1


def scan_analytic(cache_dir: str | os.PathLike[str]) -> list[CacheTagInfo]:
    """Per-analytic-tag record counts and sizes under ``cache_dir``."""
    root = Path(cache_dir)
    infos: list[CacheTagInfo] = []
    if not root.is_dir():
        return infos
    for tag_dir in sorted(
        p for p in root.iterdir() if p.is_dir() and _TAG_DIR_RE.match(p.name)
    ):
        records = 0
        size = 0
        for path in tag_dir.rglob("*.json"):
            if not path.is_file():
                continue
            records += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        infos.append(
            CacheTagInfo(
                tag=tag_dir.name,
                records=records,
                size_bytes=size,
                current=tag_dir.name == ANALYTIC_SCHEMA_TAG,
                loose_records=records,
            )
        )
    infos.sort(key=lambda i: (not i.current, i.tag))
    return infos


def prune_analytic(
    cache_dir: str | os.PathLike[str],
    schema_tag: str | None = None,
    dry_run: bool = False,
) -> list[CacheTagInfo]:
    """Delete stale analytic-tag directories (same contract as the cache).

    Without ``schema_tag``, every analytic tag except the current one is
    removed; with it, exactly that tag. Only directories matching the
    analytic tag shape are ever considered, so this can never delete
    exact-engine records however the two tiers share a cache directory.
    """
    root = Path(cache_dir)
    removed: list[CacheTagInfo] = []
    for info in scan_analytic(root):
        if schema_tag is None:
            if info.current:
                continue
        elif info.tag != schema_tag:
            continue
        if dry_run:
            removed.append(info)
            continue
        tag_dir = root / info.tag
        shutil.rmtree(tag_dir, ignore_errors=True)
        if not tag_dir.exists():
            removed.append(info)
    return removed
