"""Closed-form per-series performance model with an empirical error bound.

The exact engine's response over the (LLC round trip, BTB capacity) plane
is smooth for a fixed (workload, mechanism, everything-else) *series*:
CPI grows linearly in the round trip ``L`` (every uncovered miss drags in
a full trip) and in the BTB-pressure feature ``p``
(:meth:`~repro.workloads.profiles.WorkloadProfile.btb_pressure`), with an
interaction term because BTB-miss-induced stalls are themselves paid in
round trips. So each series is fit with ordinary least squares on the
four-term basis::

    CPI(L, p) = c0 + c1·L + c2·p + c3·L·p

calibrated against a small grid of **anchor** cells the exact engine
actually simulated (the lumos idiom: a closed-form model with scaling
factors fit from reference points). Total stall cycles are fit on the
same basis; retirement count and the stall seq/cond/uncond split are
carried over from the anchors (both are axis-invariant within a series
to first order).

**Error bound.** Each fit carries an empirical relative-error bound from
leave-one-out cross-validation over its own anchors: refit without one
anchor, predict it, record the relative CPI error; the bound is the worst
held-out error times a safety factor plus a floor. It is an *empirical*
bound — interpolated cells sit inside the anchor hull where the LOO
probes are hardest, and ``tests/test_analytic.py`` asserts it holds
against exact ground truth for every mechanism. Speedups divide two
modeled CPIs, so their bound composes multiplicatively
(:func:`combined_speedup_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.results import SimulationResult

#: Basis size of the per-series model (1, L, p, L·p).
N_FEATURES = 4

#: Multiplier applied to the worst leave-one-out error. LOO probes are
#: pessimistic for interpolation (the refit loses a hull corner), but a
#: bound is only as honest as its margin for the cells nobody held out.
_BOUND_SAFETY = 2.0

#: Additive floor so a suspiciously clean calibration (anchors that
#: happen to be collinear with the model) never reports a ~0% bound.
_BOUND_FLOOR = 0.01

#: The three stall counters the exact engine splits stalls into.
_STALL_KEYS = ("stall_seq", "stall_cond", "stall_uncond")


class AnalyticFitError(Exception):
    """A series cannot be modeled (degenerate anchors); run it exactly."""


@dataclass(frozen=True)
class AnchorPoint:
    """One calibrated reference cell: its axes and its exact result."""

    latency: float
    pressure: float
    result: SimulationResult


def _features(latency: float, pressure: float) -> tuple[float, ...]:
    return (1.0, latency, pressure, latency * pressure)


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (stdlib-only)."""
    n = len(rhs)
    aug = [list(row) + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise AnalyticFitError(
                "singular normal equations: anchor axes do not span the basis"
            )
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(col + 1, n):
            factor = aug[row][col] / aug[col][col]
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    coeffs = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = aug[row][n] - sum(aug[row][k] * coeffs[k] for k in range(row + 1, n))
        coeffs[row] = acc / aug[row][row]
    return coeffs


def _lstsq(
    points: Sequence[tuple[float, float]], values: Sequence[float]
) -> tuple[float, ...]:
    """Least-squares coefficients via the normal equations (4×4 solve)."""
    xtx = [[0.0] * N_FEATURES for _ in range(N_FEATURES)]
    xty = [0.0] * N_FEATURES
    for (latency, pressure), value in zip(points, values):
        row = _features(latency, pressure)
        for i in range(N_FEATURES):
            xty[i] += row[i] * value
            for j in range(N_FEATURES):
                xtx[i][j] += row[i] * row[j]
    return tuple(_solve(xtx, xty))


def _dot(coeffs: tuple[float, ...], features: tuple[float, ...]) -> float:
    return sum(c * f for c, f in zip(coeffs, features))


def _loo_bound(
    points: Sequence[tuple[float, float]], values: Sequence[float]
) -> float:
    """Leave-one-out worst relative error, safety-scaled and floored."""
    worst = 0.0
    for hold in range(len(points)):
        rest_points = [p for i, p in enumerate(points) if i != hold]
        rest_values = [v for i, v in enumerate(values) if i != hold]
        coeffs = _lstsq(rest_points, rest_values)
        predicted = _dot(coeffs, _features(*points[hold]))
        actual = values[hold]
        if actual > 0.0:
            worst = max(worst, abs(predicted - actual) / actual)
    return worst * _BOUND_SAFETY + _BOUND_FLOOR


@dataclass(frozen=True)
class SeriesFit:
    """A calibrated series model: predict any cell on the series' plane."""

    workload: str
    mechanism: str
    cpi_coeffs: tuple[float, ...]
    stall_coeffs: tuple[float, ...]
    #: Retired-instruction count (axis-invariant: the measured trace
    #: window is fixed per workload+scale), carried from the anchors.
    retired: float
    #: Mean anchor shares splitting total stall into seq/cond/uncond.
    stall_fracs: tuple[float, float, float]
    #: Self-reported relative CPI error bound (LOO-derived, see module doc).
    rel_err_bound: float
    n_anchors: int
    latency_range: tuple[float, float]
    pressure_range: tuple[float, float]

    def in_hull(self, latency: float, pressure: float) -> bool:
        """Whether a cell interpolates (bounds only cover the anchor hull)."""
        lat_lo, lat_hi = self.latency_range
        pre_lo, pre_hi = self.pressure_range
        return lat_lo <= latency <= lat_hi and pre_lo <= pressure <= pre_hi

    def predict(self, latency: float, pressure: float) -> SimulationResult:
        """Synthesize one analytic cell result for these axes.

        The raw dict carries the same counters the sweep/experiment layer
        reads (cycles, retirement, the stall split) plus ``analytic``
        marker keys — the record is self-describing about its fidelity
        and its error bound wherever it travels.
        """
        row = _features(latency, pressure)
        cpi = max(1e-9, _dot(self.cpi_coeffs, row))
        stall = max(0.0, _dot(self.stall_coeffs, row))
        raw: dict[str, float] = {
            "cycles": cpi * self.retired,
            "retired_instrs": self.retired,
            "analytic": 1.0,
            "analytic_rel_err_bound": self.rel_err_bound,
        }
        for key, frac in zip(_STALL_KEYS, self.stall_fracs):
            raw[key] = stall * frac
        return SimulationResult(
            workload=self.workload, mechanism=self.mechanism, raw=raw
        )


def fit_series(
    workload: str, mechanism: str, anchors: Sequence[AnchorPoint]
) -> SeriesFit:
    """Calibrate one series model from its exact anchor results.

    Needs at least ``N_FEATURES + 1`` anchors so the leave-one-out
    refits stay determined; degenerate anchor geometry raises
    :class:`AnalyticFitError` (the caller falls back to exact runs).
    """
    if len(anchors) < N_FEATURES + 1:
        raise AnalyticFitError(
            f"need >= {N_FEATURES + 1} anchors to fit and cross-validate, "
            f"got {len(anchors)}"
        )
    points = [(a.latency, a.pressure) for a in anchors]
    cpis: list[float] = []
    stalls: list[float] = []
    for anchor in anchors:
        retired = anchor.result.instructions
        if retired <= 0:
            raise AnalyticFitError(
                f"anchor for {workload!r}/{mechanism!r} retired no instructions"
            )
        cpis.append(anchor.result.cycles / retired)
        stalls.append(float(anchor.result.stall_cycles))
    cpi_coeffs = _lstsq(points, cpis)
    stall_coeffs = _lstsq(points, stalls)
    rel_err_bound = _loo_bound(points, cpis)
    totals = [0.0, 0.0, 0.0]
    for anchor in anchors:
        for i, key in enumerate(_STALL_KEYS):
            totals[i] += float(anchor.result.raw.get(key, 0.0))
    grand = sum(totals)
    fracs = (
        tuple(t / grand for t in totals) if grand > 0.0 else (0.0, 0.0, 0.0)
    )
    retired_mean = sum(a.result.instructions for a in anchors) / len(anchors)
    lats = [a.latency for a in anchors]
    pressures = [a.pressure for a in anchors]
    return SeriesFit(
        workload=workload,
        mechanism=mechanism,
        cpi_coeffs=cpi_coeffs,
        stall_coeffs=stall_coeffs,
        retired=retired_mean,
        stall_fracs=(fracs[0], fracs[1], fracs[2]),
        rel_err_bound=rel_err_bound,
        n_anchors=len(anchors),
        latency_range=(min(lats), max(lats)),
        pressure_range=(min(pressures), max(pressures)),
    )


def is_analytic(result: SimulationResult) -> bool:
    """Whether a result was synthesized by the model (vs exact-engine)."""
    return bool(result.raw.get("analytic"))


def reported_bound(result: SimulationResult) -> float:
    """A result's self-reported relative CPI error bound (0 for exact)."""
    return float(result.raw.get("analytic_rel_err_bound", 0.0))


def combined_speedup_bound(mechanism_bound: float, baseline_bound: float) -> float:
    """Relative error bound of a ratio of two independently-bounded CPIs.

    ``speedup = CPI_base / CPI_mech``; if each CPI is within relative
    error ``b`` of truth, the ratio is within ``(1+b1)(1+b2) - 1``.
    """
    return (1.0 + mechanism_bound) * (1.0 + baseline_bound) - 1.0
