"""On-disk format fingerprinting for the schema-tag drift rule (RPL004).

The engine's :data:`~repro.runtime.cache.SCHEMA_TAG` and the trace
store's tag fingerprint *semantic* sources automatically — but both
deliberately exclude the ``runtime`` layer from their fingerprint, and
the broker queue and sweep manifests carry plain hand-bumped tags. So
the exact constants that define what is **on disk** — record field
sets, the queue filename grammar (including the ``__w`` cost token),
the shard filename, the trace-store magic — have no drift protection
at all: change one, forget the tag bump, and new code silently
misreads (or silently orphans) old records.

This module extracts those *format facts* straight from the AST:

* literal constants (``SHARD_NAME``, ``_MAGIC``, ``_NAME_DIGEST_CHARS``),
* filename-grammar functions (``_job_filename`` / ``_parse_job_name`` /
  ``_path`` / ``manifest_path``), fingerprinted by a docstring-stripped
  ``ast.dump`` so comments and formatting never count as drift,
* the string keys of every record dict a writer builds,
* the lifecycle directory-name regexes.

Each fact group hashes to a 12-hex fingerprint that is committed next to
the manual tag in ``schema_baseline.json``. RPL004 recomputes the facts
and compares: a changed fingerprint under an unchanged tag means "you
changed the on-disk format — bump the tag"; a changed tag means "refresh
the baseline" (``python -m repro.devtools baseline``). Either way the
change is loud, reviewed, and recorded.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from .sources import LintContext, SourceFile


@dataclass(frozen=True)
class GroupSpec:
    """What to fingerprint for one on-disk format."""

    group: str
    #: Package-relative module holding the format (and its tag constant).
    file: str
    tag_const: str
    #: Literal module constants recorded verbatim.
    consts: tuple[str, ...] = ()
    #: ``NAME = re.compile(...)`` assignments, fingerprinted by pattern AST.
    regexes: tuple[str, ...] = ()
    #: Functions whose bodies *are* the format (filename grammars, parsers).
    funcs: tuple[str, ...] = ()
    #: Functions whose dict-literal keys are the record field sets.
    dict_key_funcs: tuple[str, ...] = ()
    #: Extra ``(module, const names)`` contributing to this group.
    extra_consts: tuple[tuple[str, tuple[str, ...]], ...] = ()


GROUPS: tuple[GroupSpec, ...] = (
    GroupSpec(
        group="engine-cache",
        file="runtime/cache.py",
        tag_const="_SCHEMA_MAJOR",
        consts=("_NAME_DIGEST_CHARS",),
        regexes=("_TAG_DIR_RE", "_LOOSE_NAME_RE"),
        funcs=("_path",),
        dict_key_funcs=("put",),
        extra_consts=(("runtime/shards.py", ("SHARD_NAME",)),),
    ),
    GroupSpec(
        group="broker-queue",
        file="runtime/broker.py",
        tag_const="BROKER_SCHEMA",
        funcs=("_job_filename", "_parse_job_name", "job_id"),
        dict_key_funcs=("job_spec", "complete", "_fail_terminal"),
    ),
    GroupSpec(
        group="supervisor-state",
        file="runtime/supervisor.py",
        tag_const="SUPERVISOR_SCHEMA",
        consts=("STATUS_SCHEMA", "CELL_STATES"),
        funcs=("cell_job_id",),
        dict_key_funcs=("_state_record", "build_status"),
    ),
    GroupSpec(
        group="trace-store",
        file="workloads/tracestore.py",
        tag_const="_SCHEMA_MAJOR",
        consts=("_MAGIC", "_NAME_DIGEST_CHARS"),
        regexes=("_TAG_DIR_RE",),
        funcs=("_path",),
        dict_key_funcs=("put",),
    ),
    GroupSpec(
        group="sweep-manifest",
        file="experiments/sweeps/manifest.py",
        tag_const="MANIFEST_SCHEMA",
        funcs=("manifest_path",),
        dict_key_funcs=("write_manifest",),
    ),
    GroupSpec(
        group="analytic-store",
        file="analytic/store.py",
        tag_const="_SCHEMA_MAJOR",
        consts=("_NAME_DIGEST_CHARS",),
        regexes=("_TAG_DIR_RE",),
        funcs=("_path",),
        dict_key_funcs=("put",),
    ),
    GroupSpec(
        group="warehouse",
        file="warehouse/core.py",
        tag_const="WAREHOUSE_SCHEMA",
        consts=("DB_NAME", "_DDL"),
        funcs=("db_path",),
    ),
)


# ---------------------------------------------------------------------------
# AST extraction helpers
# ---------------------------------------------------------------------------


def _assignments(tree: ast.Module) -> dict[str, ast.expr]:
    """Module-level ``NAME = value`` (and annotated) assignment values."""
    out: dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                out[node.target.id] = node.value
    return out


def _strip_docstrings(node: ast.AST) -> ast.AST:
    """A copy of ``node`` without docstrings or type annotations.

    Neither is part of what reaches the disk, so neither may count as
    format drift — annotating a writer function must not trip RPL004.
    """
    clone = copy.deepcopy(node)
    for sub in ast.walk(clone):
        body = getattr(sub, "body", None)
        if (
            isinstance(body, list)
            and body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            sub.body = body[1:] or [ast.Pass()]
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sub.returns = None
            for arg in ast.walk(sub.args):
                if isinstance(arg, ast.arg):
                    arg.annotation = None
    return clone


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    """The first (possibly nested/method) function definition named ``name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _dump(node: ast.AST) -> str:
    """Position-independent structural fingerprint input for a node."""
    return ast.dump(_strip_docstrings(node))


def _dict_keys(func: ast.FunctionDef) -> list[str]:
    """Every string key of every dict literal inside ``func``, sorted."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return sorted(keys)


def _const_repr(value_node: ast.expr) -> str:
    try:
        return repr(ast.literal_eval(value_node))
    except ValueError:
        return _dump(value_node)  # f-strings and other computed constants


def _regex_fact(value_node: ast.expr) -> str | None:
    """Fingerprint input for a ``re.compile(<pattern>, ...)`` assignment."""
    if isinstance(value_node, ast.Call) and value_node.args:
        return _dump(value_node.args[0])
    return None


# ---------------------------------------------------------------------------
# Facts and fingerprints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupFacts:
    """Computed format facts of one group in one tree."""

    group: str
    #: Display path and line of the tag constant (findings anchor here).
    rel: str
    line: int
    tag: str
    fingerprint: str
    src: SourceFile


def _collect_group(ctx: LintContext, spec: GroupSpec) -> GroupFacts | None:
    src = ctx.get(spec.file)
    if src is None:
        return None  # synthetic test trees carry only the files under test
    assigns = _assignments(src.tree)
    tag_node = assigns.get(spec.tag_const)
    if tag_node is None:
        return None
    try:
        tag = str(ast.literal_eval(tag_node))
    except ValueError:
        return None
    line = tag_node.lineno
    facts: dict[str, object] = {}
    for name in spec.consts:
        if name in assigns:
            facts[f"const:{name}"] = _const_repr(assigns[name])
    for name in spec.regexes:
        if name in assigns:
            fact = _regex_fact(assigns[name])
            if fact is not None:
                facts[f"regex:{name}"] = fact
    for name in spec.funcs:
        func = _find_function(src.tree, name)
        if func is not None:
            facts[f"func:{name}"] = _dump(func)
    for name in spec.dict_key_funcs:
        func = _find_function(src.tree, name)
        if func is not None:
            facts[f"keys:{name}"] = _dict_keys(func)
    for modrel, names in spec.extra_consts:
        extra = ctx.get(modrel)
        if extra is None:
            continue
        extra_assigns = _assignments(extra.tree)
        for name in names:
            if name in extra_assigns:
                facts[f"const:{modrel}:{name}"] = _const_repr(extra_assigns[name])
    payload = json.dumps(facts, sort_keys=True, separators=(",", ":"))
    fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
    return GroupFacts(
        group=spec.group,
        rel=src.rel,
        line=line,
        tag=tag,
        fingerprint=fingerprint,
        src=src,
    )


def format_facts(ctx: LintContext) -> dict[str, GroupFacts]:
    """Group name → computed facts, for every group present in the tree."""
    out: dict[str, GroupFacts] = {}
    for spec in GROUPS:
        facts = _collect_group(ctx, spec)
        if facts is not None:
            out[facts.group] = facts
    return out


def read_baseline(path: Path) -> dict[str, dict[str, str]]:
    """The committed {group: {tag, fingerprint}} baseline (empty if absent)."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return record if isinstance(record, dict) else {}


def write_baseline(path: Path, facts: dict[str, GroupFacts]) -> None:
    record = {
        group: {"tag": gf.tag, "fingerprint": gf.fingerprint}
        for group, gf in sorted(facts.items())
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
