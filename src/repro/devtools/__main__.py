"""Command-line front end for reprolint.

Subcommands::

    python -m repro.devtools lint        # run every rule; exit 1 on findings
    python -m repro.devtools lint --codes RPL001,RPL004
    python -m repro.devtools baseline    # refresh schema_baseline.json (RPL004)
    python -m repro.devtools rules       # list registered rules

``lint`` prints one ``path:line: RPLxxx message`` line per finding plus a
per-rule count summary (the CI job forwards that summary to the GitHub
step summary). ``baseline`` recomputes the on-disk format fingerprints
and rewrites the committed baseline file — the second half of every
legitimate schema change (bump the tag, then run this).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from . import RULES, lint_findings
from .formats import format_facts, write_baseline
from .sources import load_context

#: devtools lives at src/repro/devtools — the package is one level up.
_PACKAGE_ROOT = Path(__file__).resolve().parents[1]


def _parse_codes(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    codes = tuple(code.strip() for code in raw.split(",") if code.strip())
    unknown = [code for code in codes if code not in RULES]
    if unknown:
        valid = ", ".join(sorted(RULES))
        raise SystemExit(
            f"unknown rule code(s): {', '.join(unknown)} (valid: {valid})"
        )
    return codes


def _baseline_path(args: argparse.Namespace) -> Path | None:
    return Path(args.baseline) if args.baseline else None


def _cmd_lint(args: argparse.Namespace) -> int:
    package_root = Path(args.package_root) if args.package_root else _PACKAGE_ROOT
    ctx = load_context(package_root, schema_baseline=_baseline_path(args))
    findings = lint_findings(ctx, codes=_parse_codes(args.codes))
    for finding in findings:
        print(finding.format())
    counts = Counter(finding.code for finding in findings)
    if findings:
        print()
        for code in sorted(counts):
            print(f"{code} ({RULES[code].name}): {counts[code]}")
        print(f"reprolint: {len(findings)} finding(s)")
        return 1
    print("reprolint: clean")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    package_root = Path(args.package_root) if args.package_root else _PACKAGE_ROOT
    ctx = load_context(package_root, schema_baseline=_baseline_path(args))
    facts = format_facts(ctx)
    if not facts:
        print("reprolint: no format groups found; baseline unchanged")
        return 1
    write_baseline(ctx.schema_baseline, facts)
    for group, gf in sorted(facts.items()):
        print(f"{group}: tag={gf.tag} fingerprint={gf.fingerprint}")
    print(f"wrote {ctx.schema_baseline}")
    return 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code} {rule.name}: {rule.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="reprolint: invariant checks for the repro runtime",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the invariant checks")
    lint.add_argument(
        "--codes",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--package-root",
        help="package directory to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--baseline",
        help="schema baseline file (default: the committed schema_baseline.json)",
    )
    lint.set_defaults(func=_cmd_lint)

    baseline = sub.add_parser(
        "baseline", help="recompute and write schema_baseline.json (RPL004)"
    )
    baseline.add_argument(
        "--package-root",
        help="package directory to fingerprint (default: the repro package)",
    )
    baseline.add_argument(
        "--baseline",
        help="schema baseline file to write (default: the committed one)",
    )
    baseline.set_defaults(func=_cmd_baseline)

    rules = sub.add_parser("rules", help="list registered rules")
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
