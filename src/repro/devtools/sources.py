"""Source loading, suppression parsing and the lint context.

The linter works on a parsed snapshot of the tree: every ``*.py`` file
under the ``repro`` package root becomes one :class:`SourceFile` carrying
its AST and its parsed suppression comments. Rules never touch the
filesystem directly — they ask the :class:`LintContext` for files by
package-relative path — which is what lets the rule tests run against
tiny synthetic trees instead of the live repository.

Suppression syntax (documented in ``docs/devtools.md``)::

    value = os.environ.get(name)  # reprolint: disable=RPL001
    # reprolint: disable-file=RPL002,RPL004

``disable=`` silences the named codes on its own line; ``disable-file=``
(anywhere in the file, conventionally at the top) silences them for the
whole file. ``disable=all`` exists for generated code but should never
appear in hand-written sources.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: One suppression comment: ``# reprolint: disable=RPL001[,RPL002]``.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<codes>(?:all|RPL\d{3})(?:\s*,\s*(?:all|RPL\d{3}))*)"
)


def parse_suppressions(text: str) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> codes, file-wide codes)`` from a module's source text."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group("codes").split(",")}
        if match.group("scope") == "disable-file":
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


@dataclass(frozen=True)
class Finding:
    """One rule violation, pointing at a repo-relative file and line."""

    rel: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.rel}:{self.line}: {self.code} {self.message}"


@dataclass
class SourceFile:
    """One parsed module of the tree under lint."""

    path: Path
    #: Path relative to the *package* root, posix-style — the stable name
    #: rules key on (e.g. ``runtime/cache.py``).
    modrel: str
    #: Path to display in findings (repo-relative when known).
    rel: str
    text: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    def suppressed(self, code: str, line: int) -> bool:
        if code in self.file_suppressions or "all" in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(line, ())
        return code in codes or "all" in codes


@dataclass
class LintContext:
    """Everything a rule may look at."""

    #: The ``repro`` package directory being linted.
    package_root: Path
    #: The repository root (docs live here); equals ``package_root`` in
    #: synthetic test trees without one.
    repo_root: Path
    sources: list[SourceFile]
    #: The committed RPL004 fingerprint baseline (JSON file).
    schema_baseline: Path
    _by_modrel: dict[str, SourceFile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_modrel = {src.modrel: src for src in self.sources}

    def get(self, modrel: str) -> SourceFile | None:
        """The parsed module at a package-relative path, if present."""
        return self._by_modrel.get(modrel)

    def finding(
        self, src: SourceFile, line: int, code: str, message: str
    ) -> Finding | None:
        """A :class:`Finding` unless a suppression comment silences it."""
        if src.suppressed(code, line):
            return None
        return Finding(rel=src.rel, line=line, code=code, message=message)


def load_context(
    package_root: Path,
    repo_root: Path | None = None,
    schema_baseline: Path | None = None,
) -> LintContext:
    """Parse every module under ``package_root`` into a lint context.

    A file that does not parse is reported by the lint driver as a hard
    error before any rule runs, so rules may assume every tree is valid.
    """
    package_root = package_root.resolve()
    if repo_root is None:
        # src/repro -> the directory containing src/ is the repo root.
        repo_root = (
            package_root.parents[1]
            if package_root.parent.name == "src"
            else package_root
        )
    sources: list[SourceFile] = []
    for path in sorted(package_root.rglob("*.py")):
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        per_line, per_file = parse_suppressions(text)
        try:
            rel = str(path.relative_to(repo_root))
        except ValueError:
            rel = str(path)
        sources.append(
            SourceFile(
                path=path,
                modrel=path.relative_to(package_root).as_posix(),
                rel=rel,
                text=text,
                tree=tree,
                line_suppressions=per_line,
                file_suppressions=per_file,
            )
        )
    if schema_baseline is None:
        schema_baseline = Path(__file__).resolve().parent / "schema_baseline.json"
    return LintContext(
        package_root=package_root,
        repo_root=repo_root,
        sources=sources,
        schema_baseline=schema_baseline,
    )
