"""reprolint — AST-driven invariant checking for the repro runtime.

``python -m repro.devtools lint`` runs every registered rule (RPL001-
RPL007, see :mod:`repro.devtools.rules`) over ``src/repro`` and prints
findings as ``path:line: RPLxxx message``, exiting nonzero when any
survive suppression. ``docs/devtools.md`` documents each rule's
invariant, the historical bug behind it, the suppression syntax, and the
recipe for adding a rule.

The public entry point for tests is :func:`run_lint`, which accepts an
arbitrary package root so rule fixtures can lint tiny synthetic trees.
"""

from __future__ import annotations

from pathlib import Path

from .rules import RULES, Rule
from .sources import Finding, LintContext, load_context

__all__ = [
    "Finding",
    "LintContext",
    "RULES",
    "Rule",
    "lint_findings",
    "load_context",
    "run_lint",
]


def lint_findings(ctx: LintContext, codes: tuple[str, ...] | None = None) -> list[Finding]:
    """Run the selected rules (default: all) over a loaded context."""
    selected = codes if codes is not None else tuple(sorted(RULES))
    findings: list[Finding] = []
    for code in selected:
        findings.extend(RULES[code].check(ctx))
    findings.sort(key=lambda f: (f.rel, f.line, f.code, f.message))
    return findings


def run_lint(
    package_root: Path,
    repo_root: Path | None = None,
    schema_baseline: Path | None = None,
    codes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Lint the package rooted at ``package_root`` and return the findings."""
    ctx = load_context(
        package_root, repo_root=repo_root, schema_baseline=schema_baseline
    )
    return lint_findings(ctx, codes=codes)
