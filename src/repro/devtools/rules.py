"""The reprolint rules (RPL001-RPL007).

Every rule encodes an invariant this repository has already paid to
learn, as a pure function ``LintContext -> list[Finding]``. Rules are
registered in :data:`RULES` (in code order) and documented — invariant,
historical bug, example violation — in ``docs/devtools.md``; the lint
driver in :mod:`repro.devtools` applies suppressions and sorting.

Rules must tolerate partial trees: the fixture tests run them against
synthetic packages containing only the files under test, so a rule that
needs ``core/mechanisms.py`` simply returns no findings when the tree
has no such file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable

from .formats import format_facts, read_baseline
from .sources import Finding, LintContext, SourceFile

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _module_assignments(tree: ast.Module) -> dict[str, ast.expr]:
    out: dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                out[node.target.id] = node.value
    return out


def _literal_strings(node: ast.expr | None) -> tuple[str, ...] | None:
    """The string elements of a literal tuple/list, or ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return tuple(out)


def _dict_string_keys(node: ast.expr | None) -> tuple[str, ...] | None:
    """The string keys of a dict literal, or ``None``."""
    if not isinstance(node, ast.Dict):
        return None
    out = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out.append(key.value)
        else:
            return None
    return tuple(out)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# ---------------------------------------------------------------------------
# RPL001 — environment reads outside repro.envopts
# ---------------------------------------------------------------------------

#: The one module allowed to touch ``os.environ`` directly.
_ENV_ACCESSOR = "envopts.py"


def rule_env_reads(ctx: LintContext) -> list[Finding]:
    """``os.environ`` / ``os.getenv`` anywhere but the registered accessor.

    Option precedence (flag > env > default) is asserted in exactly one
    resolver per option; a raw environment read anywhere else creates a
    second resolution point that silently diverges — the bug class PR 4
    fixed. All reads go through :mod:`repro.envopts`.
    """
    findings: list[Finding] = []

    def flag(src: SourceFile, node: ast.AST, what: str) -> None:
        finding = ctx.finding(
            src,
            node.lineno,
            "RPL001",
            f"{what} outside repro.envopts: route REPRO_* reads through "
            f"repro.envopts.read_env/env_str (the registered accessor)",
        )
        if finding is not None:
            findings.append(finding)

    for src in ctx.sources:
        if src.modrel == _ENV_ACCESSOR:
            continue
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                    and node.attr in ("environ", "getenv")
                ):
                    flag(src, node, f"os.{node.attr} use")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os":
                    for alias in node.names:
                        if alias.name in ("environ", "getenv"):
                            flag(src, node, f"`from os import {alias.name}`")
    return findings


# ---------------------------------------------------------------------------
# RPL002 — durable-state writes outside the atomic-write helper
# ---------------------------------------------------------------------------

#: Modules whose files ARE the durable state; every write in them must go
#: through repro.runtime.atomicio (which is itself the one exemption).
_DURABLE_MODULES = (
    "runtime/cache.py",
    "runtime/broker.py",
    "runtime/shards.py",
    "runtime/supervisor.py",
    "workloads/tracestore.py",
    "experiments/sweeps/manifest.py",
    "analytic/store.py",
    "warehouse/core.py",
    "warehouse/gate.py",
)

_WRITE_MODES = re.compile(r"[wax+]")


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode of an ``open(...)``-shaped call, if present."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    elif node.args or isinstance(node.func, ast.Attribute):
        # path.open(mode) puts mode first; builtin open(path, mode) second.
        if isinstance(node.func, ast.Attribute) and node.args:
            mode = node.args[0]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def rule_atomic_writes(ctx: LintContext) -> list[Finding]:
    """Raw write idioms inside the cache/queue/shard/trace-store modules.

    Durable records must be written via :mod:`repro.runtime.atomicio`
    (temp file in the destination directory + ``os.replace``); a plain
    ``open(.., "w")`` or ``write_text`` can leave a torn record that a
    concurrent reader then consumes. PR 5's crash-safety guarantees rest
    entirely on this idiom.
    """
    findings: list[Finding] = []

    def flag(src: SourceFile, node: ast.AST, what: str) -> None:
        finding = ctx.finding(
            src,
            node.lineno,
            "RPL002",
            f"{what} in a durable-state module: write through "
            f"repro.runtime.atomicio (atomic_writer / atomic_write_json)",
        )
        if finding is not None:
            findings.append(finding)

    for src in ctx.sources:
        if src.modrel not in _DURABLE_MODULES:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "open" and not (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                mode = _open_mode(node)
                if mode is not None and _WRITE_MODES.search(mode):
                    flag(src, node, f"open(..., {mode!r})")
            elif name in ("write_text", "write_bytes"):
                flag(src, node, f".{name}() call")
            elif name == "mkstemp":
                flag(src, node, "hand-rolled tempfile.mkstemp")
            elif name == "replace" and (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                flag(src, node, "hand-rolled os.replace")
    return findings


# ---------------------------------------------------------------------------
# RPL003 — confighash exhaustiveness over the frozen config trees
# ---------------------------------------------------------------------------

#: (module, root dataclass) pairs whose whole field tree must canonicalize.
_DIGEST_ROOTS = (
    ("config.py", "SimConfig"),
    ("workloads/profiles.py", "WorkloadProfile"),
)

_CANONICAL_SCALARS = ("int", "float", "str", "bool")


def _dataclasses_in(tree: ast.Module) -> dict[str, ast.ClassDef]:
    out: dict[str, ast.ClassDef] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr
                if isinstance(target, ast.Attribute)
                else None
            )
            if name == "dataclass":
                out[node.name] = node
                break
    return out


def _is_classvar(annotation: ast.expr) -> bool:
    target = (
        annotation.value if isinstance(annotation, ast.Subscript) else annotation
    )
    return (
        isinstance(target, ast.Name)
        and target.id == "ClassVar"
        or isinstance(target, ast.Attribute)
        and target.attr == "ClassVar"
    )


def _annotation_ok(
    node: ast.expr, classes: dict[str, ast.ClassDef], reached: set[str]
) -> bool:
    """Can a value of this annotated type always be canonicalized?"""
    if isinstance(node, ast.Name):
        if node.id in _CANONICAL_SCALARS:
            return True
        if node.id in classes:
            reached.add(node.id)
            return True
        return False
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return True
        if isinstance(node.value, str):  # forward reference
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return False
            return _annotation_ok(parsed, classes, reached)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_ok(node.left, classes, reached) and _annotation_ok(
            node.right, classes, reached
        )
    if isinstance(node, ast.Subscript):
        if not (isinstance(node.value, ast.Name) and node.value.id == "tuple"):
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_ok(el, classes, reached) for el in elements)
    return False


def rule_confighash_exhaustive(ctx: LintContext) -> list[Finding]:
    """Un-canonicalizable fields reachable from the digest root dataclasses.

    The cache key digests the *entire* config tree through
    ``repro.runtime.confighash.canonicalize``; a field whose type that
    walker cannot handle would make a freshly added knob raise — or
    worse, a hand-special-cased one go silently unhashed, the PR 1
    collision bug class. Every field must be a canonicalizable scalar,
    an optional/tuple of such, or another frozen dataclass in the tree.
    """
    findings: list[Finding] = []
    for modrel, root in _DIGEST_ROOTS:
        src = ctx.get(modrel)
        if src is None:
            continue
        classes = _dataclasses_in(src.tree)
        if root not in classes:
            continue
        pending = [root]
        visited: set[str] = set()
        while pending:
            cls_name = pending.pop()
            if cls_name in visited:
                continue
            visited.add(cls_name)
            cls = classes[cls_name]
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                if _is_classvar(stmt.annotation):
                    continue
                reached: set[str] = set()
                if not _annotation_ok(stmt.annotation, classes, reached):
                    finding = ctx.finding(
                        src,
                        stmt.lineno,
                        "RPL003",
                        f"field {cls_name}.{stmt.target.id}: annotation "
                        f"`{ast.unparse(stmt.annotation)}` is not "
                        f"canonicalizable by repro.runtime.confighash "
                        f"(allowed: int/float/str/bool, X | None, "
                        f"tuple[...] of these, nested dataclasses)",
                    )
                    if finding is not None:
                        findings.append(finding)
                pending.extend(reached - visited)
    return findings


# ---------------------------------------------------------------------------
# RPL004 — on-disk format drift without a schema-tag bump
# ---------------------------------------------------------------------------


def rule_schema_drift(ctx: LintContext) -> list[Finding]:
    """Format facts changed relative to the committed fingerprint baseline.

    See :mod:`repro.devtools.formats` for what is fingerprinted. The
    committed ``schema_baseline.json`` records (tag, fingerprint) per
    format group; any divergence is an error whose message says which of
    the two legal moves to make.
    """
    findings: list[Finding] = []
    facts = format_facts(ctx)
    if not facts:
        return findings
    baseline = read_baseline(ctx.schema_baseline)
    for group, gf in sorted(facts.items()):
        base = baseline.get(group)
        if base is None:
            finding = ctx.finding(
                gf.src,
                gf.line,
                "RPL004",
                f"format group {group!r} has no committed fingerprint "
                f"baseline; run `python -m repro.devtools baseline` and "
                f"commit schema_baseline.json",
            )
        elif (
            base.get("fingerprint") == gf.fingerprint
            and base.get("tag") == gf.tag
        ):
            continue
        elif base.get("tag") == gf.tag:
            finding = ctx.finding(
                gf.src,
                gf.line,
                "RPL004",
                f"on-disk format facts of {group!r} changed but its schema "
                f"tag is still {gf.tag!r}: bump the tag (old records must "
                f"be orphaned, not misread), then run "
                f"`python -m repro.devtools baseline`",
            )
        else:
            finding = ctx.finding(
                gf.src,
                gf.line,
                "RPL004",
                f"schema tag of {group!r} changed "
                f"({base.get('tag')!r} -> {gf.tag!r}): refresh the committed "
                f"baseline with `python -m repro.devtools baseline`",
            )
        if finding is not None:
            findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# RPL005 — counter-namespace collisions in stage compositions
# ---------------------------------------------------------------------------


def _stage_counter_keys(ctx: LintContext) -> dict[str, tuple[str, ...]]:
    """Stage class -> counter keys, with single-inheritance resolution."""
    declared: dict[str, tuple[str, ...] | None] = {}
    bases: dict[str, str | None] = {}
    for src in ctx.sources:
        if not src.modrel.startswith("core/stages/"):
            continue
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            base = None
            if node.bases and isinstance(node.bases[0], ast.Name):
                base = node.bases[0].id
            bases[node.name] = base
            keys: tuple[str, ...] | None = None
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "counters":
                    collected: list[str] = []
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Dict):
                            for key in sub.keys:
                                if isinstance(key, ast.Constant) and isinstance(
                                    key.value, str
                                ):
                                    collected.append(key.value)
                    keys = tuple(collected)
            declared[node.name] = keys
    resolved: dict[str, tuple[str, ...]] = {}

    def resolve(name: str, chain: set[str]) -> tuple[str, ...]:
        if name in resolved:
            return resolved[name]
        keys = declared.get(name)
        if keys is None:
            base = bases.get(name)
            keys = (
                resolve(base, chain | {name})
                if base in declared and base not in chain
                else ()
            )
        resolved[name] = keys
        return keys

    for name in declared:
        resolve(name, set())
    return resolved


def _reserved_counter_keys(ctx: LintContext) -> dict[str, str]:
    """Counter key -> owner, for keys the aggregator itself populates."""
    reserved: dict[str, str] = {}
    results = ctx.get("core/results.py")
    if results is not None:
        for node in ast.walk(results.tree):
            if isinstance(node, ast.FunctionDef) and node.name == (
                "aggregate_stage_counters"
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        for key in sub.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                reserved[key.value] = "aggregate_stage_counters"
                    elif isinstance(sub, ast.Subscript) and isinstance(
                        sub.slice, ast.Constant
                    ):
                        if isinstance(sub.slice.value, str):
                            reserved[sub.slice.value] = "aggregate_stage_counters"
    hierarchy = ctx.get("memory/hierarchy.py")
    if hierarchy is not None:
        for node in ast.walk(hierarchy.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "counters":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        for key in sub.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                reserved[key.value] = "MemoryHierarchy.counters"
    return reserved


def rule_counter_collisions(ctx: LintContext) -> list[Finding]:
    """Colliding counter names inside one ``STAGE_COMPOSERS`` composition.

    ``aggregate_stage_counters`` flattens per-stage ``counters()`` dicts
    with ``dict.update`` — a duplicated key silently overwrites, and a
    stage key matching an aggregator/memory key is clobbered after the
    stages run. Either way a counter vanishes without any error.
    """
    findings: list[Finding] = []
    src = ctx.get("core/mechanisms.py")
    if src is None:
        return findings
    module_funcs = {
        node.name: node
        for node in src.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    stage_keys = _stage_counter_keys(ctx)
    reserved = _reserved_counter_keys(ctx)
    composers = _module_assignments(src.tree).get("STAGE_COMPOSERS")
    if not isinstance(composers, ast.Dict):
        return findings

    def classes_used(func: ast.FunctionDef, seen: set[str]) -> set[str]:
        used: set[str] = set()
        seen = seen | {func.name}
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in stage_keys:
                    used.add(name)
                elif name in module_funcs and name not in seen:
                    used |= classes_used(module_funcs[name], seen)
        return used

    for key_node, value_node in zip(composers.keys, composers.values):
        if not (
            isinstance(key_node, ast.Constant)
            and isinstance(key_node.value, str)
            and isinstance(value_node, ast.Name)
        ):
            continue
        mechanism = key_node.value
        composer = module_funcs.get(value_node.id)
        if composer is None:
            continue
        owners: dict[str, str] = {}
        for cls in sorted(classes_used(composer, set())):
            for counter in stage_keys.get(cls, ()):
                other = owners.get(counter)
                if other is not None and other != cls:
                    finding = ctx.finding(
                        src,
                        key_node.lineno,
                        "RPL005",
                        f"mechanism {mechanism!r}: counter {counter!r} is "
                        f"declared by both {other} and {cls}; "
                        f"aggregate_stage_counters would silently merge "
                        f"them — rename one",
                    )
                    if finding is not None:
                        findings.append(finding)
                else:
                    owners[counter] = cls
                owner = reserved.get(counter)
                if owner is not None:
                    finding = ctx.finding(
                        src,
                        key_node.lineno,
                        "RPL005",
                        f"mechanism {mechanism!r}: stage {cls} counter "
                        f"{counter!r} collides with the {owner} key of the "
                        f"same name — the aggregator would clobber it",
                    )
                    if finding is not None:
                        findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# RPL006 — registry consistency across modules
# ---------------------------------------------------------------------------


def _envopts_choices(ctx: LintContext) -> dict[str, tuple[tuple[str, ...], int]]:
    """Registered option -> (choices literal, line) from envopts.py."""
    src = ctx.get("envopts.py")
    out: dict[str, tuple[tuple[str, ...], int]] = {}
    if src is None:
        return out
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "EnvOption"):
            continue
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        name = node.args[0].value
        for kw in node.keywords:
            if kw.arg == "choices":
                choices = _literal_strings(kw.value)
                if choices is not None:
                    out[name] = (choices, node.lineno)
    return out


def rule_registry_consistency(ctx: LintContext) -> list[Finding]:
    """Registry literals that must agree with each other, checked as sets.

    The mechanism registry (names / traits / composers), the envopts
    ``choices`` documentation against each option's authoritative value
    list, and sweep ``exhibit`` references against the experiments
    registry. Drift here means a CLI accepts a name the engine rejects
    (or documents one that no longer exists).
    """
    findings: list[Finding] = []

    def report(src: SourceFile, line: int, message: str) -> None:
        finding = ctx.finding(src, line, "RPL006", message)
        if finding is not None:
            findings.append(finding)

    def diff(a: tuple[str, ...], b: tuple[str, ...]) -> str:
        extra = sorted(set(a) - set(b))
        missing = sorted(set(b) - set(a))
        parts = []
        if extra:
            parts.append(f"extra: {', '.join(extra)}")
        if missing:
            parts.append(f"missing: {', '.join(missing)}")
        return "; ".join(parts)

    mech = ctx.get("core/mechanisms.py")
    if mech is not None:
        assigns = _module_assignments(mech.tree)
        mechanisms = _literal_strings(assigns.get("MECHANISMS"))
        figure = _literal_strings(assigns.get("FIGURE_MECHANISMS"))
        traits = _dict_string_keys(assigns.get("_TRAITS"))
        composer_node = assigns.get("STAGE_COMPOSERS")
        composers = _dict_string_keys(composer_node)
        if mechanisms is not None:
            if traits is not None and set(traits) != set(mechanisms):
                report(
                    mech,
                    assigns["_TRAITS"].lineno,
                    f"_TRAITS keys disagree with MECHANISMS "
                    f"({diff(traits, mechanisms)})",
                )
            if composers is not None and set(composers) != set(mechanisms):
                report(
                    mech,
                    composer_node.lineno,
                    f"STAGE_COMPOSERS keys disagree with MECHANISMS "
                    f"({diff(composers, mechanisms)})",
                )
            if figure is not None and not set(figure) <= set(mechanisms):
                report(
                    mech,
                    assigns["FIGURE_MECHANISMS"].lineno,
                    f"FIGURE_MECHANISMS is not a subset of MECHANISMS "
                    f"({diff(figure, mechanisms)})",
                )

    choices = _envopts_choices(ctx)
    envopts_src = ctx.get("envopts.py")

    def check_choices(option: str, modrel: str, const: str) -> None:
        if envopts_src is None or option not in choices:
            return
        src = ctx.get(modrel)
        if src is None:
            return
        assigns = _module_assignments(src.tree)
        node = assigns.get(const)
        authoritative = _literal_strings(node)
        if authoritative is None:
            authoritative = _dict_string_keys(node)
        if authoritative is None:
            return
        declared, line = choices[option]
        if set(declared) != set(authoritative):
            report(
                envopts_src,
                line,
                f"{option} choices disagree with {modrel}:{const} "
                f"({diff(declared, authoritative)})",
            )

    check_choices("REPRO_BACKEND", "runtime/executors.py", "BACKEND_NAMES")
    check_choices("REPRO_SCALE", "experiments/common.py", "SCALES")
    check_choices("REPRO_WORKLOAD_SET", "workloads/profiles.py", "PROFILE_SETS")
    check_choices("REPRO_BROKER_SCHEDULER", "runtime/broker.py", "SCHEDULERS")
    check_choices("REPRO_FIDELITY", "analytic/__init__.py", "FIDELITY_NAMES")

    wh_init = ctx.get("warehouse/__init__.py")
    wh_queries = ctx.get("warehouse/queries.py")
    if wh_init is not None and wh_queries is not None:
        names_node = _module_assignments(wh_init.tree).get("QUERY_NAMES")
        names = _literal_strings(names_node)
        registry = _dict_string_keys(
            _module_assignments(wh_queries.tree).get("QUERIES")
        )
        if (
            names_node is not None
            and names is not None
            and registry is not None
            and set(names) != set(registry)
        ):
            report(
                wh_init,
                names_node.lineno,
                f"QUERY_NAMES disagrees with warehouse/queries.py:QUERIES "
                f"({diff(names, registry)})",
            )

    sweeps = ctx.get("experiments/sweeps/__init__.py")
    experiments = ctx.get("experiments/__init__.py")
    if sweeps is not None and experiments is not None:
        exhibits = _dict_string_keys(
            _module_assignments(experiments.tree).get("EXPERIMENTS")
        )
        if exhibits is not None:
            for node in ast.walk(sweeps.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "SweepSpec"
                ):
                    continue
                for kw in node.keywords:
                    if (
                        kw.arg == "exhibit"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                        and kw.value.value not in exhibits
                    ):
                        report(
                            sweeps,
                            kw.value.lineno,
                            f"sweep exhibit {kw.value.value!r} is not a key "
                            f"of repro.experiments.EXPERIMENTS",
                        )
    return findings


# ---------------------------------------------------------------------------
# RPL007 — docs and generator drift
# ---------------------------------------------------------------------------


def rule_docs_drift(ctx: LintContext) -> list[Finding]:
    """Docs that must track code registries, checked structurally.

    The generated-table markers in ``docs/experiments.md`` must exist for
    every block the generator owns (losing a marker silently freezes that
    table), ``docs/devtools.md`` must document every lint rule, and the
    devtools doc must stay linked from the README and architecture doc.
    """
    findings: list[Finding] = []
    root = ctx.repo_root

    def report(rel: str, line: int, message: str) -> None:
        findings.append(Finding(rel=rel, line=line, code="RPL007", message=message))

    generator = root / "scripts" / "generate_docs_tables.py"
    experiments_md = root / "docs" / "experiments.md"
    if generator.is_file() and experiments_md.is_file():
        try:
            gen_tree = ast.parse(generator.read_text())
        except SyntaxError:
            gen_tree = None
        doc_text = experiments_md.read_text()
        blocks = (
            _dict_string_keys(_module_assignments(gen_tree).get("BLOCKS"))
            if gen_tree is not None
            else None
        )
        for block in blocks or ():
            for marker in (
                f"<!-- generated:begin {block} -->",
                f"<!-- generated:end {block} -->",
            ):
                if marker not in doc_text:
                    report(
                        "docs/experiments.md",
                        1,
                        f"missing generated-table marker {marker!r} for "
                        f"block {block!r} owned by "
                        f"scripts/generate_docs_tables.py",
                    )

    devtools_md = root / "docs" / "devtools.md"
    if devtools_md.is_file():
        doc_text = devtools_md.read_text()
        for code in sorted(RULES):
            if code not in doc_text:
                report(
                    "docs/devtools.md",
                    1,
                    f"lint rule {code} is not documented in docs/devtools.md",
                )
        for rel in ("README.md", "docs/architecture.md"):
            path = root / rel
            if path.is_file() and "devtools.md" not in path.read_text():
                report(
                    rel,
                    1,
                    f"{rel} does not link docs/devtools.md (the lint-rule "
                    f"reference must stay discoverable)",
                )
    return findings


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    check: Callable[[LintContext], list[Finding]]


RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "RPL001",
            "env-precedence",
            "REPRO_* environment reads must go through repro.envopts",
            rule_env_reads,
        ),
        Rule(
            "RPL002",
            "atomic-write-discipline",
            "durable-state modules write only via repro.runtime.atomicio",
            rule_atomic_writes,
        ),
        Rule(
            "RPL003",
            "confighash-exhaustiveness",
            "every field reachable from SimConfig/WorkloadProfile "
            "canonicalizes",
            rule_confighash_exhaustive,
        ),
        Rule(
            "RPL004",
            "schema-tag-drift",
            "on-disk format changes require a schema-tag bump + baseline "
            "refresh",
            rule_schema_drift,
        ),
        Rule(
            "RPL005",
            "counter-collisions",
            "stage compositions may not declare colliding counter names",
            rule_counter_collisions,
        ),
        Rule(
            "RPL006",
            "registry-consistency",
            "mechanism/env-option/sweep registries agree with each other",
            rule_registry_consistency,
        ),
        Rule(
            "RPL007",
            "docs-drift",
            "generated-table markers and rule/option docs stay present",
            rule_docs_drift,
        ),
    )
}
