"""Figure 8 — front-end stall cycles covered over the no-prefetch baseline.

Paper: Boomerang covers 61% of stall cycles on average, statistically tied
with Confluence (60%); Boomerang leads on the web workloads (local BPU
state redirects faster than SHIFT's LLC-resident history) and trails on
Oracle/DB2, whose extreme BTB miss rates make Boomerang stall for prefills.
"""

from __future__ import annotations

from ..core.mechanisms import FIGURE_MECHANISMS
from .common import workload_names, ExperimentResult, get_scale
from .grid import MECHANISM_LABELS, run_grid


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    grid = run_grid(scale, workloads=names)
    result = ExperimentResult(
        exhibit="figure8",
        title="Figure 8: front-end stall-cycle coverage over no-prefetch baseline",
        headers=["workload"] + [MECHANISM_LABELS[m] for m in FIGURE_MECHANISMS],
    )
    sums = [0.0] * len(FIGURE_MECHANISMS)
    for name in names:
        base = grid[(name, "none")]
        row: list[object] = [name]
        for i, mech in enumerate(FIGURE_MECHANISMS):
            cov = grid[(name, mech)].coverage_over(base)
            sums[i] += cov
            row.append(cov)
        result.rows.append(row)
    result.rows.append(["avg"] + [s / len(names) for s in sums])
    result.notes.append("paper: Boomerang 61% avg ~ Confluence 60% avg")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
