"""Figure 4 — taken conditional branch jump distance in cache blocks.

Paper: ~92% of all dynamically taken conditional branches jump at most 4
cache blocks, which is why branch-predictor-directed prefetching survives
direction mispredicts (the target block is usually already fetched or on
the fall-through path).
"""

from __future__ import annotations

from ..workloads.trace import taken_conditional_distances
from ..workloads.workload import load_workload
from .common import workload_names, ExperimentResult, get_scale

#: CDF distance buckets reported (in cache blocks), per the paper's x-axis.
DISTANCES = (0, 1, 2, 3, 4, 5, 6, 7, 8)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="figure4",
        title="Figure 4: CDF of taken-conditional jump distance (cache blocks)",
        headers=["workload"] + [f"<={d}" for d in DISTANCES],
    )
    within4 = []
    for name in names:
        workload = load_workload(name, scale=scale.workload_scale)
        histogram = taken_conditional_distances(workload.trace)
        total = sum(histogram.values())
        row: list[object] = [name]
        cumulative = 0
        by_distance = dict(histogram)
        for d in DISTANCES:
            cumulative += by_distance.get(d, 0)
            row.append(cumulative / total if total else 0.0)
        result.rows.append(row)
        within4.append(float(row[1 + DISTANCES.index(4)]))
    avg = sum(within4) / len(within4) if within4 else 0.0
    result.notes.append(
        f"average fraction within 4 blocks = {avg:.1%} (paper: ~92%)"
    )
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
