"""Figure 10 — Boomerang's next-N-block prefetch under a BTB miss.

Paper: next-2-blocks is the best average policy (notably +12% on DB2 over
no prefetch-under-miss); Streaming prefers no speculative blocks at all
(its discarded blocks pollute bandwidth and the prefetch buffer); beyond
two blocks, erroneous prefetches start delaying useful ones.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimConfig
from ..core.mechanisms import make_config
from ..stats import geometric_mean
from .common import (
    workload_names,
    ExperimentResult,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)
#: Next-N policies in paper order.
POLICIES: tuple[int, ...] = (0, 1, 2, 4, 8)

POLICY_LABELS = {0: "None", 1: "1 Block", 2: "2 Blocks", 4: "4 Blocks", 8: "8 Blocks"}


def _policy_config(policy: int) -> SimConfig:
    cfg = make_config("boomerang")
    return replace(cfg, prefetch=replace(cfg.prefetch, throttle_blocks=policy))


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="figure10",
        title="Figure 10: Boomerang speedup vs next-N-block prefetch on BTB miss",
        headers=["workload"] + [POLICY_LABELS[p] for p in POLICIES],
    )
    per_policy: dict[int, list[float]] = {p: [] for p in POLICIES}
    pairs = [(name, baseline_config()) for name in names]
    pairs += [(name, _policy_config(p)) for name in names for p in POLICIES]
    precompute(pairs, scale)
    for name in names:
        base = baseline_for(name, scale)
        row: list[object] = [name]
        for policy in POLICIES:
            res = run_cached(name, _policy_config(policy), scale.workload_scale)
            speedup = res.speedup_over(base)
            per_policy[policy].append(speedup)
            row.append(speedup)
        result.rows.append(row)
    result.rows.append(["gmean"] + [geometric_mean(per_policy[p]) for p in POLICIES])
    result.notes.append("paper: next-2 optimal on average; Streaming prefers None")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
