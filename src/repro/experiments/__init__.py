"""Regeneration harness: one module per paper exhibit.

Each module exposes ``run(scale_name=None, ...) -> ExperimentResult`` and a
``main()`` that prints the table. ``python -m repro.experiments`` runs the
whole set. Scale via ``REPRO_SCALE`` = ``quick`` | ``default`` | ``full``.
"""

from __future__ import annotations

from . import (
    ablations,
    branch_distance,
    btb_size_sweep,
    coverage_vs_latency,
    crossbar,
    miss_breakdown,
    opportunity,
    speedup,
    squashes,
    stall_coverage,
    storage_costs,
    sweeps,
    throttle_sweep,
)
from .common import (
    SCALES,
    workload_names,
    ExperimentResult,
    ExperimentScale,
    baseline_config,
    baseline_for,
    clear_run_cache,
    get_scale,
    precompute,
    run_cached,
)
from .sweeps import SWEEPS, SweepSpec, get_sweep

#: Exhibit id -> experiment module, in paper order.
EXPERIMENTS = {
    "figure1": opportunity,
    "figure2": coverage_vs_latency,
    "figure3": miss_breakdown,
    "figure4": branch_distance,
    "figure5": btb_size_sweep,
    "figure7": squashes,
    "figure8": stall_coverage,
    "figure9": speedup,
    "figure10": throttle_sweep,
    "figure11": crossbar,
    "storage": storage_costs,
    "ablations": ablations,
}


def run_all(scale_name: str | None = None) -> dict[str, ExperimentResult]:
    """Run every experiment; returns exhibit id -> result."""
    return {name: module.run(scale_name) for name, module in EXPERIMENTS.items()}


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "SCALES",
    "SWEEPS",
    "SweepSpec",
    "get_sweep",
    "workload_names",
    "baseline_config",
    "baseline_for",
    "clear_run_cache",
    "get_scale",
    "precompute",
    "run_all",
    "run_cached",
]
