"""Declarative sweep grids: axes × mechanisms × workload set → one job batch.

The figure modules each hand-assemble their (workload, config) grids. A
:class:`SweepSpec` expresses the same thing declaratively — named knob
axes over named mechanisms over a workload set — and compiles to one
:class:`~repro.runtime.SimJob` batch that the runtime executes on any
backend (``--jobs`` process pool, or the distributed broker with
``--backend broker``). That makes the dense full-scale grids the ROADMAP
promises (8-point latency × 5-point BTB, cross-profile ablation matrices
over all 10 profiles) one command each::

    python -m repro.experiments.sweeps list
    python -m repro.experiments.sweeps run smoke --jobs 4
    python -m repro.experiments.sweeps run dense-latency-btb \\
        --backend broker --cache-dir ~/.repro-cache

Knob axes (:data:`KNOBS`) apply a value to a ``SimConfig``; *shared*
knobs (BTB size, LLC latency, NoC kind) also apply to the matched
no-prefetch baseline each speedup is computed against — exactly how the
figure modules build their baselines — while mechanism-local knobs
(throttle policy, FTQ depth, ...) leave the baseline untouched. An axis
may give explicit values or the string ``"scale"`` to take its points
from the active :class:`~repro.experiments.common.ExperimentScale`, which
is how the ``figure*`` sweeps reproduce each paper grid at any scale.

See ``docs/experiments.md`` for the figure → module → sweep map (the
table is generated from :data:`SWEEPS` and drift-checked in CI).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from ...config import SimConfig
from ...core.mechanisms import FIGURE_MECHANISMS, MECHANISMS, make_config
from ...errors import ConfigError
from ...runtime import SimJob, get_runtime
from ...stats import geometric_mean
from ...workloads.profiles import PROFILE_SETS
from ..common import ExperimentResult, ExperimentScale, get_scale, workload_names

# ---------------------------------------------------------------------------
# Knob axes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One sweepable config dimension.

    ``shared`` knobs describe the machine around the mechanism and are
    applied to the no-prefetch baseline too; non-shared knobs tune the
    mechanism itself and leave the baseline at its defaults.
    """

    name: str
    shared: bool
    apply: "callable"


def _apply_noc_kind(cfg: SimConfig, kind: str) -> SimConfig:
    return replace(
        cfg, memory=replace(cfg.memory, noc=replace(cfg.memory.noc, kind=kind))
    )


def _apply_ftq_depth(cfg: SimConfig, depth: int) -> SimConfig:
    return replace(cfg, core=replace(cfg.core, ftq_depth=depth))


def _apply_predecode(cfg: SimConfig, latency: int) -> SimConfig:
    return replace(cfg, core=replace(cfg.core, predecode_latency=latency))


def _apply_throttle(cfg: SimConfig, blocks: int) -> SimConfig:
    return replace(cfg, prefetch=replace(cfg.prefetch, throttle_blocks=blocks))


def _apply_btb_buffer(cfg: SimConfig, entries: int) -> SimConfig:
    return replace(
        cfg, prefetch=replace(cfg.prefetch, btb_prefetch_buffer_entries=entries)
    )


#: Every axis name a sweep may use.
KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob("btb_entries", True, lambda cfg, v: cfg.with_btb_entries(v)),
        Knob("llc_latency", True, lambda cfg, v: cfg.with_llc_latency(v)),
        Knob("noc_kind", True, _apply_noc_kind),
        Knob("predictor", False, lambda cfg, v: cfg.with_predictor(v)),
        Knob("ftq_depth", False, _apply_ftq_depth),
        Knob("predecode_latency", False, _apply_predecode),
        Knob("throttle_blocks", False, _apply_throttle),
        Knob("btb_prefetch_buffer", False, _apply_btb_buffer),
    )
}

#: Axis values: explicit points, or "scale" to resolve from the active
#: ExperimentScale (latency_points / btb_sizes).
AxisValues = tuple[object, ...]
Axis = tuple[str, "AxisValues | str"]


def _axis_points(axis: Axis, scale: ExperimentScale) -> AxisValues:
    knob, values = axis
    if values == "scale":
        if knob == "llc_latency":
            return scale.latency_points
        if knob == "btb_entries":
            return scale.btb_sizes
        raise ConfigError(f"axis {knob!r} has no scale-resolved points")
    return tuple(values)


# ---------------------------------------------------------------------------
# Sweep specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a mechanism plus concrete knob settings."""

    mechanism: str
    settings: tuple[tuple[str, object], ...]

    def config(self) -> SimConfig:
        cfg = make_config(self.mechanism)
        for knob, value in self.settings:
            cfg = KNOBS[knob].apply(cfg, value)
        return cfg

    def baseline(self) -> SimConfig:
        """The matched no-prefetch baseline (shared knobs only)."""
        cfg = make_config("none")
        for knob, value in self.settings:
            if KNOBS[knob].shared:
                cfg = KNOBS[knob].apply(cfg, value)
        return cfg


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative experiment grid.

    The grid is the cartesian product ``workloads × mechanisms ×
    axis-values``; :meth:`jobs` compiles it (plus the matched baselines)
    into one deduplicated batch for
    :meth:`~repro.runtime.ExperimentRuntime.run_many`.
    """

    name: str
    title: str
    description: str
    mechanisms: tuple[str, ...]
    axes: tuple[Axis, ...] = ()
    #: Profile set (None → ``REPRO_WORKLOAD_SET`` / ``paper``).
    workload_set: str | None = None
    #: Run a matched no-prefetch baseline per grid point (for speedups).
    include_baseline: bool = True
    #: The paper exhibit this grid re-expresses, if any.
    exhibit: str | None = None

    def __post_init__(self) -> None:
        unknown_mechs = [m for m in self.mechanisms if m not in MECHANISMS]
        if unknown_mechs:
            raise ConfigError(
                f"sweep {self.name!r}: unknown mechanisms {unknown_mechs}; "
                f"known: {', '.join(MECHANISMS)}"
            )
        unknown_axes = [knob for knob, _ in self.axes if knob not in KNOBS]
        if unknown_axes:
            raise ConfigError(
                f"sweep {self.name!r}: unknown axes {unknown_axes}; "
                f"known: {', '.join(KNOBS)}"
            )
        if self.workload_set is not None and self.workload_set not in PROFILE_SETS:
            raise ConfigError(
                f"sweep {self.name!r}: unknown workload set "
                f"{self.workload_set!r}; known: {', '.join(sorted(PROFILE_SETS))}"
            )

    # ------------------------------------------------------------ geometry

    def axis_names(self) -> tuple[str, ...]:
        return tuple(knob for knob, _ in self.axes)

    def points(self, scale: ExperimentScale) -> list[SweepPoint]:
        """Every (mechanism, settings) grid point, in deterministic order."""
        value_grid = [_axis_points(axis, scale) for axis in self.axes]
        names = self.axis_names()
        return [
            SweepPoint(mechanism, tuple(zip(names, values)))
            for mechanism in self.mechanisms
            for values in itertools.product(*value_grid)
        ]

    def workloads(self, workload_set: str | None = None) -> tuple[str, ...]:
        return workload_names(workload_set or self.workload_set)

    def jobs(
        self,
        scale: ExperimentScale,
        workload_set: str | None = None,
    ) -> list[SimJob]:
        """The full job batch: every grid point plus matched baselines."""
        names = self.workloads(workload_set)
        batch: list[SimJob] = []
        for point in self.points(scale):
            for name in names:
                if self.include_baseline and point.mechanism != "none":
                    batch.append(SimJob(name, point.baseline(), scale.workload_scale))
                batch.append(SimJob(name, point.config(), scale.workload_scale))
        return batch

    def job_count(self, scale: ExperimentScale, workload_set: str | None = None) -> int:
        """Unique simulations the batch resolves to (duplicates collapsed)."""
        return len({job.key for job in self.jobs(scale, workload_set)})

    # ----------------------------------------------------------- execution

    def run(
        self,
        scale_name: str | None = None,
        workload_set: str | None = None,
    ) -> ExperimentResult:
        """Execute the grid through the shared runtime; tabulate results.

        Per-row metrics: IPC and (when baselines are included) speedup
        over the matched no-prefetch baseline. A ``gmean`` row summarizes
        each (mechanism, settings) group across its workloads.
        """
        scale = get_scale(scale_name)
        names = self.workloads(workload_set)
        runtime = get_runtime()
        runtime.run_many(self.jobs(scale, workload_set))  # batch: pool/broker
        headers = ["workload", "mechanism", *self.axis_names(), "ipc"]
        if self.include_baseline:
            headers.append("speedup")
        result = ExperimentResult(
            exhibit=f"sweep:{self.name}", title=self.title, headers=headers
        )
        for point in self.points(scale):
            axis_values = [value for _, value in point.settings]
            speedups: list[float] = []
            for name in names:
                res = runtime.run_one(name, point.config(), scale.workload_scale)
                row: list[object] = [name, point.mechanism, *axis_values, res.ipc]
                if self.include_baseline:
                    base = runtime.run_one(name, point.baseline(), scale.workload_scale)
                    speedup = res.speedup_over(base)
                    speedups.append(speedup)
                    row.append(speedup)
                result.rows.append(row)
            if self.include_baseline and len(names) > 1:
                result.rows.append(
                    ["gmean", point.mechanism, *axis_values, "", geometric_mean(speedups)]
                )
        return result


# ---------------------------------------------------------------------------
# Named sweeps
# ---------------------------------------------------------------------------

_SWEEP_LIST: tuple[SweepSpec, ...] = (
    SweepSpec(
        name="smoke",
        title="Smoke grid: FDIP vs Boomerang at two LLC latencies",
        description=(
            "Small end-to-end grid used by CI's broker smoke job and for "
            "trying out backends; finishes in minutes at quick scale."
        ),
        mechanisms=("fdip", "boomerang"),
        axes=(("llc_latency", (30, 70)),),
    ),
    SweepSpec(
        name="figure2-coverage",
        title="Stall-cycle coverage vs LLC latency at a near-ideal BTB",
        description=(
            "The Figure 2 grid's temporal-vs-fetch-directed comparison "
            "(PIF vs FDIP, 32K-entry BTB, scale-resolved latency points); "
            "the predictor-series variants stay in the figure module."
        ),
        mechanisms=("pif", "fdip"),
        axes=(("btb_entries", (32768,)), ("llc_latency", "scale")),
        exhibit="figure2",
    ),
    SweepSpec(
        name="figure5-btb-grid",
        title="FDIP over the BTB-size × LLC-latency grid",
        description=(
            "The Figure 5 grid: FDIP at every scale-resolved BTB size and "
            "LLC latency point, with matched baselines."
        ),
        mechanisms=("fdip",),
        axes=(("btb_entries", "scale"), ("llc_latency", "scale")),
        exhibit="figure5",
    ),
    SweepSpec(
        name="figure789-mechanisms",
        title="All figure mechanisms on the paper workloads",
        description=(
            "The shared grid behind Figures 7/8/9: every plotted mechanism "
            "per workload plus the no-prefetch baseline."
        ),
        mechanisms=FIGURE_MECHANISMS,
        exhibit="figure9",
    ),
    SweepSpec(
        name="figure10-throttle",
        title="Boomerang next-N-block throttle policies",
        description=(
            "The Figure 10 grid: Boomerang with 0/1/2/4/8 sequential "
            "blocks prefetched under an unresolved BTB miss."
        ),
        mechanisms=("boomerang",),
        axes=(("throttle_blocks", (0, 1, 2, 4, 8)),),
        exhibit="figure10",
    ),
    SweepSpec(
        name="figure11-crossbar",
        title="Figure mechanisms under the crossbar interconnect",
        description=(
            "The Figure 11 grid: the main mechanisms with the NoC switched "
            "to the 18-cycle crossbar (baselines matched on the same NoC)."
        ),
        mechanisms=FIGURE_MECHANISMS,
        axes=(("noc_kind", ("crossbar",)),),
        exhibit="figure11",
    ),
    SweepSpec(
        name="dense-latency-btb",
        title="Dense 8-point latency × 5-point BTB grid (FDIP + Boomerang)",
        description=(
            "The ROADMAP's dense full-scale grid: 8 LLC latency points × 5 "
            "BTB sizes for FDIP and Boomerang with matched baselines — 720 "
            "simulations over the paper set; built for --backend broker."
        ),
        mechanisms=("fdip", "boomerang"),
        axes=(
            ("llc_latency", (1, 10, 20, 30, 40, 50, 60, 70)),
            ("btb_entries", (2048, 4096, 8192, 16384, 32768)),
        ),
    ),
    SweepSpec(
        name="ablation-matrix",
        title="Every mechanism × every profile (paper + extended)",
        description=(
            "Cross-profile ablation matrix: all 8 mechanisms over all 10 "
            "workload profiles, speedups against per-profile baselines."
        ),
        mechanisms=tuple(m for m in MECHANISMS if m != "none"),
        workload_set="all",
    ),
    SweepSpec(
        name="boomerang-buffer",
        title="Boomerang BTB prefetch buffer capacity, cross-profile",
        description=(
            "Section IV-C's buffer-capacity ablation (1/8/32/128 entries) "
            "extended over all 10 profiles."
        ),
        mechanisms=("boomerang",),
        axes=(("btb_prefetch_buffer", (1, 8, 32, 128)),),
        workload_set="all",
        exhibit="ablations",
    ),
)

#: Sweep name -> spec, in presentation order.
SWEEPS: dict[str, SweepSpec] = {spec.name: spec for spec in _SWEEP_LIST}


def get_sweep(name: str) -> SweepSpec:
    try:
        return SWEEPS[name]
    except KeyError:
        known = ", ".join(SWEEPS)
        raise ConfigError(f"unknown sweep {name!r}; known sweeps: {known}") from None


def _axes_summary(spec: SweepSpec) -> str:
    """One-line axis description (used by the CLI and the docs tables)."""
    if not spec.axes:
        return "-"
    parts = []
    for knob, values in spec.axes:
        if values == "scale":
            parts.append(f"{knob}=<scale>")
        else:
            parts.append(f"{knob}={'/'.join(str(v) for v in values)}")
    return ", ".join(parts)
