"""CLI for the declarative sweep grids.

Usage::

    python -m repro.experiments.sweeps list [--scale S]
    python -m repro.experiments.sweeps show <name> [--scale S] [--fidelity F]
    python -m repro.experiments.sweeps run  <name> [--scale S]
        [--workload-set W] [--jobs N] [--cache-dir D] [--backend B]
        [--batch] [--batch-width N] [--fidelity F] [--profile-stages]
        [--no-table] [--serve]
    python -m repro.experiments.sweeps run --resume <manifest>
        [--jobs N] [--cache-dir D] [--backend B] [--batch]
        [--batch-width N] [--profile-stages] [--no-table]

``run`` executes the named grid through the shared experiment runtime —
``--jobs``/``--cache-dir``/``--backend`` configure it exactly like
``python -m repro.experiments`` (explicit flags beat ``REPRO_*``), so a
sweep fans out over a process pool or the distributed broker the same
way the figure modules do. The closing summary line reports unique jobs,
simulations actually executed, disk hits, wall time and the backend's
telemetry (for the broker: per-worker job counts, queue waits, retries).

``--batch`` (or ``REPRO_BATCH``) groups same-workload cells into batched
:class:`~repro.core.batch.BatchedEngine` runs of up to ``--batch-width``
configs each; results are bit-identical and land in the per-cell cache
under unchanged keys, so warm reruns, shards and ``--resume`` never see
the difference. ``--profile-stages`` prints per-stage cycle/time
attribution for whatever executed (per-cell or batched engines); it
forces the serial backend because the collector is in-process.

With a cache directory configured, ``run`` first writes a **manifest**
(the resolved cell list — see :mod:`repro.experiments.sweeps.manifest`)
under ``<cache-dir>/manifests/`` and prints its path. If the run is
interrupted, ``run --resume <manifest>`` diffs that manifest against the
cache (loose records and compacted shards alike) and submits *only* the
missing cells; the finished table is bit-identical to an uninterrupted
run. Scale and workload set come from the manifest — passing ``--scale``
or ``--workload-set`` alongside ``--resume`` is an error, and a manifest
whose grid no longer matches the current sweep definition is refused.

``--fidelity`` (or ``REPRO_FIDELITY``) selects the result tier
(:mod:`repro.analytic`): ``exact`` runs every cell on the engine,
``analytic`` calibrates a per-series model from a small anchor grid and
synthesizes the rest, ``hybrid`` additionally re-dispatches
high-uncertainty and extrapolating cells to the exact engine. The
fidelity is frozen into the manifest, and ``--resume`` re-applies it —
the flag is rejected alongside ``--resume`` for the same reason as
``--scale``. ``show --fidelity hybrid`` previews the exact-vs-analytic
cell split without running anything.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ...core import profiling
from ...envopts import env_flag, env_str, read_env
from ...errors import ConfigError
from ...runtime import backend_summary, configure_runtime, get_runtime
from ...runtime.cache import SCHEMA_TAG
from ..common import get_scale
from . import SWEEPS, _axes_summary, get_sweep
from .manifest import load_manifest, missing_cells, verify_matches_spec, write_manifest


def _cmd_list(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    print(f"named sweeps (job counts at scale={scale.name}):")
    for spec in SWEEPS.values():
        jobs = spec.job_count(scale)
        exhibit = f" [{spec.exhibit}]" if spec.exhibit else ""
        print(f"  {spec.name:<22s} {jobs:4d} jobs  {spec.title}{exhibit}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = get_sweep(args.name)
    scale = get_scale(args.scale)
    print(f"{spec.name} — {spec.title}")
    print(f"  {spec.description}")
    print(f"  mechanisms:   {', '.join(spec.mechanisms)}")
    print(f"  axes:         {_axes_summary(spec)}")
    print(f"  workload set: {spec.workload_set or 'default (REPRO_WORKLOAD_SET)'}")
    print(f"  workloads:    {', '.join(spec.workloads())}")
    print(f"  baselines:    {'matched per point' if spec.include_baseline else 'none'}")
    if spec.exhibit:
        print(f"  re-expresses: {spec.exhibit} (python -m repro.experiments {spec.exhibit})")
    print(f"  jobs at scale={scale.name}: {spec.job_count(scale)}")
    _show_costs(spec, scale, args)
    return 0


def _show_costs(spec, scale, args: argparse.Namespace) -> None:
    """Estimated cost (and, under hybrid, the exact/analytic split)."""
    from ...runtime import SimJob, estimate_job_cost

    jobs: list[SimJob] = []
    seen: set[tuple[str, str, str]] = set()
    for job in spec.jobs(scale, args.workload_set):
        if job.key in seen:
            continue
        seen.add(job.key)
        jobs.append(job)
    by_workload: dict[str, list[int]] = {}
    unknown = 0
    for job in jobs:
        cost = estimate_job_cost(job)
        if cost is None:
            unknown += 1
        else:
            by_workload.setdefault(job.workload, []).append(cost)
    print("  estimated cost (trace instrs × LLC budget, relative units):")
    total = 0
    for workload in sorted(by_workload):
        costs = by_workload[workload]
        subtotal = sum(costs)
        total += subtotal
        print(
            f"    {workload:<14s} {len(costs):4d} cells × "
            f"[{min(costs):,} .. {max(costs):,}] per cell = {subtotal:,}"
        )
    if unknown:
        print(f"    ({unknown} cells with unknown workload profile not counted)")
    print(f"    total: {total:,} across {len(jobs)} unique cells")
    if args.fidelity in ("analytic", "hybrid"):
        from ...analytic import DEFAULT_ANCHOR_SPEC, plan_series, plan_summary

        plans, passthrough = plan_series(jobs, DEFAULT_ANCHOR_SPEC)
        exact, estimated = plan_summary(plans, passthrough)
        print(
            f"  fidelity={args.fidelity} split ({DEFAULT_ANCHOR_SPEC} anchors): "
            f"{exact} exact-engine cells (anchors + passthrough), "
            f"{estimated} analytic cells"
            + (
                " (hybrid may re-dispatch high-uncertainty cells exact)"
                if args.fidelity == "hybrid"
                else ""
            )
        )


def _start_profiling(args: argparse.Namespace):
    """``--profile-stages``: install the collector; force serial execution.

    Profiling accumulates in-process — pool and broker workers would keep
    their timings in their own processes — so the serial backend is the
    only one that can produce a complete table.
    """
    if not args.profile_stages:
        return None
    if args.backend not in (None, "serial"):
        print(
            f"note: --profile-stages forces the serial backend "
            f"(--backend {args.backend} ignored)",
            file=sys.stderr,
        )
    args.backend = "serial"
    return profiling.enable()


def _maybe_refresh_warehouse(args: argparse.Namespace) -> None:
    """``--refresh-warehouse`` / ``REPRO_WAREHOUSE_AUTOREFRESH``: fold the
    run's results into the SQLite warehouse while they are fresh.

    Needs a disk cache (there is nothing to consolidate otherwise); the
    bench payloads are left alone — a sweep run changes cells, not
    benchmark history.
    """
    wanted = (
        args.refresh_warehouse
        if args.refresh_warehouse is not None
        else env_flag("REPRO_WAREHOUSE_AUTOREFRESH", False)
    )
    if not wanted:
        return
    runtime = get_runtime()
    if runtime.cache_dir is None:
        print(
            "note: --refresh-warehouse needs a cache directory "
            "(--cache-dir or REPRO_CACHE_DIR); skipped",
            file=sys.stderr,
        )
        return
    from ...warehouse import refresh_warehouse

    stats = refresh_warehouse(runtime.cache_dir)
    print(f"[warehouse: {stats.summary()}]")


def _cmd_serve(args: argparse.Namespace) -> int:
    """``--serve``: hand the run to the supervised service mode.

    The supervisor re-invokes ``sweeps run`` (without ``--serve``) as the
    coordinator subprocess and autoscales broker workers around it — see
    :func:`repro.runtime.supervisor.serve_sweep`. Pass-through flags that
    shape the grid or the records travel to the coordinator; flags that
    contradict service mode (``--resume``'s manifest replay,
    ``--profile-stages``'s forced serial backend, a non-broker
    ``--backend``) are rejected rather than silently ignored.
    """
    from ...runtime.supervisor import serve_sweep

    if args.name is None:
        print("a sweep name is required with --serve", file=sys.stderr)
        return 2
    if args.resume or args.profile_stages:
        print(
            "--serve cannot be combined with --resume or --profile-stages",
            file=sys.stderr,
        )
        return 2
    if args.backend not in (None, "broker"):
        print(
            f"--serve always runs the broker backend "
            f"(--backend {args.backend} conflicts)",
            file=sys.stderr,
        )
        return 2
    cache_dir = args.cache_dir or env_str("REPRO_CACHE_DIR")
    if not cache_dir:
        print(
            "--serve needs a cache directory: pass --cache-dir or set "
            "REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    extra: list[str] = []
    if args.jobs is not None:
        extra += ["--jobs", str(args.jobs)]
    if args.batch:
        extra.append("--batch")
    if args.batch_width is not None:
        extra += ["--batch-width", str(args.batch_width)]
    if args.fidelity:
        extra += ["--fidelity", args.fidelity]
    if args.no_table:
        extra.append("--no-table")
    if args.refresh_warehouse:
        extra.append("--refresh-warehouse")
    return serve_sweep(
        args.name,
        cache_dir,
        scale=args.scale,
        workload_set=args.workload_set,
        coordinator_args=extra,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.serve:
        return _cmd_serve(args)
    if args.resume:
        return _cmd_resume(args)
    if args.name is None:
        print("a sweep name (or --resume MANIFEST) is required", file=sys.stderr)
        return 2
    spec = get_sweep(args.name)
    profiler = _start_profiling(args)
    if any(
        value is not None
        for value in (
            args.jobs,
            args.cache_dir,
            args.backend,
            args.batch,
            args.batch_width,
            args.fidelity,
        )
    ):
        configure_runtime(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            backend=args.backend,
            batch=args.batch,
            batch_width=args.batch_width,
            fidelity=args.fidelity,
        )
    runtime = get_runtime()
    if runtime.cache_dir is not None:
        # The resolved grid, persisted before anything executes: an
        # interrupted run finishes with `run --resume <this file>`.
        manifest = write_manifest(
            runtime.cache_dir,
            spec,
            args.scale,
            args.workload_set,
            fidelity=runtime.fidelity,
        )
        unique_jobs = len(manifest.cells)
        print(f"[manifest: {manifest.path} — finish an interrupted run with --resume]")
    else:
        # Count the grid once, up front — recompiling 100s of configs (and
        # their SHA digests) after the run just for the summary is waste.
        unique_jobs = spec.job_count(get_scale(args.scale), args.workload_set)
    started = time.time()
    try:
        result = spec.run(args.scale, args.workload_set)
    finally:
        profiling.disable()
    elapsed = time.time() - started
    if not args.no_table:
        print(result.to_table())
    if profiler is not None:
        print(profiler.table())
    runtime = get_runtime()
    hits = runtime.disk.hits if runtime.disk is not None else 0
    # The exact-fidelity line keeps its historical shape (CI smoke greps
    # it); non-exact runs add the analytic-cell count.
    estimated = (
        f"{runtime.estimated} estimated ({runtime.fidelity}), "
        if runtime.fidelity != "exact"
        else ""
    )
    print(
        f"[sweep {spec.name}: {unique_jobs} "
        f"unique jobs, {runtime.executed} simulated, {estimated}{hits} disk hits, "
        f"{elapsed:.1f}s, {backend_summary(runtime)}]"
    )
    _maybe_refresh_warehouse(args)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    if args.name is not None or args.scale or args.workload_set or args.fidelity:
        print(
            "--resume takes the sweep, scale, workload set and fidelity "
            "from the manifest; drop the extra arguments",
            file=sys.stderr,
        )
        return 2
    manifest = load_manifest(args.resume)
    spec = get_sweep(manifest.sweep)
    verify_matches_spec(manifest, spec)
    profiler = _start_profiling(args)
    cache_dir = args.cache_dir
    if cache_dir is None and not read_env("REPRO_CACHE_DIR"):
        # The manifest lives inside the cache it belongs to — infer it.
        parent = Path(args.resume).resolve().parent
        if parent.name == "manifests":
            cache_dir = str(parent.parent)
    configure_runtime(
        jobs=args.jobs,
        cache_dir=cache_dir,
        backend=args.backend,
        batch=args.batch,
        batch_width=args.batch_width,
        fidelity=manifest.fidelity,
    )
    runtime = get_runtime()
    if runtime.disk is None:
        print(
            "resume needs the cache directory the manifest belongs to: "
            "pass --cache-dir or set REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    if manifest.engine_schema != SCHEMA_TAG:
        print(
            f"note: manifest was written under engine schema "
            f"{manifest.engine_schema} (current: {SCHEMA_TAG}); every cell "
            f"misses the current cache, so the full grid re-runs"
        )
    # Probe through throwaway store instances so the diff's reads do not
    # inflate the runtime's hit/miss telemetry in the summary line below.
    from ...analytic.store import AnalyticStore
    from ...runtime.cache import ResultCache

    analytic = (
        AnalyticStore(runtime.cache_dir)
        if manifest.fidelity != "exact"
        else None
    )
    missing = missing_cells(manifest, ResultCache(runtime.cache_dir), analytic)
    cached = len(manifest.cells) - len(missing)
    print(
        f"[resume {manifest.sweep}: {cached}/{len(manifest.cells)} cells "
        f"already cached, submitting {len(missing)} missing]"
    )
    started = time.time()
    try:
        if missing:
            runtime.run_many(missing)
        result = spec.run(manifest.scale, manifest.workload_set)
    finally:
        profiling.disable()
    elapsed = time.time() - started
    if not args.no_table:
        print(result.to_table())
    if profiler is not None:
        print(profiler.table())
    hits = runtime.disk.hits if runtime.disk is not None else 0
    estimated = (
        f"{runtime.estimated} estimated ({runtime.fidelity}), "
        if runtime.fidelity != "exact"
        else ""
    )
    print(
        f"[sweep {manifest.sweep}: resumed {len(missing)} of "
        f"{len(manifest.cells)} unique jobs, {runtime.executed} simulated, "
        f"{estimated}{hits} disk hits, {elapsed:.1f}s, {backend_summary(runtime)}]"
    )
    _maybe_refresh_warehouse(args)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweeps",
        description="list, inspect and run named declarative sweep grids",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show every named sweep with job counts")
    p_list.add_argument("--scale", help="scale for job counts (or REPRO_SCALE)")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="describe one sweep's grid")
    p_show.add_argument("name")
    p_show.add_argument("--scale", help="scale for job counts (or REPRO_SCALE)")
    p_show.add_argument(
        "--workload-set", help="paper|extended|all (or REPRO_WORKLOAD_SET)"
    )
    p_show.add_argument(
        "--fidelity",
        help="preview the exact-vs-analytic cell split for analytic|hybrid",
    )
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser("run", help="execute a sweep and print its table")
    p_run.add_argument("name", nargs="?", help="sweep name (omit with --resume)")
    p_run.add_argument(
        "--resume",
        metavar="MANIFEST",
        help="finish an interrupted run: submit only the manifest's missing cells",
    )
    p_run.add_argument("--scale", help="quick|default|full (or REPRO_SCALE)")
    p_run.add_argument("--workload-set", help="paper|extended|all (or REPRO_WORKLOAD_SET)")
    p_run.add_argument("--jobs", type=int, help="process-pool width (or REPRO_JOBS)")
    p_run.add_argument("--cache-dir", help="persistent result cache (or REPRO_CACHE_DIR)")
    p_run.add_argument(
        "--backend",
        help="serial|pool|broker|auto (or REPRO_BACKEND); broker needs --cache-dir",
    )
    p_run.add_argument(
        "--batch",
        action="store_true",
        default=None,
        help="group same-workload cells into batched engine runs (or REPRO_BATCH)",
    )
    p_run.add_argument(
        "--batch-width",
        type=int,
        help="max configs per batched run, >= 2 (or REPRO_BATCH_WIDTH)",
    )
    p_run.add_argument(
        "--fidelity",
        help="exact|analytic|hybrid result tier (or REPRO_FIDELITY)",
    )
    p_run.add_argument(
        "--profile-stages",
        action="store_true",
        help="print per-stage cycle/time attribution (forces --backend serial)",
    )
    p_run.add_argument(
        "--no-table", action="store_true", help="suppress the per-point table"
    )
    p_run.add_argument(
        "--serve",
        action="store_true",
        help=(
            "run under the supervised service mode: autoscaled broker "
            "workers around a coordinator subprocess (needs a cache dir)"
        ),
    )
    p_run.add_argument(
        "--refresh-warehouse",
        action="store_true",
        default=None,
        help=(
            "consolidate the warehouse after the run "
            "(or REPRO_WAREHOUSE_AUTOREFRESH); needs a cache directory"
        ),
    )
    p_run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
