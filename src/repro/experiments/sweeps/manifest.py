"""Resumable sweep manifests: the resolved grid, written before it runs.

An interrupted dense sweep (a killed coordinator, a lost machine, a CI
timeout) used to be re-planned from scratch. ``sweeps run`` now writes a
**manifest** under the cache directory before executing anything::

    <cache-dir>/manifests/<sweep>__<scale>__<set>__<digest12>.json

The manifest pins everything needed to finish the run later without
re-deriving it: the sweep/scale/workload-set names, the engine schema tag
in force, a digest of the resolved cell list, and one **cell** per unique
job — workload, workload scale, scale token, full config digest, and the
canonicalized config itself (the same self-contained form broker job
specs travel as, so a cell can be rebuilt into a
:class:`~repro.runtime.SimJob` by any process).

``sweeps run --resume <manifest>`` then diffs the manifest against the
result cache — which reads transparently from loose records *and*
compacted shards — and submits **only the missing cells**. Because every
cell is content-addressed, the merged table of a resumed run is
bit-identical to an uninterrupted one.

Two guards keep resume sound:

* the **spec digest** is recomputed from the current sweep registry at
  resume time; if the sweep definition, scale, or workload set resolves
  to a different cell list, resume refuses rather than silently running
  a different grid;
* each rebuilt config's digest is verified against the cell's recorded
  digest (the broker's own drift check), so a resume under changed config
  code cannot produce wrongly-keyed results.

A manifest written under an older engine schema still loads — its cells
simply all miss the (new-tag) cache and the full grid re-runs, which is
exactly what the schema change demands.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ...analytic.store import AnalyticStore
from ...config import SimConfig
from ...envopts import env_str
from ...errors import ConfigError
from ...runtime import SimJob, canonicalize, config_digest
from ...runtime.atomicio import atomic_write_json
from ...runtime.broker import config_from_canonical
from ...runtime.cache import SCHEMA_TAG, ResultCache
from ..common import get_scale

if TYPE_CHECKING:  # pragma: no cover - cycle guard (__init__ is our parent)
    from . import SweepSpec

#: Manifest record format version. v2 added the ``fidelity`` key: a
#: resumed sweep must finish at the fidelity it started at, or its merged
#: table would silently mix tiers.
MANIFEST_SCHEMA = "sweep-manifest-v2"


@dataclass(frozen=True)
class ManifestCell:
    """One unique job of the resolved grid (baselines included)."""

    workload: str
    workload_scale: float
    scale_tok: str
    digest: str
    #: Canonicalized config tree (rebuildable via ``config_from_canonical``).
    config: dict

    def job(self) -> SimJob:
        """Rebuild the cell's job, verifying the recorded config digest."""
        config = config_from_canonical(self.config)
        if not isinstance(config, SimConfig):
            raise ConfigError(
                f"manifest cell for {self.workload!r} does not describe a SimConfig"
            )
        if config_digest(config) != self.digest:
            raise ConfigError(
                f"manifest cell digest mismatch for {self.workload!r}: the "
                f"manifest says {self.digest[:16]} but this code computes "
                f"{config_digest(config)[:16]} — the config schema changed "
                f"since the manifest was written; re-run without --resume"
            )
        return SimJob(self.workload, config, self.workload_scale)


@dataclass
class SweepManifest:
    """A written (or loaded) manifest; see module docstring."""

    sweep: str
    scale: str
    workload_set: str | None
    engine_schema: str
    spec_digest: str
    cells: list[ManifestCell]
    created_at: float
    #: Fidelity tier the run was started at (``--resume`` re-applies it).
    fidelity: str = "exact"
    path: Path | None = None


def resolve_cells(
    spec: SweepSpec, scale_name: str | None, workload_set: str | None
) -> list[ManifestCell]:
    """The deduplicated cell list of a sweep at a scale, in grid order."""
    scale = get_scale(scale_name)
    cells: list[ManifestCell] = []
    seen: set[tuple[str, str, str]] = set()
    for job in spec.jobs(scale, workload_set):
        key = job.key
        if key in seen:
            continue  # shared baselines appear once per unique config
        seen.add(key)
        cells.append(
            ManifestCell(
                workload=key[0],
                workload_scale=job.workload_scale,
                scale_tok=key[1],
                digest=key[2],
                config=canonicalize(job.config),
            )
        )
    return cells


def _keys_digest(keys: Iterable[tuple[str, str, str]]) -> str:
    """Order-independent digest of a set of (workload, scale, digest) keys."""
    payload = "\n".join(sorted(f"{w}|{s}|{d}" for w, s, d in set(keys)))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cells_digest(cells: list[ManifestCell]) -> str:
    """Order-independent digest of a resolved cell list."""
    return _keys_digest((c.workload, c.scale_tok, c.digest) for c in cells)


def manifest_path(cache_dir: str | os.PathLike, manifest: SweepManifest) -> Path:
    set_name = manifest.workload_set or "default"
    name = (
        f"{manifest.sweep}__{manifest.scale}__{set_name}"
        f"__{manifest.spec_digest[:12]}.json"
    )
    return Path(cache_dir) / "manifests" / name


def effective_workload_set(spec: SweepSpec, workload_set: str | None) -> str:
    """The concrete set name a grid resolution will use, env included.

    Mirrors the precedence of :func:`repro.workloads.profiles.workload_set`
    (argument > spec default > ``REPRO_WORKLOAD_SET`` > ``paper``) so the
    manifest freezes the *resolved* name — a resume in a shell without the
    variable must re-run the same grid, not silently a different one.
    """
    return (
        workload_set
        or spec.workload_set
        or env_str("REPRO_WORKLOAD_SET")
        or "paper"
    )


def write_manifest(
    cache_dir: str | os.PathLike,
    spec: SweepSpec,
    scale_name: str | None = None,
    workload_set: str | None = None,
    fidelity: str = "exact",
) -> SweepManifest:
    """Resolve the grid and atomically persist its manifest.

    Re-running the same sweep at the same scale/set overwrites the same
    manifest file (the spec digest is part of the name), so there is
    always exactly one live manifest per distinct grid.
    """
    workload_set = effective_workload_set(spec, workload_set)
    cells = resolve_cells(spec, scale_name, workload_set)
    manifest = SweepManifest(
        sweep=spec.name,
        scale=get_scale(scale_name).name,
        workload_set=workload_set,
        engine_schema=SCHEMA_TAG,
        spec_digest=cells_digest(cells),
        cells=cells,
        created_at=time.time(),
        fidelity=fidelity,
    )
    path = manifest_path(cache_dir, manifest)
    record = {
        "schema": MANIFEST_SCHEMA,
        "sweep": manifest.sweep,
        "scale": manifest.scale,
        "workload_set": manifest.workload_set,
        "engine_schema": manifest.engine_schema,
        "spec_digest": manifest.spec_digest,
        "created_at": manifest.created_at,
        "fidelity": manifest.fidelity,
        "cells": [
            {
                "workload": c.workload,
                "workload_scale": c.workload_scale,
                "scale": c.scale_tok,
                "digest": c.digest,
                "config": c.config,
            }
            for c in cells
        ],
    }
    atomic_write_json(path, record)
    manifest.path = path
    return manifest


def load_manifest(path: str | os.PathLike) -> SweepManifest:
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read sweep manifest {path}: {exc}") from None
    if not isinstance(record, dict):
        raise ConfigError(f"{path} is not a sweep manifest")
    if record.get("schema") != MANIFEST_SCHEMA:
        raise ConfigError(
            f"{path} is not a sweep manifest (expected schema "
            f"{MANIFEST_SCHEMA!r}, got {record.get('schema')!r})"
        )
    try:
        cells = [
            ManifestCell(
                workload=c["workload"],
                workload_scale=float(c["workload_scale"]),
                scale_tok=c["scale"],
                digest=c["digest"],
                config=c["config"],
            )
            for c in record["cells"]
        ]
        manifest = SweepManifest(
            sweep=record["sweep"],
            scale=record["scale"],
            workload_set=record.get("workload_set"),
            engine_schema=record["engine_schema"],
            spec_digest=record["spec_digest"],
            cells=cells,
            created_at=float(record.get("created_at", 0.0)),
            fidelity=record.get("fidelity", "exact"),
            path=path,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed sweep manifest {path}: {exc!r}") from None
    return manifest


def verify_matches_spec(manifest: SweepManifest, spec: SweepSpec) -> None:
    """Refuse to resume a manifest whose grid no longer matches the code.

    The current registry's resolution of (sweep, scale, workload set) must
    produce the same cell list the manifest recorded; otherwise the sweep
    definition, the scale table, or the workload set changed underneath
    the manifest and "finishing" it would run a different grid. Compared
    via job keys directly — no cell materialization — since the digest
    only covers (workload, scale token, config digest).
    """
    scale = get_scale(manifest.scale)
    current = _keys_digest(
        job.key for job in spec.jobs(scale, manifest.workload_set)
    )
    if current != manifest.spec_digest:
        raise ConfigError(
            f"manifest {manifest.path} no longer matches sweep "
            f"{manifest.sweep!r} at scale {manifest.scale!r} (spec digest "
            f"{manifest.spec_digest} vs current {current}): the sweep "
            f"definition or its grid changed; re-run without --resume"
        )


def missing_cells(
    manifest: SweepManifest,
    cache: ResultCache,
    analytic: AnalyticStore | None = None,
) -> list[SimJob]:
    """The cells with no cached result — the only jobs a resume submits.

    Probes go through :class:`~repro.runtime.cache.ResultCache`, so a
    result is "present" whether it lives as a loose record or inside a
    compacted shard. For a manifest written at a non-exact fidelity the
    caller passes the analytic store too: an estimate satisfies such a
    cell (that run would have synthesized it anyway), while an
    exact-fidelity manifest never consults the analytic tier. Each
    missing cell is rebuilt into a :class:`~repro.runtime.SimJob` with
    its digest verified.
    """

    def present(cell: ManifestCell) -> bool:
        if cache.get(cell.workload, cell.scale_tok, cell.digest) is not None:
            return True
        return (
            analytic is not None
            and manifest.fidelity != "exact"
            and analytic.get(cell.workload, cell.scale_tok, cell.digest)
            is not None
        )

    return [cell.job() for cell in manifest.cells if not present(cell)]
