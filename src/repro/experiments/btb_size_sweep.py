"""Figure 5 — FDIP stall-cycle coverage vs. BTB size and LLC latency.

Paper: shrinking the BTB from 32K to 2K entries costs only ~12% of stall
cycle coverage — the sequential and conditional classes survive on the
straight-line path; only far unconditional discontinuities are lost.
"""

from __future__ import annotations

from ..core.mechanisms import make_config
from .common import (
    workload_names,
    ExperimentResult,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    latencies = scale.latency_points
    result = ExperimentResult(
        exhibit="figure5",
        title="Figure 5: FDIP stall-cycle coverage vs BTB size and LLC latency",
        headers=["btb"] + [f"llc={lat}" for lat in latencies],
    )
    pairs = []
    for entries in scale.btb_sizes:
        for lat in latencies:
            for name in names:
                pairs.append(
                    (name, baseline_config(btb_entries=entries, llc_round_trip=lat))
                )
                pairs.append(
                    (name, make_config("fdip").with_btb_entries(entries).with_llc_latency(lat))
                )
    precompute(pairs, scale)
    for entries in sorted(scale.btb_sizes, reverse=True):
        row: list[object] = [f"{entries // 1024}K"]
        for lat in latencies:
            covered = 0.0
            base_total = 0.0
            for name in names:
                base = baseline_for(
                    name, scale, btb_entries=entries, llc_round_trip=lat
                )
                cfg = make_config("fdip").with_btb_entries(entries).with_llc_latency(lat)
                res = run_cached(name, cfg, scale.workload_scale)
                covered += max(0.0, base.stall_cycles - res.stall_cycles)
                base_total += base.stall_cycles
            row.append(covered / base_total if base_total else 0.0)
        result.rows.append(row)
    result.notes.append("paper: 32K -> 2K BTB costs ~12% coverage")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
