"""Figure 7 — pipeline squashes per kilo-instruction, by cause.

Paper: with a 2K-entry BTB, BTB misses and direction/target mispredicts
contribute comparably for the BTB-blind schemes (DB2 is ~75% BTB-miss
squashes); Boomerang and Confluence eliminate >85% of BTB-miss squashes
(~2x total squash reduction), Boomerang the more completely because it
*detects* every miss rather than hoping the prefetcher avoided it.
"""

from __future__ import annotations

from ..core.mechanisms import FIGURE_MECHANISMS
from .common import workload_names, ExperimentResult, get_scale
from .grid import MECHANISM_LABELS, run_grid


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    grid = run_grid(scale, workloads=names)
    result = ExperimentResult(
        exhibit="figure7",
        title="Figure 7: squashes per kilo-instruction (mispredict + BTB miss)",
        headers=["workload", "mechanism", "mispredict_pki", "btb_miss_pki", "total_pki"],
    )
    for name in names:
        for mech in FIGURE_MECHANISMS:
            res = grid[(name, mech)]
            result.rows.append(
                [
                    name,
                    MECHANISM_LABELS[mech],
                    res.mispredict_squashes_per_kilo,
                    res.btb_squashes_per_kilo,
                    res.squashes_per_kilo,
                ]
            )
    # Average row per mechanism.
    for mech in FIGURE_MECHANISMS:
        rows = [grid[(name, mech)] for name in names]
        n = len(rows)
        result.rows.append(
            [
                "avg",
                MECHANISM_LABELS[mech],
                sum(r.mispredict_squashes_per_kilo for r in rows) / n,
                sum(r.btb_squashes_per_kilo for r in rows) / n,
                sum(r.squashes_per_kilo for r in rows) / n,
            ]
        )
    result.notes.append(
        "paper: Boomerang/Confluence eliminate >85% of BTB-miss squashes"
    )
    return result


def main() -> None:
    print(run().to_table(float_fmt="{:.2f}"))


if __name__ == "__main__":
    main()
