"""Figure 1 — opportunity of perfect control-flow delivery.

Paper: over a 2K-BTB / 32KB-L1-I baseline, a perfect L1-I improves
performance 11-47%; additionally perfecting the BTB adds another 6-40%,
with the OLTP workloads (DB2 especially) showing the largest BTB gains.
"""

from __future__ import annotations

from ..core.mechanisms import make_config
from .common import (
    workload_names,
    ExperimentResult,
    get_scale,
    precompute,
    run_cached,
)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="figure1",
        title="Figure 1: speedup of perfect L1-I / perfect L1-I+BTB over baseline",
        headers=["workload", "base_ipc", "perfect_l1i", "perfect_l1i_btb", "btb_adds"],
    )
    speedups_l1i = []
    speedups_both = []
    pairs = [
        (name, cfg)
        for name in names
        for cfg in (
            make_config("none"),
            make_config("none", perfect_l1i=True),
            make_config("none", perfect_l1i=True, perfect_btb=True),
        )
    ]
    precompute(pairs, scale)
    for name in names:
        base = run_cached(name, make_config("none"), scale.workload_scale)
        pl1i = run_cached(
            name, make_config("none", perfect_l1i=True), scale.workload_scale
        )
        pboth = run_cached(
            name,
            make_config("none", perfect_l1i=True, perfect_btb=True),
            scale.workload_scale,
        )
        s1 = pl1i.speedup_over(base)
        s2 = pboth.speedup_over(base)
        speedups_l1i.append(s1)
        speedups_both.append(s2)
        result.rows.append([name, base.ipc, s1, s2, s2 - s1])
    n = len(names)
    result.rows.append(
        [
            "avg",
            sum(float(r[1]) for r in result.rows) / n,
            sum(speedups_l1i) / n,
            sum(speedups_both) / n,
            (sum(speedups_both) - sum(speedups_l1i)) / n,
        ]
    )
    result.notes.append("paper: perfect L1-I +11-47%; perfect BTB adds another 6-40%")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
