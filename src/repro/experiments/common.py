"""Shared experiment infrastructure: scales, cached runs, result tables.

Experiments default to the ``default`` scale; set ``REPRO_SCALE=quick`` for
CI-speed runs or ``REPRO_SCALE=full`` for the most faithful (slowest)
regeneration. All scales preserve the footprint:structure over-subscription
ratios (see DESIGN.md section 5.6); quick runs shrink trace length and
sweep density, not the microarchitecture. ``REPRO_WORKLOAD_SET`` likewise
selects which profiles the grids iterate (``paper`` by default; ``all``
adds the four extended scenarios) without touching any paper figure.

Execution and caching are owned by :mod:`repro.runtime`:

* **Cache keys are sound.** Every run is keyed by ``(workload, scale,
  config-digest)`` where the digest hashes the *entire* frozen
  ``SimConfig`` dataclass tree (``repro.runtime.config_digest``). There is
  no hand-maintained field list — a config knob added tomorrow changes the
  key automatically, so two configs that differ anywhere can never collide.
* **Results can persist across processes.** Point ``REPRO_CACHE_DIR`` (or
  ``python -m repro.experiments --cache-dir``) at a directory and every
  result is stored as a JSON record under a schema-version tag
  (``repro.runtime.cache.SCHEMA_TAG``); warm reruns skip simulation
  entirely. Bumping the tag orphans stale records rather than reusing them.
* **Sweeps run in parallel — or distributed.** Experiment modules
  assemble their full (workload, config) job list and call
  :func:`precompute`; the misses execute on the selected executor
  backend (``REPRO_BACKEND``/``--backend``): a process pool with
  ``REPRO_JOBS``/``--jobs`` > 1, or work-stealing broker workers
  (``python -m repro.runtime worker``) sharing ``REPRO_CACHE_DIR`` —
  see ``docs/runtime.md``. Ordering and values are deterministic —
  parallel and distributed runs are bit-identical to serial ones.
  ``REPRO_SCALE`` only selects the grid each module assembles; it
  composes freely with the flags (each scale's runs are distinct cache
  entries, since the workload scale is part of the key). Option
  precedence (explicit kwargs/flags beat ``REPRO_*`` beat defaults) is
  asserted in :func:`repro.runtime.resolve_options`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.tables import format_table
from ..envopts import env_str
from ..config import SimConfig
from ..core.mechanisms import make_config
from ..core.results import SimulationResult
from ..runtime import SimJob, get_runtime
from ..workloads.profiles import workload_set

def workload_names(set_name: str | None = None) -> tuple[str, ...]:
    """Workload names every experiment iterates, in paper order.

    Resolved at call time (mirroring :func:`get_scale`): defaults to the
    six Table II equivalents, ``REPRO_WORKLOAD_SET=all`` (or
    ``extended``) sweeps the extra scenario profiles — the paper-figure
    grids are untouched unless a run opts in.
    """
    return tuple(p.name for p in workload_set(set_name))


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be."""

    name: str
    #: Workload scale factor (footprint and trace length together).
    workload_scale: float
    #: LLC latency sweep points (Figures 2, 5).
    latency_points: tuple[int, ...]
    #: BTB sizes for the Figure 5 sweep.
    btb_sizes: tuple[int, ...]
    #: FDIP BTB sizes for the Figure 3 breakdown.
    fig3_btb_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.workload_scale <= 0:
            raise ValueError("workload scale must be positive")


SCALES: dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        name="quick",
        workload_scale=0.25,
        latency_points=(1, 30, 70),
        btb_sizes=(2048, 8192, 32768),
        fig3_btb_sizes=(2048, 8192),
    ),
    "default": ExperimentScale(
        name="default",
        workload_scale=1.0,
        latency_points=(1, 10, 30, 50, 70),
        btb_sizes=(2048, 8192, 32768),
        fig3_btb_sizes=(2048, 4096, 8192, 32768),
    ),
    "full": ExperimentScale(
        name="full",
        workload_scale=1.0,
        latency_points=(1, 10, 20, 30, 40, 50, 60, 70),
        btb_sizes=(2048, 4096, 8192, 16384, 32768),
        fig3_btb_sizes=(2048, 4096, 8192, 16384, 32768),
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by argument, ``REPRO_SCALE`` env var, or default."""
    chosen = name or env_str("REPRO_SCALE", "default")
    try:
        return SCALES[chosen]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {chosen!r}; known scales: {known}") from None


# ---------------------------------------------------------------------------
# Cached simulation runs (figures 7/8/9 share one grid; sweeps reuse bases).
# All execution/caching delegates to the process-wide repro.runtime instance.
# ---------------------------------------------------------------------------


def run_cached(
    workload_name: str,
    config: SimConfig,
    workload_scale: float = 1.0,
) -> SimulationResult:
    """Run (or fetch) one simulation via the shared experiment runtime.

    Keyed by the exhaustive config digest; repeated in-process calls with
    an equal config return the identical result object.
    """
    return get_runtime().run_one(workload_name, config, workload_scale)


def precompute(
    pairs: list[tuple[str, SimConfig]],
    scale: ExperimentScale,
) -> None:
    """Execute a whole (workload, config) job list through the runtime.

    Sweep modules call this with every point they are about to read so the
    runtime can batch the cache misses across a process pool; the
    point-by-point ``run_cached`` calls that follow are then pure memo hits.
    Duplicates are fine — the runtime dedupes by key.
    """
    get_runtime().run_many(
        [SimJob(name, cfg, scale.workload_scale) for name, cfg in pairs]
    )


def clear_run_cache() -> None:
    """Drop the in-process memo (any disk cache stays intact)."""
    get_runtime().clear_memo()


def baseline_config(
    btb_entries: int | None = None,
    llc_round_trip: int | None = None,
    noc_kind: str | None = None,
) -> SimConfig:
    """The matched no-prefetch baseline config for the given overrides."""
    cfg = make_config("none")
    if btb_entries is not None:
        cfg = cfg.with_btb_entries(btb_entries)
    if llc_round_trip is not None:
        cfg = cfg.with_llc_latency(llc_round_trip)
    if noc_kind is not None:
        cfg = replace(
            cfg, memory=replace(cfg.memory, noc=replace(cfg.memory.noc, kind=noc_kind))
        )
    return cfg


def baseline_for(
    workload_name: str,
    scale: ExperimentScale,
    btb_entries: int | None = None,
    llc_round_trip: int | None = None,
    noc_kind: str | None = None,
) -> SimulationResult:
    """The matched no-prefetch baseline used by coverage/speedup metrics."""
    cfg = baseline_config(btb_entries, llc_round_trip, noc_kind)
    return run_cached(workload_name, cfg, scale.workload_scale)


# ---------------------------------------------------------------------------
# Result container
# ---------------------------------------------------------------------------


@dataclass
class ExperimentResult:
    """One regenerated exhibit: a titled table plus free-form notes."""

    exhibit: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_table(self, float_fmt: str = "{:.3f}") -> str:
        text = format_table(self.headers, self.rows, title=self.title, float_fmt=float_fmt)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def column(self, header: str) -> list[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_for(self, label: object) -> list[object]:
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.exhibit}")
