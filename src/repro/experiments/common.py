"""Shared experiment infrastructure: scales, cached runs, result tables.

Experiments default to the ``default`` scale; set ``REPRO_SCALE=quick`` for
CI-speed runs or ``REPRO_SCALE=full`` for the most faithful (slowest)
regeneration. All scales preserve the footprint:structure over-subscription
ratios (see DESIGN.md section 5.6); quick runs shrink trace length and
sweep density, not the microarchitecture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..analysis.tables import format_table
from ..config import SimConfig
from ..core.mechanisms import make_config
from ..core.results import SimulationResult
from ..core.simulator import Simulator
from ..workloads.profiles import ALL_PROFILES
from ..workloads.workload import load_workload

#: Paper-order workload names.
WORKLOAD_ORDER: tuple[str, ...] = tuple(p.name for p in ALL_PROFILES)


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be."""

    name: str
    #: Workload scale factor (footprint and trace length together).
    workload_scale: float
    #: LLC latency sweep points (Figures 2, 5).
    latency_points: tuple[int, ...]
    #: BTB sizes for the Figure 5 sweep.
    btb_sizes: tuple[int, ...]
    #: FDIP BTB sizes for the Figure 3 breakdown.
    fig3_btb_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.workload_scale <= 0:
            raise ValueError("workload scale must be positive")


SCALES: dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        name="quick",
        workload_scale=0.25,
        latency_points=(1, 30, 70),
        btb_sizes=(2048, 8192, 32768),
        fig3_btb_sizes=(2048, 8192),
    ),
    "default": ExperimentScale(
        name="default",
        workload_scale=1.0,
        latency_points=(1, 10, 30, 50, 70),
        btb_sizes=(2048, 8192, 32768),
        fig3_btb_sizes=(2048, 4096, 8192, 32768),
    ),
    "full": ExperimentScale(
        name="full",
        workload_scale=1.0,
        latency_points=(1, 10, 20, 30, 40, 50, 60, 70),
        btb_sizes=(2048, 4096, 8192, 16384, 32768),
        fig3_btb_sizes=(2048, 4096, 8192, 16384, 32768),
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by argument, ``REPRO_SCALE`` env var, or default."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[chosen]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {chosen!r}; known scales: {known}") from None


# ---------------------------------------------------------------------------
# Cached simulation runs (figures 7/8/9 share one grid; sweeps reuse bases).
# ---------------------------------------------------------------------------

_RUN_CACHE: dict[tuple, SimulationResult] = {}
_RUN_CACHE_LIMIT = 4096


def _config_key(config: SimConfig) -> tuple:
    return (
        config.mechanism,
        config.btb.entries,
        config.predictor.kind,
        config.core.ftq_depth,
        config.prefetch.throttle_blocks,
        config.prefetch.btb_prefetch_buffer_entries,
        config.core.predecode_latency,
        config.memory.llc_round_trip_override,
        config.memory.noc.kind,
        config.perfect_l1i,
        config.perfect_btb,
    )


def run_cached(
    workload_name: str,
    config: SimConfig,
    workload_scale: float = 1.0,
) -> SimulationResult:
    """Run (or fetch) one simulation; memoized per process."""
    key = (workload_name, workload_scale, _config_key(config))
    hit = _RUN_CACHE.get(key)
    if hit is not None:
        return hit
    workload = load_workload(workload_name, scale=workload_scale)
    result = Simulator(workload, config).run()
    if len(_RUN_CACHE) >= _RUN_CACHE_LIMIT:
        _RUN_CACHE.pop(next(iter(_RUN_CACHE)))
    _RUN_CACHE[key] = result
    return result


def clear_run_cache() -> None:
    _RUN_CACHE.clear()


def baseline_for(
    workload_name: str,
    scale: ExperimentScale,
    btb_entries: int | None = None,
    llc_round_trip: int | None = None,
    noc_kind: str | None = None,
) -> SimulationResult:
    """The matched no-prefetch baseline used by coverage/speedup metrics."""
    cfg = make_config("none")
    if btb_entries is not None:
        cfg = cfg.with_btb_entries(btb_entries)
    if llc_round_trip is not None:
        cfg = cfg.with_llc_latency(llc_round_trip)
    if noc_kind is not None:
        cfg = replace(
            cfg, memory=replace(cfg.memory, noc=replace(cfg.memory.noc, kind=noc_kind))
        )
    return run_cached(workload_name, cfg, scale.workload_scale)


# ---------------------------------------------------------------------------
# Result container
# ---------------------------------------------------------------------------


@dataclass
class ExperimentResult:
    """One regenerated exhibit: a titled table plus free-form notes."""

    exhibit: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_table(self, float_fmt: str = "{:.3f}") -> str:
        text = format_table(self.headers, self.rows, title=self.title, float_fmt=float_fmt)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def column(self, header: str) -> list[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_for(self, label: object) -> list[object]:
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.exhibit}")
