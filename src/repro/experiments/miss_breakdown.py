"""Figure 3 — sources of miss cycles (sequential / conditional / unconditional).

Paper: in the no-prefetch baseline, sequential misses dominate (40-54% of
miss cycles); FDIP covers the bulk of all three classes, with the residual
difference between small and large BTBs concentrated in *unconditional*
discontinuities (far-away targets only a BTB can reveal).

Rows are normalized to each workload's no-prefetch baseline miss cycles,
like the paper's 100%-stacked bars.
"""

from __future__ import annotations

from ..core.mechanisms import make_config
from .common import (
    workload_names,
    ExperimentResult,
    ExperimentScale,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)


def _configs(scale: ExperimentScale) -> list[tuple[str, object]]:
    configs: list[tuple[str, object]] = [
        ("Base 2K", make_config("none")),
        ("Next-Line 2K", make_config("next_line")),
    ]
    for entries in scale.fig3_btb_sizes:
        label = f"FDIP {entries // 1024}K"
        configs.append((label, make_config("fdip").with_btb_entries(entries)))
    configs.append(("PIF 32K", make_config("pif").with_btb_entries(32768)))
    return configs


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="figure3",
        title="Figure 3: miss-cycle breakdown, % of no-prefetch baseline miss cycles",
        headers=["config", "sequential%", "conditional%", "unconditional%", "total%"],
    )
    configs = _configs(scale)
    pairs = [(name, baseline_config()) for name in names]
    pairs += [(name, cfg) for _, cfg in configs for name in names]
    precompute(pairs, scale)
    base_totals = {name: baseline_for(name, scale).stall_cycles for name in names}
    denom = sum(base_totals.values())
    for label, cfg in configs:
        seq = cond = uncond = 0.0
        for name in names:
            res = run_cached(name, cfg, scale.workload_scale)
            seq += res.raw.get("stall_seq", 0)
            cond += res.raw.get("stall_cond", 0)
            uncond += res.raw.get("stall_uncond", 0)
        row = [
            label,
            100.0 * seq / denom,
            100.0 * cond / denom,
            100.0 * uncond / denom,
            100.0 * (seq + cond + uncond) / denom,
        ]
        result.rows.append(row)
    base_row = result.row_for("Base 2K")
    result.notes.append(
        f"baseline sequential share = {100 * float(base_row[1]) / float(base_row[4]):.0f}% "
        "(paper: 40-54%)"
    )
    result.notes.append(
        "paper: the FDIP BTB-size gap concentrates in the unconditional class"
    )
    return result


def main() -> None:
    print(run().to_table(float_fmt="{:.1f}"))


if __name__ == "__main__":
    main()
