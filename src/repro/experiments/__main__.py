"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments [quick|default|full] [exhibit ...]
                                [--jobs N] [--cache-dir PATH] [--backend NAME]

Options:

``--jobs N``
    Execute uncached simulation runs on an ``N``-worker process pool.
    Tables are bit-identical to a serial run — parallelism only changes
    where a simulation executes, never its inputs or the result ordering.
    Defaults to ``$REPRO_JOBS`` (else 1, fully serial).

``--cache-dir PATH``
    Persist every simulation result as a JSON record under ``PATH`` (see
    ``repro.runtime.cache`` for the layout; records are versioned by an
    engine schema tag, so results from an older engine are never reused).
    A warm rerun against a populated cache skips simulation entirely.
    Defaults to ``$REPRO_CACHE_DIR`` (else no disk cache).

``--backend NAME``
    Executor backend for uncached runs: ``serial``, ``pool``, ``broker``
    or ``auto`` (default; picks ``pool`` when jobs > 1). ``broker``
    fans jobs out through the file-based queue under the cache dir —
    start stealers with ``python -m repro.runtime worker`` (any number,
    any machine sharing the filesystem; see ``docs/runtime.md``).
    Defaults to ``$REPRO_BACKEND``. Results are bit-identical across
    backends.

The positional scale (or ``$REPRO_SCALE``) only chooses how big a grid each
exhibit assembles; it composes freely with the flags — each scale's runs
are distinct cache entries.
"""

from __future__ import annotations

import sys
import time

from ..errors import ConfigError
from ..runtime import backend_summary, configure_runtime, get_runtime
from . import EXPERIMENTS
from .common import SCALES


def _parse_flag(args: list[str], name: str) -> str | None:
    """Pop ``--name VALUE`` or ``--name=VALUE`` from ``args`` (last wins)."""
    value: str | None = None
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == name:
            if i + 1 >= len(args):
                raise SystemExit(f"{name} requires a value")
            value = args[i + 1]
            del args[i : i + 2]
        elif arg.startswith(name + "="):
            value = arg[len(name) + 1 :]
            del args[i]
        else:
            i += 1
    return value


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        jobs_arg = _parse_flag(args, "--jobs")
        cache_dir = _parse_flag(args, "--cache-dir")
        backend = _parse_flag(args, "--backend")
        jobs = int(jobs_arg) if jobs_arg is not None else None
    except ValueError:
        print("--jobs expects an integer", file=sys.stderr)
        return 2
    if jobs is not None and jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if jobs is not None or cache_dir is not None or backend is not None:
        try:
            configure_runtime(jobs=jobs, cache_dir=cache_dir, backend=backend)
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    scale = None
    if args and args[0] in SCALES:
        scale = args.pop(0)
    chosen = args or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in chosen:
        start = time.time()
        result = EXPERIMENTS[name].run(scale)
        elapsed = time.time() - start
        print(result.to_table())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    runtime = get_runtime()
    if runtime.disk is not None:
        print(
            f"[cache: {runtime.disk.hits} disk hits, "
            f"{runtime.executed} simulated, jobs={runtime.jobs}, "
            f"{backend_summary(runtime)}]"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
