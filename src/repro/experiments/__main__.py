"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments [quick|default|full] [exhibit ...]
"""

from __future__ import annotations

import sys
import time

from . import EXPERIMENTS
from .common import SCALES


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    scale = None
    if args and args[0] in SCALES:
        scale = args.pop(0)
    chosen = args or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in chosen:
        start = time.time()
        result = EXPERIMENTS[name].run(scale)
        elapsed = time.time() - start
        print(result.to_table())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
