"""Figure 2 — front-end stall cycles covered vs. LLC latency.

Paper: with a near-ideal 32K-entry BTB, FDIP+TAGE covers stall cycles
nearly identically to PIF across LLC latencies of 1-70 cycles; FDIP with a
2-bit (bimodal) predictor tracks closely, and even a naive never-taken
predictor attains much of the coverage — because conditional-branch
targets are short (Figure 4) and unconditional branches need no direction
prediction at all (Section III-A).
"""

from __future__ import annotations

from ..config import SimConfig
from ..core.mechanisms import make_config
from .common import (
    workload_names,
    ExperimentResult,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)
#: Near-ideal BTB used to isolate the direction predictor (paper III-A).
IDEAL_BTB_ENTRIES = 32768


def _series_config(mechanism: str, predictor: str, lat: int) -> SimConfig:
    cfg = make_config(mechanism).with_btb_entries(IDEAL_BTB_ENTRIES)
    return cfg.with_llc_latency(lat).with_predictor(predictor)

#: (label, mechanism, predictor kind) series in paper order.
SERIES: tuple[tuple[str, str, str], ...] = (
    ("PIF", "pif", "tage"),
    ("FDIP TAGE", "fdip", "tage"),
    ("FDIP 2-bit", "fdip", "bimodal"),
    ("FDIP Never-Taken", "fdip", "never_taken"),
)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    latencies = scale.latency_points
    result = ExperimentResult(
        exhibit="figure2",
        title="Figure 2: fraction of stall cycles covered vs LLC latency (32K BTB)",
        headers=["series"] + [f"llc={lat}" for lat in latencies],
    )
    pairs = []
    for lat in latencies:
        for name in names:
            pairs.append(
                (name, baseline_config(btb_entries=IDEAL_BTB_ENTRIES, llc_round_trip=lat))
            )
            for _, mechanism, predictor in SERIES:
                pairs.append((name, _series_config(mechanism, predictor, lat)))
    precompute(pairs, scale)
    for label, mechanism, predictor in SERIES:
        row: list[object] = [label]
        for lat in latencies:
            covered = 0.0
            base_total = 0.0
            for name in names:
                base = baseline_for(
                    name, scale, btb_entries=IDEAL_BTB_ENTRIES, llc_round_trip=lat
                )
                res = run_cached(
                    name, _series_config(mechanism, predictor, lat), scale.workload_scale
                )
                covered += max(0.0, base.stall_cycles - res.stall_cycles)
                base_total += base.stall_cycles
            row.append(covered / base_total if base_total else 0.0)
        result.rows.append(row)
    result.notes.append(
        "paper: FDIP TAGE tracks PIF across the latency range; never-taken "
        "retains most coverage (short conditional targets)"
    )
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
