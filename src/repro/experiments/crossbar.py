"""Figure 11 — performance at a lower (crossbar) LLC round-trip latency.

Paper: replacing the mesh (avg ~30-cycle LLC round trip) with a wide
crossbar (~18 cycles) shrinks everyone's absolute gains (misses are
cheaper) but preserves the ordering, including Boomerang's slight edge
over Confluence.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimConfig
from ..core.mechanisms import make_config
from ..stats import geometric_mean
from .common import (
    workload_names,
    ExperimentResult,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)

#: The Figure 11 mechanism set.
MECHS: tuple[str, ...] = ("next_line", "fdip", "shift", "confluence", "boomerang")

LABELS = {
    "next_line": "Next Line",
    "fdip": "FDIP",
    "shift": "SHIFT",
    "confluence": "Confluence",
    "boomerang": "Boomerang",
}


def _crossbar(cfg: SimConfig) -> SimConfig:
    return replace(
        cfg, memory=replace(cfg.memory, noc=replace(cfg.memory.noc, kind="crossbar"))
    )


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="figure11",
        title="Figure 11: speedup over no-prefetch baseline, crossbar NoC (18-cycle LLC)",
        headers=["workload"] + [LABELS[m] for m in MECHS],
    )
    per_mech: dict[str, list[float]] = {m: [] for m in MECHS}
    pairs = [(name, baseline_config(noc_kind="crossbar")) for name in names]
    pairs += [(name, _crossbar(make_config(m))) for name in names for m in MECHS]
    precompute(pairs, scale)
    for name in names:
        base = baseline_for(name, scale, noc_kind="crossbar")
        row: list[object] = [name]
        for mech in MECHS:
            cfg = _crossbar(make_config(mech))
            res = run_cached(name, cfg, scale.workload_scale)
            speedup = res.speedup_over(base)
            per_mech[mech].append(speedup)
            row.append(speedup)
        result.rows.append(row)
    result.rows.append(["gmean"] + [geometric_mean(per_mech[m]) for m in MECHS])
    result.notes.append("paper: same ordering as the mesh, smaller absolute gains")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
