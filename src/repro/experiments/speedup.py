"""Figure 9 — speedup over the no-prefetch baseline (2K-entry BTB).

Paper: Boomerang improves performance 27.5% on average, edging Confluence
(+1%) without any of its metadata; both complete control-flow-delivery
schemes beat the L1-I-only prefetchers by ~11% on average because they
also remove pipeline squashes.
"""

from __future__ import annotations

from ..core.mechanisms import FIGURE_MECHANISMS
from ..stats import geometric_mean
from .common import workload_names, ExperimentResult, get_scale
from .grid import MECHANISM_LABELS, run_grid


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    grid = run_grid(scale, workloads=names)
    result = ExperimentResult(
        exhibit="figure9",
        title="Figure 9: speedup over no-prefetch baseline",
        headers=["workload"] + [MECHANISM_LABELS[m] for m in FIGURE_MECHANISMS],
    )
    per_mech: dict[str, list[float]] = {m: [] for m in FIGURE_MECHANISMS}
    for name in names:
        base = grid[(name, "none")]
        row: list[object] = [name]
        for mech in FIGURE_MECHANISMS:
            speedup = grid[(name, mech)].speedup_over(base)
            per_mech[mech].append(speedup)
            row.append(speedup)
        result.rows.append(row)
    result.rows.append(
        ["gmean"] + [geometric_mean(per_mech[m]) for m in FIGURE_MECHANISMS]
    )
    result.notes.append(
        "paper: Boomerang +27.5% avg, ~= Confluence, ~+11% over L1-I-only schemes"
    )
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
