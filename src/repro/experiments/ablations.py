"""Ablations of Boomerang's design choices (paper Section IV-C).

Beyond the paper's own throttle sweep (Figure 10), these quantify the
pieces DESIGN.md calls out:

* **BTB prefetch buffer capacity** — staging predecoded entries outside
  the BTB; 32 entries is the paper's choice.
* **FTQ depth** — how far the decoupled front end runs ahead.
* **Predecode latency** — how expensive each BTB miss resolution is.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.mechanisms import make_config
from ..stats import geometric_mean
from .common import (
    WORKLOAD_ORDER,
    ExperimentResult,
    baseline_for,
    get_scale,
    run_cached,
)

BTB_BUFFER_SIZES: tuple[int, ...] = (1, 8, 32, 128)
FTQ_DEPTHS: tuple[int, ...] = (8, 16, 32, 64)
PREDECODE_LATENCIES: tuple[int, ...] = (1, 3, 6)


def _gmean_speedup(cfg, names, scale) -> float:
    speedups = []
    for name in names:
        base = baseline_for(name, scale)
        res = run_cached(name, cfg, scale.workload_scale)
        speedups.append(res.speedup_over(base))
    return geometric_mean(speedups)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else WORKLOAD_ORDER
    result = ExperimentResult(
        exhibit="ablations",
        title="Boomerang design ablations (gmean speedup over baseline)",
        headers=["knob", "value", "gmean_speedup"],
    )
    for size in BTB_BUFFER_SIZES:
        cfg = make_config("boomerang")
        cfg = replace(
            cfg, prefetch=replace(cfg.prefetch, btb_prefetch_buffer_entries=size)
        )
        result.rows.append(["btb_prefetch_buffer", size, _gmean_speedup(cfg, names, scale)])
    for depth in FTQ_DEPTHS:
        cfg = make_config("boomerang")
        cfg = replace(cfg, core=replace(cfg.core, ftq_depth=depth))
        result.rows.append(["ftq_depth", depth, _gmean_speedup(cfg, names, scale)])
    for latency in PREDECODE_LATENCIES:
        cfg = make_config("boomerang")
        cfg = replace(cfg, core=replace(cfg.core, predecode_latency=latency))
        result.rows.append(["predecode_latency", latency, _gmean_speedup(cfg, names, scale)])
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
