"""Ablations of Boomerang's design choices (paper Section IV-C).

Beyond the paper's own throttle sweep (Figure 10), these quantify the
pieces DESIGN.md calls out:

* **BTB prefetch buffer capacity** — staging predecoded entries outside
  the BTB; 32 entries is the paper's choice.
* **FTQ depth** — how far the decoupled front end runs ahead.
* **Predecode latency** — how expensive each BTB miss resolution is.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimConfig
from ..core.mechanisms import make_config
from ..stats import geometric_mean
from .common import (
    workload_names,
    ExperimentResult,
    ExperimentScale,
    baseline_config,
    baseline_for,
    get_scale,
    precompute,
    run_cached,
)

BTB_BUFFER_SIZES: tuple[int, ...] = (1, 8, 32, 128)
FTQ_DEPTHS: tuple[int, ...] = (8, 16, 32, 64)
PREDECODE_LATENCIES: tuple[int, ...] = (1, 3, 6)


def _knob_configs() -> list[tuple[str, int, object]]:
    """Every (knob, value, config) point of the ablation sweep."""
    points: list[tuple[str, int, object]] = []
    for size in BTB_BUFFER_SIZES:
        cfg = make_config("boomerang")
        cfg = replace(
            cfg, prefetch=replace(cfg.prefetch, btb_prefetch_buffer_entries=size)
        )
        points.append(("btb_prefetch_buffer", size, cfg))
    for depth in FTQ_DEPTHS:
        cfg = make_config("boomerang")
        points.append(("ftq_depth", depth, replace(cfg, core=replace(cfg.core, ftq_depth=depth))))
    for latency in PREDECODE_LATENCIES:
        cfg = make_config("boomerang")
        points.append(
            ("predecode_latency", latency, replace(cfg, core=replace(cfg.core, predecode_latency=latency)))
        )
    return points


def _gmean_speedup(
    cfg: SimConfig, names: tuple[str, ...], scale: ExperimentScale
) -> float:
    speedups = []
    for name in names:
        base = baseline_for(name, scale)
        res = run_cached(name, cfg, scale.workload_scale)
        speedups.append(res.speedup_over(base))
    return geometric_mean(speedups)


def run(scale_name: str | None = None, workloads: tuple[str, ...] | None = None) -> ExperimentResult:
    scale = get_scale(scale_name)
    names = workloads if workloads is not None else workload_names()
    result = ExperimentResult(
        exhibit="ablations",
        title="Boomerang design ablations (gmean speedup over baseline)",
        headers=["knob", "value", "gmean_speedup"],
    )
    points = _knob_configs()
    pairs = [(name, baseline_config()) for name in names]
    pairs += [(name, cfg) for _, _, cfg in points for name in names]
    precompute(pairs, scale)
    for knob, value, cfg in points:
        result.rows.append([knob, value, _gmean_speedup(cfg, names, scale)])
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
