"""Section VI-D — storage cost comparison.

Paper: Boomerang needs 540 bytes total (204 B FTQ + 336 B BTB prefetch
buffer) against Confluence's 240 KB LLC tag-array extension plus a >200 KB
LLC capacity carve per co-scheduled workload; PIF needs >200 KB of private
per-core metadata; RDIP ~60 KB; SHIFT >400 KB shared.
"""

from __future__ import annotations

from ..analysis.storage import storage_comparison
from ..analysis.tables import human_bytes
from ..config import SimConfig
from .common import ExperimentResult


def run(scale_name: str | None = None, n_workloads: int = 1) -> ExperimentResult:
    del scale_name  # analytic: scale-independent
    result = ExperimentResult(
        exhibit="storage",
        title=f"Section VI-D: dedicated metadata storage ({n_workloads} workload(s))",
        headers=["mechanism", "per_core", "llc_carve", "shared", "total", "notes"],
    )
    for cost in storage_comparison(SimConfig(), n_workloads=n_workloads):
        result.rows.append(
            [
                cost.mechanism,
                human_bytes(cost.per_core_bytes),
                human_bytes(cost.llc_carve_bytes),
                human_bytes(cost.shared_bytes),
                human_bytes(cost.total_bytes),
                cost.notes,
            ]
        )
    result.notes.append("paper: Boomerang 540 B vs Confluence ~240 KB + LLC carve")
    return result


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
