"""The shared workload x mechanism grid behind Figures 7, 8 and 9."""

from __future__ import annotations

from ..core.mechanisms import FIGURE_MECHANISMS, make_config
from ..core.results import SimulationResult
from .common import (
    workload_names,
    ExperimentScale,
    baseline_config,
    precompute,
    run_cached,
)

#: Display labels matching the paper's figure legends.
MECHANISM_LABELS: dict[str, str] = {
    "none": "Base",
    "next_line": "Next Line",
    "dip": "DIP",
    "fdip": "FDIP",
    "pif": "PIF",
    "shift": "SHIFT",
    "confluence": "Confluence",
    "boomerang": "Boomerang",
}


def run_grid(
    scale: ExperimentScale,
    workloads: tuple[str, ...] | None = None,
    mechanisms: tuple[str, ...] = FIGURE_MECHANISMS,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (workload, mechanism) pair, plus the 'none' baseline.

    The whole grid is submitted to the experiment runtime as one batch, so
    uncached cells execute in parallel under ``--jobs``; results are
    memoized process-wide and the three figures sharing this grid pay for
    it once.
    """
    names = workloads if workloads is not None else workload_names()
    cells: list[tuple[str, str]] = []
    pairs = []
    for wl in names:
        cells.append((wl, "none"))
        pairs.append((wl, baseline_config()))
        for mech in mechanisms:
            cells.append((wl, mech))
            pairs.append((wl, make_config(mech)))
    precompute(pairs, scale)
    return {
        cell: run_cached(pair[0], pair[1], scale.workload_scale)
        for cell, pair in zip(cells, pairs)
    }
