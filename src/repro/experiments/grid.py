"""The shared workload x mechanism grid behind Figures 7, 8 and 9."""

from __future__ import annotations

from ..core.mechanisms import FIGURE_MECHANISMS, make_config
from ..core.results import SimulationResult
from .common import WORKLOAD_ORDER, ExperimentScale, baseline_for, run_cached

#: Display labels matching the paper's figure legends.
MECHANISM_LABELS: dict[str, str] = {
    "none": "Base",
    "next_line": "Next Line",
    "dip": "DIP",
    "fdip": "FDIP",
    "pif": "PIF",
    "shift": "SHIFT",
    "confluence": "Confluence",
    "boomerang": "Boomerang",
}


def run_grid(
    scale: ExperimentScale,
    workloads: tuple[str, ...] | None = None,
    mechanisms: tuple[str, ...] = FIGURE_MECHANISMS,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (workload, mechanism) pair, plus the 'none' baseline.

    Results are memoized process-wide, so the three figures sharing this
    grid pay for it once.
    """
    names = workloads if workloads is not None else WORKLOAD_ORDER
    grid: dict[tuple[str, str], SimulationResult] = {}
    for wl in names:
        grid[(wl, "none")] = baseline_for(wl, scale)
        for mech in mechanisms:
            grid[(wl, mech)] = run_cached(
                wl, make_config(mech), scale.workload_scale
            )
    return grid
