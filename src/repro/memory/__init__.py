"""Memory-system substrate: caches, prefetch buffer, NoC and hierarchy."""

from .cache import SetAssocCache
from .hierarchy import InstructionMemory
from .noc import (
    CrossbarNoC,
    MeshNoC,
    average_round_trip,
    make_noc,
    mesh_average_hops,
    one_way_latency,
)
from .prefetch_buffer import PrefetchBuffer

__all__ = [
    "CrossbarNoC",
    "InstructionMemory",
    "MeshNoC",
    "PrefetchBuffer",
    "SetAssocCache",
    "average_round_trip",
    "make_noc",
    "mesh_average_hops",
    "one_way_latency",
]
