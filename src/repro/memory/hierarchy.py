"""Instruction-side memory hierarchy with in-flight fill tracking.

Ties together the L1-I, its FIFO prefetch buffer, a shared-LLC model and
DRAM into the three request paths the front-end uses:

* **demand fetch** (:meth:`InstructionMemory.demand_access`) — may stall the
  fetch engine until the fill returns,
* **prefetch probe** (:meth:`InstructionMemory.prefetch_probe`) — fire and
  forget; fills land in the prefetch buffer,
* **block read for predecode** (:meth:`InstructionMemory.data_ready`) — used
  by Boomerang's BTB miss probes; also fills the prefetch buffer.

A demand access that finds its block already in flight (e.g. prefetched but
not yet arrived) is *merged* onto the outstanding fill, which is exactly the
partial-coverage effect the paper's stall-cycles-covered metric is chosen to
capture.
"""

from __future__ import annotations

import heapq

from ..config import MemoryParams
from .cache import SetAssocCache
from .noc import average_round_trip
from .prefetch_buffer import PrefetchBuffer

#: In-flight fill destinations.
_DEST_L1I = 0
_DEST_PB = 1


class InstructionMemory:
    """L1-I + prefetch buffer + LLC + DRAM timing model."""

    def __init__(self, params: MemoryParams, perfect: bool = False):
        self.params = params
        self.perfect = perfect
        self.l1i = SetAssocCache(params.l1i)
        self.pb = PrefetchBuffer(params.prefetch_buffer_entries)
        self.llc = SetAssocCache(params.llc)
        if params.llc_round_trip_override is not None:
            self.llc_round_trip = params.llc_round_trip_override
        else:
            self.llc_round_trip = average_round_trip(params.noc, params.llc.hit_latency)
        self.memory_latency = params.memory_latency

        #: block -> [ready_cycle, dest]
        self._inflight: dict[int, list[int]] = {}
        self._arrivals: list[tuple[int, int]] = []  # heap of (ready, block)

        # Counters (collected by the engine into the run's StatGroup).
        self.demand_accesses = 0
        self.demand_misses = 0
        self.demand_merged = 0
        self.pb_promotions = 0
        self.prefetches_issued = 0
        self.predecode_fetches = 0
        self.llc_misses_to_memory = 0

    def _fill_latency(self, block: int, now: int) -> int:
        """LLC (or DRAM) latency for one fill; installs into the LLC.

        Outstanding fills beyond the contention-free window queue behind
        each other — the bandwidth cost that makes wasteful prefetch bursts
        delay useful blocks (paper Section VI-E1).
        """
        excess = len(self._inflight) - self.params.llc_contention_free
        contention = self.params.llc_contention_penalty * excess if excess > 0 else 0
        if self.llc.lookup(block):
            return self.llc_round_trip + contention
        self.llc.insert(block)
        self.llc_misses_to_memory += 1
        return self.llc_round_trip + self.memory_latency + contention

    def drain_arrivals(self, now: int) -> list[int]:
        """Install fills whose latency elapsed; returns arrived block numbers.

        Must be called once per cycle before new requests are made. Arrived
        blocks are reported so predecode-on-fill mechanisms (Confluence) can
        hook them.
        """
        arrived: list[int] = []
        heap = self._arrivals
        while heap and heap[0][0] <= now:
            _, block = heapq.heappop(heap)
            entry = self._inflight.pop(block, None)
            if entry is None:
                continue  # superseded (e.g. duplicate arrival after upgrade)
            if entry[1] == _DEST_L1I:
                self.l1i.insert(block)
            else:
                self.pb.insert(block)
            arrived.append(block)
        return arrived

    def demand_access(self, block: int, now: int) -> int:
        """Demand-fetch ``block``; returns the cycle its data is available."""
        self.demand_accesses += 1
        if self.perfect:
            return now
        if self.l1i.lookup(block):
            return now
        if self.pb.promote(block):
            self.l1i.insert(block)
            self.pb_promotions += 1
            return now
        inflight = self._inflight.get(block)
        if inflight is not None:
            inflight[1] = _DEST_L1I  # upgrade: install straight into the L1-I
            self.demand_merged += 1
            return inflight[0]
        self.demand_misses += 1
        ready = now + self._fill_latency(block, now)
        self._inflight[block] = [ready, _DEST_L1I]
        heapq.heappush(self._arrivals, (ready, block))
        return ready

    def prefetch_probe(self, block: int, now: int, extra_delay: int = 0) -> bool:
        """FDIP-style probe: fetch ``block`` into the prefetch buffer if absent.

        Returns True when a fill was actually issued (block was missing and
        not already in flight). ``extra_delay`` models metadata-access delay
        in front of the fill (SHIFT's LLC-resident history).
        """
        if self.perfect:
            return False
        if self.l1i.contains(block) or block in self.pb or block in self._inflight:
            return False
        self.prefetches_issued += 1
        ready = now + extra_delay + self._fill_latency(block, now)
        self._inflight[block] = [ready, _DEST_PB]
        heapq.heappush(self._arrivals, (ready, block))
        return True

    def data_ready(self, block: int, now: int) -> int:
        """Cycle at which the raw bytes of ``block`` can be predecoded.

        Present blocks are readable immediately; absent blocks are fetched
        into the prefetch buffer (Boomerang's BTB miss probe path).
        """
        if self.perfect:
            return now
        if self.l1i.contains(block) or block in self.pb:
            return now
        inflight = self._inflight.get(block)
        if inflight is not None:
            return inflight[0]
        self.predecode_fetches += 1
        ready = now + self._fill_latency(block, now)
        self._inflight[block] = [ready, _DEST_PB]
        heapq.heappush(self._arrivals, (ready, block))
        return ready

    def is_resident_or_inflight(self, block: int) -> bool:
        """True if a BTB miss probe for ``block`` would hit locally."""
        return (
            self.l1i.contains(block)
            or block in self.pb
            or block in self._inflight
        )

    def counters(self) -> dict[str, int]:
        """Raw counter snapshot (engine subtracts warmup baselines)."""
        return {
            "l1i_demand_accesses": self.demand_accesses,
            "l1i_demand_misses": self.demand_misses,
            "l1i_demand_merged": self.demand_merged,
            "l1i_pb_promotions": self.pb_promotions,
            "l1i_prefetches_issued": self.prefetches_issued,
            "predecode_fetches": self.predecode_fetches,
            "llc_misses_to_memory": self.llc_misses_to_memory,
            "pb_evictions": self.pb.evictions,
        }
