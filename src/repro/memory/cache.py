"""Set-associative LRU cache over cache-block numbers.

The simulator tracks instruction blocks by *block number* (address >> 6);
this structure answers presence questions and maintains true LRU per set.
Used for both the L1-I and the LLC.
"""

from __future__ import annotations

from ..config import CacheParams


class SetAssocCache:
    """LRU set-associative cache of block numbers.

    Each set is a dict used as an ordered set: insertion order is LRU order
    (oldest first); a touch re-inserts at the back.
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self._n_sets = params.n_sets
        self._set_mask = params.n_sets - 1
        self._assoc = params.assoc
        self._sets: list[dict[int, None]] = [dict() for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, block: int) -> bool:
        """Presence check that updates LRU and hit/miss counters."""
        way = self._sets[block & self._set_mask]
        if block in way:
            del way[block]
            way[block] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Presence check with no LRU or counter side effects."""
        return block in self._sets[block & self._set_mask]

    def insert(self, block: int) -> int | None:
        """Install ``block``; returns the evicted block number, if any."""
        way = self._sets[block & self._set_mask]
        if block in way:
            del way[block]
            way[block] = None
            return None
        victim = None
        if len(way) >= self._assoc:
            victim = next(iter(way))
            del way[victim]
            self.evictions += 1
        way[block] = None
        return victim

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was present."""
        way = self._sets[block & self._set_mask]
        if block in way:
            del way[block]
            return True
        return False

    def occupancy(self) -> int:
        """Total blocks currently resident."""
        return sum(len(way) for way in self._sets)

    def resident_blocks(self) -> set[int]:
        """Snapshot of all resident block numbers (test/debug helper)."""
        resident: set[int] = set()
        for way in self._sets:
            resident.update(way)
        return resident

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for way in self._sets:
            way.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
