"""FIFO prefetch buffer in front of the L1-I.

Prefetched blocks land here instead of the L1-I proper so that wrong or
untimely prefetches cannot pollute the cache (paper Section IV-A). A demand
hit *promotes* the block into the L1-I; capacity pressure evicts the oldest
resident ("replaced in a first-in-first-out manner").
"""

from __future__ import annotations


class PrefetchBuffer:
    """Fixed-capacity FIFO buffer of prefetched block numbers."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("prefetch buffer capacity must be >= 1")
        self.capacity = capacity
        self._blocks: dict[int, None] = {}
        self.inserts = 0
        self.promotions = 0
        self.evictions = 0

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def insert(self, block: int) -> int | None:
        """Add an arriving prefetch fill; returns the evicted block, if any."""
        if block in self._blocks:
            return None
        victim = None
        if len(self._blocks) >= self.capacity:
            victim = next(iter(self._blocks))
            del self._blocks[victim]
            self.evictions += 1
        self._blocks[block] = None
        self.inserts += 1
        return victim

    def promote(self, block: int) -> bool:
        """Remove ``block`` on a demand hit (caller installs it in the L1-I)."""
        if block in self._blocks:
            del self._blocks[block]
            self.promotions += 1
            return True
        return False

    def reset(self) -> None:
        self._blocks.clear()
        self.inserts = 0
        self.promotions = 0
        self.evictions = 0
