"""On-chip interconnect latency models.

The paper's 16-core CMP reaches its NUCA LLC over a 4x4 2D mesh at 3
cycles/hop, yielding an *average* LLC round trip of ~30 cycles; Section
VI-E2 swaps in a wide crossbar at an 18-cycle round trip. Both reductions
treat the NoC as a scalar latency — exactly what these models compute.
"""

from __future__ import annotations

from ..config import NoCParams


def mesh_average_hops(dim: int) -> float:
    """Average Manhattan distance between two uniform-random tiles.

    For an ``dim x dim`` mesh this is ``2*(dim^2-1)/(3*dim)`` hops.
    """
    if dim < 1:
        raise ValueError("mesh dimension must be >= 1")
    return 2.0 * (dim * dim - 1) / (3.0 * dim)


def one_way_latency(params: NoCParams) -> float:
    """Average one-way traversal latency in cycles."""
    if params.kind == "crossbar":
        return params.crossbar_round_trip / 2.0
    hops = mesh_average_hops(params.mesh_dim)
    return hops * params.cycles_per_hop + params.router_latency + params.serialization


def average_round_trip(params: NoCParams, llc_hit_latency: int) -> int:
    """Average L1-miss-to-fill round trip for an LLC hit, in cycles."""
    if params.kind == "crossbar":
        return params.crossbar_round_trip + llc_hit_latency
    return int(round(2 * one_way_latency(params) + llc_hit_latency))


class MeshNoC:
    """4x4-style 2D mesh latency model (paper Table I)."""

    def __init__(self, params: NoCParams):
        if params.kind != "mesh":
            raise ValueError("MeshNoC requires mesh NoCParams")
        self.params = params

    @property
    def average_hops(self) -> float:
        return mesh_average_hops(self.params.mesh_dim)

    def round_trip(self, llc_hit_latency: int) -> int:
        return average_round_trip(self.params, llc_hit_latency)


class CrossbarNoC:
    """Wide-crossbar latency model (paper Section VI-E2)."""

    def __init__(self, params: NoCParams):
        if params.kind != "crossbar":
            raise ValueError("CrossbarNoC requires crossbar NoCParams")
        self.params = params

    def round_trip(self, llc_hit_latency: int) -> int:
        return average_round_trip(self.params, llc_hit_latency)


def make_noc(params: NoCParams) -> MeshNoC | CrossbarNoC:
    """Instantiate the latency model matching ``params.kind``."""
    if params.kind == "mesh":
        return MeshNoC(params)
    return CrossbarNoC(params)
