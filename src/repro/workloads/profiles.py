"""Synthetic workload profiles: the paper's six servers plus extra scenarios.

**Paper set** (Table II): the six server workloads every paper figure is
regenerated on. **Extended set**: four additional control-flow-delivery
scenarios (microservice RPC fan-out, bytecode-interpreter dispatch,
ML-inference serving, compiler pass pipeline) that sample branching
behaviours the server six under-represent — deep call stacks, hot indirect
jumps, long straight-line kernels, visitor-style dispatch. Experiments opt
into them via the ``REPRO_WORKLOAD_SET`` selector (``paper`` | ``extended``
| ``all``, see :func:`workload_set`); the paper-figure grids are pinned to
the paper set by default and never perturbed.

The paper evaluates Nutch (web search), Darwin (media streaming), Apache and
Zeus (SPECweb99 front ends), and Oracle and DB2 (TPC-C OLTP) on a full-system
simulator. Those binaries and traces are not available, so each workload is
replaced by a *profile*: a parameter vector for the synthetic program builder
that reproduces the statistical properties the mechanisms under study react
to (see DESIGN.md section 2):

* instruction footprint ≫ L1-I capacity (scaled ~4x down from the paper's
  multi-MB footprints, preserving the over-subscription ratio against the
  32 KB L1-I and 2K-entry BTB),
* static branch count ≫ BTB capacity,
* short taken-conditional target distances (Figure 4: ~92% within 4 blocks),
* layered call graphs with far unconditional targets,
* recurring per-transaction call sequences (what temporal streaming exploits),
* a mix of strongly biased, moderately biased and loop branches.

OLTP profiles (Oracle, DB2) get the largest footprints, deepest stacks and
most indirect dispatch — the paper shows they are BTB-miss dominated (75% of
DB2's squashes). Streaming is the smallest, most sequential and most
predictable, matching its low opportunity in Figure 1 and its dislike of
speculative sequential prefetch in Figure 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..envopts import env_str
from ..errors import ConfigError

#: Taken-conditional target distance distribution, in cache blocks.
#: Index i = probability of a jump of i blocks; the tail beyond the last
#: index is folded into the last bucket. Tuned so ~92% fall within 4 blocks.
_DEFAULT_COND_DIST = (0.33, 0.26, 0.17, 0.10, 0.06, 0.03, 0.02, 0.02, 0.01)


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameter vector consumed by :func:`repro.workloads.builder.build_cfg`."""

    name: str
    description: str
    #: Laid-out (and executed) code footprint in KB.
    code_kb: int
    #: Distinct transaction types dispatched by the driver loop.
    n_transaction_types: int
    #: Call-graph depth below the transaction handlers.
    layers: int
    #: Direct callees sampled per non-leaf function.
    call_fanout: int
    #: Fraction of call sites that dispatch indirectly.
    indirect_call_frac: float
    #: Maximum distinct targets of one indirect call site.
    indirect_fanout: int
    #: Mean basic-block length in instructions.
    avg_bb_instrs: float
    #: Terminator mix for non-final blocks (renormalized; RET ends functions).
    frac_cond: float
    frac_call: float
    frac_jump: float
    #: P(block distance) for forward taken-conditional targets.
    cond_dist_weights: tuple[float, ...] = _DEFAULT_COND_DIST
    #: Fraction of intra-function jumps built as indirect (switch-style)
    #: jumps. The default matches the historic builder constant; the
    #: interpreter profile raises it to model bytecode dispatch.
    indirect_jump_frac: float = 0.10
    #: Fraction of conditional branches that are loop back-edges.
    loop_frac: float = 0.10
    #: Mean loop trip count.
    loop_mean_trip: float = 7.0
    #: (weight, P(taken)) mixture for non-loop conditional branches.
    bias_mixture: tuple[tuple[float, float], ...] = (
        (0.57, 0.03),
        (0.35, 0.97),
        (0.05, 0.75),
        (0.03, 0.25),
    )
    #: Fraction of non-loop conditionals correlated with a recent earlier
    #: branch (history-predictable) instead of carrying a Bernoulli bias.
    corr_frac: float = 0.12
    #: Mean function body size in instructions.
    avg_fn_instrs: int = 150
    #: Deterministic build seed (trace walkers derive their own from this).
    seed: int = 1
    #: Default dynamic trace length in instructions.
    default_trace_instrs: int = 400_000
    #: Fraction of the trace used to warm structures before measuring.
    warmup_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.code_kb <= 0:
            raise ConfigError("code footprint must be positive")
        if self.n_transaction_types < 1:
            raise ConfigError("need at least one transaction type")
        if self.layers < 2:
            raise ConfigError("need at least two call-graph layers")
        if not math.isclose(sum(self.cond_dist_weights), 1.0, abs_tol=1e-6):
            raise ConfigError("conditional distance weights must sum to 1")
        if not math.isclose(sum(w for w, _ in self.bias_mixture), 1.0, abs_tol=1e-6):
            raise ConfigError("bias mixture weights must sum to 1")
        mix_ok = all(0.0 <= p <= 1.0 for _, p in self.bias_mixture)
        if not mix_ok:
            raise ConfigError("bias mixture probabilities must lie in [0, 1]")
        if not 0.0 <= self.warmup_frac < 1.0:
            raise ConfigError("warmup fraction must lie in [0, 1)")
        if not 0.0 <= self.indirect_jump_frac <= 1.0:
            raise ConfigError("indirect jump fraction must lie in [0, 1]")

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Shrink (or grow) footprint and trace length together.

        Used by fast test/benchmark configurations: scaling both preserves
        the re-reference behaviour that the mechanisms react to.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            code_kb=max(16, int(self.code_kb * factor)),
            default_trace_instrs=max(20_000, int(self.default_trace_instrs * factor)),
        )

    @property
    def expected_taken_cond_rate(self) -> float:
        """Aggregate P(taken) of non-loop conditionals implied by the mixture."""
        return sum(w * p for w, p in self.bias_mixture)

    @property
    def est_static_branches(self) -> int:
        """Rough static branch-site count implied by the footprint.

        One terminator per basic block over the laid-out footprint
        (4-byte instructions). A summary statistic for the analytic
        model (:mod:`repro.analytic`), not a promise about the built
        CFG — only its *ordering* across profiles and scales matters.
        """
        blocks = (self.code_kb * 1024) / (4.0 * self.avg_bb_instrs)
        return max(1, int(blocks))

    def btb_pressure(self, btb_entries: int) -> float:
        """Dimensionless BTB over-subscription: ``log2(1 + sites/entries)``.

        The feature the analytic model's capacity terms are linear in:
        ~0 when the BTB swallows the branch working set, growing
        logarithmically as the working set over-subscribes it — matching
        the diminishing-returns shape of the paper's Figure 5 sweep.
        """
        return math.log2(1.0 + self.est_static_branches / max(1, btb_entries))


NUTCH = WorkloadProfile(
    name="nutch",
    description="Web search (Apache Nutch): mid-size footprint, layered index lookups",
    code_kb=352,
    n_transaction_types=4,
    layers=4,
    call_fanout=10,
    indirect_call_frac=0.06,
    indirect_fanout=4,
    avg_bb_instrs=5.6,
    frac_cond=0.56,
    frac_call=0.28,
    frac_jump=0.16,
    loop_frac=0.10,
    loop_mean_trip=7.0,
    avg_fn_instrs=200,
    seed=101,
    default_trace_instrs=400_000,
)

STREAMING = WorkloadProfile(
    name="streaming",
    description="Media streaming (Darwin): small hot loop, highly sequential",
    code_kb=224,
    n_transaction_types=3,
    layers=4,
    call_fanout=8,
    indirect_call_frac=0.04,
    indirect_fanout=3,
    avg_bb_instrs=7.4,
    frac_cond=0.52,
    frac_call=0.24,
    frac_jump=0.24,
    loop_frac=0.14,
    loop_mean_trip=9.0,
    avg_fn_instrs=200,
    bias_mixture=((0.58, 0.02), (0.34, 0.98), (0.05, 0.80), (0.03, 0.25)),
    corr_frac=0.10,
    seed=102,
    default_trace_instrs=400_000,
)

APACHE = WorkloadProfile(
    name="apache",
    description="Web front end (Apache/SPECweb99): CGI layers, many handlers",
    code_kb=384,
    n_transaction_types=5,
    layers=4,
    call_fanout=10,
    indirect_call_frac=0.07,
    indirect_fanout=4,
    avg_bb_instrs=5.4,
    frac_cond=0.57,
    frac_call=0.29,
    frac_jump=0.14,
    loop_frac=0.09,
    loop_mean_trip=6.0,
    avg_fn_instrs=200,
    seed=103,
    default_trace_instrs=400_000,
)

ZEUS = WorkloadProfile(
    name="zeus",
    description="Web front end (Zeus/SPECweb99): event-driven server",
    code_kb=352,
    n_transaction_types=5,
    layers=4,
    call_fanout=10,
    indirect_call_frac=0.08,
    indirect_fanout=4,
    avg_bb_instrs=5.2,
    frac_cond=0.60,
    frac_call=0.26,
    frac_jump=0.14,
    loop_frac=0.09,
    loop_mean_trip=6.0,
    avg_fn_instrs=200,
    seed=104,
    default_trace_instrs=400_000,
)

ORACLE = WorkloadProfile(
    name="oracle",
    description="OLTP (Oracle/TPC-C): deep stack, large branch working set",
    code_kb=512,
    n_transaction_types=7,
    layers=5,
    call_fanout=12,
    indirect_call_frac=0.11,
    indirect_fanout=5,
    avg_bb_instrs=4.9,
    frac_cond=0.66,
    frac_call=0.22,
    frac_jump=0.12,
    loop_frac=0.08,
    loop_mean_trip=5.0,
    bias_mixture=((0.56, 0.02), (0.38, 0.98), (0.03, 0.72), (0.03, 0.28)),
    corr_frac=0.12,
    avg_fn_instrs=210,
    seed=105,
    default_trace_instrs=480_000,
)

DB2 = WorkloadProfile(
    name="db2",
    description="OLTP (IBM DB2/TPC-C): largest branch footprint, BTB-miss bound",
    code_kb=576,
    n_transaction_types=8,
    layers=5,
    call_fanout=12,
    indirect_call_frac=0.12,
    indirect_fanout=6,
    avg_bb_instrs=4.7,
    frac_cond=0.67,
    frac_call=0.22,
    frac_jump=0.11,
    loop_frac=0.07,
    loop_mean_trip=5.0,
    bias_mixture=((0.56, 0.02), (0.38, 0.98), (0.03, 0.72), (0.03, 0.28)),
    corr_frac=0.12,
    avg_fn_instrs=210,
    seed=106,
    default_trace_instrs=480_000,
)

# ---------------------------------------------------------------------------
# Extended scenario profiles (not part of the paper's Table II grid)
# ---------------------------------------------------------------------------

MICRORPC = WorkloadProfile(
    name="microrpc",
    description="Microservice RPC fan-out: deep call chains across small functions",
    code_kb=448,
    n_transaction_types=6,
    layers=7,
    call_fanout=14,
    indirect_call_frac=0.10,
    indirect_fanout=5,
    avg_bb_instrs=5.0,
    frac_cond=0.58,
    frac_call=0.30,
    frac_jump=0.12,
    loop_frac=0.07,
    loop_mean_trip=5.0,
    bias_mixture=((0.55, 0.03), (0.37, 0.97), (0.05, 0.75), (0.03, 0.25)),
    corr_frac=0.12,
    #: Small per-service functions -> frames pile up seven layers deep,
    #: stressing the RAS and spreading call/return targets over a large
    #: footprint (BTB pressure without OLTP's indirect density).
    avg_fn_instrs=130,
    seed=107,
    default_trace_instrs=440_000,
)

INTERP = WorkloadProfile(
    name="interp",
    description="Bytecode interpreter: hot dispatch loop, dense indirect jumps",
    code_kb=192,
    n_transaction_types=3,
    layers=3,
    call_fanout=6,
    indirect_call_frac=0.05,
    indirect_fanout=8,
    avg_bb_instrs=4.2,
    frac_cond=0.44,
    frac_call=0.10,
    #: A large jump share, a third of it indirect with wide fan-out — the
    #: switch-on-opcode dispatch that defeats a BTB's single stored target.
    frac_jump=0.46,
    indirect_jump_frac=0.30,
    loop_frac=0.16,
    loop_mean_trip=12.0,
    bias_mixture=((0.50, 0.04), (0.40, 0.96), (0.06, 0.70), (0.04, 0.30)),
    corr_frac=0.10,
    avg_fn_instrs=180,
    seed=108,
    default_trace_instrs=400_000,
)

MLSERVE = WorkloadProfile(
    name="mlserve",
    description="ML inference serving: large straight-line kernels, long loops",
    code_kb=288,
    n_transaction_types=4,
    layers=4,
    call_fanout=7,
    indirect_call_frac=0.05,
    indirect_fanout=4,
    #: Long basic blocks and high-trip tiled loops: fetch is dominated by
    #: sequential runs, so this profile probes the *low*-opportunity end
    #: (like streaming, but with an even heavier sequential bias) where
    #: speculative prefetch can only pollute.
    avg_bb_instrs=14.0,
    frac_cond=0.40,
    frac_call=0.22,
    frac_jump=0.38,
    loop_frac=0.22,
    loop_mean_trip=18.0,
    bias_mixture=((0.30, 0.02), (0.62, 0.98), (0.05, 0.85), (0.03, 0.20)),
    corr_frac=0.06,
    avg_fn_instrs=260,
    seed=109,
    default_trace_instrs=420_000,
)

COMPILERPASS = WorkloadProfile(
    name="compilerpass",
    description="Compiler pass pipeline: IR visitors over the largest footprint",
    code_kb=640,
    n_transaction_types=9,
    layers=6,
    call_fanout=11,
    #: Visitor-style dispatch (indirect calls keyed on node kind) over a
    #: branch working set even larger than DB2's: the BTB-capacity-bound
    #: regime the paper's Figure 5 sweeps, pushed further.
    indirect_call_frac=0.13,
    indirect_fanout=6,
    avg_bb_instrs=4.6,
    frac_cond=0.64,
    frac_call=0.24,
    frac_jump=0.12,
    loop_frac=0.09,
    loop_mean_trip=6.0,
    bias_mixture=((0.52, 0.03), (0.38, 0.97), (0.06, 0.70), (0.04, 0.30)),
    corr_frac=0.14,
    avg_fn_instrs=190,
    seed=110,
    default_trace_instrs=480_000,
)


#: Paper order (Figures 1, 3, 7-11) — the default experiment grid.
ALL_PROFILES: tuple[WorkloadProfile, ...] = (NUTCH, STREAMING, APACHE, ZEUS, ORACLE, DB2)

#: The four extra control-flow-delivery scenarios.
EXTENDED_PROFILES: tuple[WorkloadProfile, ...] = (MICRORPC, INTERP, MLSERVE, COMPILERPASS)

#: Named profile sets selectable via ``REPRO_WORKLOAD_SET``.
PROFILE_SETS: dict[str, tuple[WorkloadProfile, ...]] = {
    "paper": ALL_PROFILES,
    "extended": EXTENDED_PROFILES,
    "all": ALL_PROFILES + EXTENDED_PROFILES,
}

_BY_NAME = {p.name: p for p in ALL_PROFILES + EXTENDED_PROFILES}


def workload_set(name: str | None = None) -> tuple[WorkloadProfile, ...]:
    """Resolve a profile set by argument, ``REPRO_WORKLOAD_SET``, or default.

    The default is the paper set, so figure grids only change when a run
    explicitly opts in (mirrors how ``REPRO_SCALE`` selects sweep density).
    """
    chosen = name or env_str("REPRO_WORKLOAD_SET", "paper")
    try:
        return PROFILE_SETS[chosen]
    except KeyError:
        known = ", ".join(sorted(PROFILE_SETS))
        raise ConfigError(
            f"unknown workload set {chosen!r}; known sets: {known}"
        ) from None


def get_profile(name: str) -> WorkloadProfile:
    """Look up a named profile (case-insensitive; searches every set)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigError(f"unknown workload {name!r}; known workloads: {known}") from None


def profile_names(set_name: str | None = None) -> tuple[str, ...]:
    """Names of a profile set (default: the paper set).

    Deliberately *not* environment-sensitive: callers treating this as
    "the paper grid" keep a stable answer regardless of
    ``REPRO_WORKLOAD_SET``; pass a set name (or use
    :func:`workload_set`) to opt into the extended scenarios.
    """
    profiles = PROFILE_SETS["paper"] if set_name is None else workload_set(set_name)
    return tuple(p.name for p in profiles)
