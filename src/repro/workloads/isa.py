"""Synthetic fixed-width ISA: branch kinds and address arithmetic.

The paper's substrate is SPARC v9 (fixed 4-byte instructions). Only the
*addresses* and *branch kinds* of instructions matter to a front-end study,
so the synthetic ISA is nothing more than: every instruction occupies 4
bytes, and a basic block is a run of instructions whose last one is a
branch of one of the kinds below.
"""

from __future__ import annotations

from enum import IntEnum

from ..config import BLOCK_BYTES, INSTR_BYTES


class BranchKind(IntEnum):
    """Terminating-branch kind of a basic block."""

    COND = 0       #: conditional direct branch (taken or not taken)
    JUMP = 1       #: unconditional direct jump
    CALL = 2       #: direct call (pushes return address)
    RET = 3        #: return (target from the call stack)
    IND_JUMP = 4   #: indirect jump (target varies dynamically)
    IND_CALL = 5   #: indirect call


#: Kinds whose execution always redirects the fetch stream.
UNCONDITIONAL_KINDS = frozenset(
    (BranchKind.JUMP, BranchKind.CALL, BranchKind.RET, BranchKind.IND_JUMP, BranchKind.IND_CALL)
)

#: Kinds that consult the return address stack for their target.
RETURN_KINDS = frozenset((BranchKind.RET,))

#: Kinds that push onto the return address stack.
CALL_KINDS = frozenset((BranchKind.CALL, BranchKind.IND_CALL))

#: Kinds whose BTB-stored target can be wrong (target varies dynamically).
INDIRECT_KINDS = frozenset((BranchKind.IND_JUMP, BranchKind.IND_CALL))


class EntryKind(IntEnum):
    """How control arrived at a fetch address (Figure 3 classification)."""

    SEQUENTIAL = 0      #: fall-through / straight-line fetch
    CONDITIONAL = 1     #: target of a taken conditional branch
    UNCONDITIONAL = 2   #: target of a call, return, or unconditional jump


def block_of(pc: int) -> int:
    """Cache-block number containing byte address ``pc``."""
    return pc >> 6  # BLOCK_BYTES == 64


def block_base(pc: int) -> int:
    """Byte address of the first byte of the cache block containing ``pc``."""
    return pc & ~(BLOCK_BYTES - 1)


def blocks_spanned(start_pc: int, n_instrs: int) -> range:
    """Cache-block numbers touched by ``n_instrs`` instructions at ``start_pc``."""
    if n_instrs <= 0:
        return range(block_of(start_pc), block_of(start_pc))
    last_pc = start_pc + (n_instrs - 1) * INSTR_BYTES
    return range(block_of(start_pc), block_of(last_pc) + 1)


def block_distance(from_pc: int, to_pc: int) -> int:
    """Distance between two addresses in whole cache blocks (Figure 4 metric)."""
    return abs(block_of(to_pc) - block_of(from_pc))


def instr_count(start_pc: int, end_pc: int) -> int:
    """Number of instructions in [start_pc, end_pc] inclusive."""
    if end_pc < start_pc:
        raise ValueError(f"end_pc {end_pc:#x} precedes start_pc {start_pc:#x}")
    return (end_pc - start_pc) // INSTR_BYTES + 1


__all__ = [
    "BranchKind",
    "EntryKind",
    "UNCONDITIONAL_KINDS",
    "RETURN_KINDS",
    "CALL_KINDS",
    "INDIRECT_KINDS",
    "block_of",
    "block_base",
    "blocks_spanned",
    "block_distance",
    "instr_count",
    "BLOCK_BYTES",
    "INSTR_BYTES",
]
