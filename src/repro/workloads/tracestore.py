"""Persistent, content-addressed store of built workloads (CFG + trace).

Building a workload is deterministic but not free: at full scale the CFG
builder and trace walker together cost the better part of a second per
profile, and before this store existed every pool worker (and every cold
process) paid it again. The store persists one record per built workload::

    <cache_dir>/
      <TRACE_SCHEMA_TAG>/                  # e.g. "trace-v1-<fingerprint>"
        <profile>__<digest16>__L<len>.wkld

keyed by an **exhaustive content digest of the frozen WorkloadProfile
tree** (every field contributes via the same canonicalization as the
result cache's config digest — no hand-picked field list to go stale)
plus the requested trace length. Records written by a profile that merely
*shares a name* with another can therefore never be served for it — the
unsoundness PR 1 removed from the result cache, removed here from the
workload layer.

Record format (binary, one file per workload)::

    magic | u32 header length | JSON header | column payloads | CFG pickle

The header carries the schema tag, the full profile digest, the requested
length, the derived trace seed, and per-column (name, typecode, nbytes) so
a record is self-describing; the column payloads are ``array.tobytes`` of
the six trace columns. Records are written atomically (temp file +
``os.replace``) and any unreadable, truncated or mismatching record is a
miss, never an error.

:data:`TRACE_SCHEMA_TAG` mirrors :data:`repro.runtime.cache.SCHEMA_TAG`:
a manual major tag plus a fingerprint of the workload-semantics sources
(this package plus ``repro/config.py``, whose ``INSTR_BYTES``/
``BLOCK_BYTES`` shape the layout). Any change to profiles, the builder,
the walker or the storage representation orphans old records
automatically.

The CFG payload uses :mod:`pickle`, which is only safe for trusted data;
records live in a local cache directory the user controls (the same trust
model as the result cache), and the schema/digest checks reject anything
this code did not write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import shutil
import struct
from array import array
from dataclasses import dataclass
from pathlib import Path

from .cfg import ControlFlowGraph
from .profiles import WorkloadProfile
from .trace import COLUMN_SPECS, Trace

#: Bump on record *format* changes; semantic changes are fingerprinted.
_SCHEMA_MAJOR = "trace-v1"

#: First bytes of every record file.
_MAGIC = b"BWKLD1\n"

#: Digest prefix length used in filenames (full digest verified on read).
_NAME_DIGEST_CHARS = 16


def _source_fingerprint() -> str:
    """Hash every source file that can change a built workload."""
    pkg_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    paths = sorted(pkg_dir.glob("*.py")) + [pkg_dir.parent / "config.py"]
    for path in paths:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


#: Versions every record; recomputed from source so it can never go stale.
TRACE_SCHEMA_TAG = f"{_SCHEMA_MAJOR}-{_source_fingerprint()}"


def profile_digest(profile: WorkloadProfile) -> str:
    """Hex SHA-256 of the full canonicalized profile tree.

    Every field of the frozen dataclass contributes (nested tuples
    included), so profiles that differ anywhere — not just by name — can
    never collide. Deferred import: ``repro.runtime`` imports this package
    back, and the function is never called at import time.
    """
    from ..runtime.confighash import canonicalize

    payload = json.dumps(
        canonicalize(profile), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def trace_seed(profile: WorkloadProfile) -> int:
    """The derived walker seed :func:`load_workload` uses for ``profile``."""
    return profile.seed * 7919 + 1


class TraceStore:
    """Directory-backed store of built (CFG, trace) workload records."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.root = Path(cache_dir) / TRACE_SCHEMA_TAG
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, profile_name: str, digest: str, length: int) -> Path:
        safe_name = re.sub(r"[^A-Za-z0-9_.-]", "_", profile_name)
        return self.root / (
            f"{safe_name}__{digest[:_NAME_DIGEST_CHARS]}__L{length}.wkld"
        )

    # ---------------------------------------------------------------- read

    def get(
        self,
        profile: WorkloadProfile,
        length: int,
        digest: str | None = None,
    ) -> tuple[ControlFlowGraph, Trace] | None:
        """Return the stored (cfg, trace) build, or ``None`` on miss.

        ``digest`` lets callers that already computed the profile digest
        (``load_workload`` memoizes it) skip recomputing it here.
        """
        if digest is None:
            digest = profile_digest(profile)
        path = self._path(profile.name, digest, length)
        try:
            blob = path.read_bytes()
            parsed = self._parse(blob, digest, length)
        except Exception:
            # "Any unreadable, truncated or mismatching record is a miss,
            # never an error": corrupt pickle payloads alone can raise
            # nearly anything (AttributeError, ImportError, IndexError,
            # UnicodeDecodeError, ...), so no allowlist can be exhaustive.
            parsed = None
        if parsed is None:
            self.misses += 1
            return None
        self.hits += 1
        return parsed

    def _parse(
        self, blob: bytes, digest: str, length: int
    ) -> tuple[ControlFlowGraph, Trace] | None:
        if not blob.startswith(_MAGIC):
            return None
        view = memoryview(blob)  # zero-copy slices for the bulk payloads
        offset = len(_MAGIC)
        (header_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        header = json.loads(blob[offset : offset + header_len])
        offset += header_len
        if (
            header.get("schema") != TRACE_SCHEMA_TAG
            or header.get("profile_digest") != digest
            or header.get("length") != length
            or header.get("columns") is None
            or len(header["columns"]) != len(COLUMN_SPECS)
        ):
            return None
        columns: list[array] = []
        n_records = header["n_records"]
        for (name, typecode), (h_name, h_typecode, nbytes) in zip(
            COLUMN_SPECS, header["columns"]
        ):
            if h_name != name or h_typecode != typecode:
                return None
            col = array(typecode)
            col.frombytes(view[offset : offset + nbytes])
            offset += nbytes
            if len(col) != n_records:
                return None
            columns.append(col)
        cfg_bytes = header["cfg_bytes"]
        cfg = pickle.loads(view[offset : offset + cfg_bytes])
        if not isinstance(cfg, ControlFlowGraph):
            return None
        trace = Trace(
            cfg=cfg,
            columns=tuple(columns),
            seed=header["trace_seed"],
            n_instrs=header["n_instrs"],
        )
        return cfg, trace

    # --------------------------------------------------------------- write

    def put(
        self,
        profile: WorkloadProfile,
        length: int,
        cfg: ControlFlowGraph,
        trace: Trace,
        digest: str | None = None,
    ) -> None:
        """Atomically persist one built workload record."""
        # Deferred for the same reason as profile_digest's confighash
        # import: ``repro.runtime`` imports this package back, and the
        # method is never called at import time.
        from ..runtime.atomicio import atomic_writer

        if digest is None:
            digest = profile_digest(profile)
        path = self._path(profile.name, digest, length)
        payloads = [col.tobytes() for col in trace.columns]
        cfg_blob = pickle.dumps(cfg, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {
                "schema": TRACE_SCHEMA_TAG,
                "profile_digest": digest,
                "profile_name": profile.name,
                "length": length,
                "trace_seed": trace.seed,
                "n_instrs": trace.n_instrs,
                "n_records": len(trace),
                "columns": [
                    [name, typecode, len(payload)]
                    for (name, typecode), payload in zip(COLUMN_SPECS, payloads)
                ],
                "cfg_bytes": len(cfg_blob),
            },
            separators=(",", ":"),
        ).encode()
        try:
            with atomic_writer(path, mode="wb") as fh:
                fh.write(_MAGIC)
                fh.write(struct.pack("<I", len(header)))
                fh.write(header)
                for payload in payloads:
                    fh.write(payload)
                fh.write(cfg_blob)
        except OSError:
            return  # a read-only or full store degrades to no caching
        self.stores += 1


# ---------------------------------------------------------------------------
# Store lifecycle (the ``python -m repro.workloads`` store-list/store-prune
# CLI) — same shape as the result-cache lifecycle in repro.runtime.cache.
# ---------------------------------------------------------------------------


#: Shape of a directory name this store could have written. Lifecycle
#: helpers only ever look at — and delete — matching directories, so a
#: cache dir shared with the result cache (or anything else) is safe.
_TAG_DIR_RE = re.compile(r"^trace-v\d+-[0-9a-f]{12}$")


@dataclass(frozen=True)
class TraceStoreTagInfo:
    """Aggregate of one schema-tag directory inside a store dir."""

    tag: str
    records: int
    size_bytes: int
    #: True when the tag matches the running code's :data:`TRACE_SCHEMA_TAG`.
    current: bool


def scan_trace_store(cache_dir: str | os.PathLike) -> list[TraceStoreTagInfo]:
    """Per-schema-tag workload-record counts and sizes under ``cache_dir``."""
    root = Path(cache_dir)
    infos: list[TraceStoreTagInfo] = []
    if not root.is_dir():
        return infos
    for tag_dir in sorted(
        p for p in root.iterdir() if p.is_dir() and _TAG_DIR_RE.match(p.name)
    ):
        records = 0
        size = 0
        for path in tag_dir.glob("*.wkld"):
            records += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        infos.append(
            TraceStoreTagInfo(
                tag=tag_dir.name,
                records=records,
                size_bytes=size,
                current=tag_dir.name == TRACE_SCHEMA_TAG,
            )
        )
    infos.sort(key=lambda i: (not i.current, i.tag))
    return infos


def prune_trace_store(
    cache_dir: str | os.PathLike,
    schema_tag: str | None = None,
    dry_run: bool = False,
) -> list[TraceStoreTagInfo]:
    """Delete stale trace-store tags; returns what was (or would be) removed.

    Without ``schema_tag`` every tag except the running code's
    :data:`TRACE_SCHEMA_TAG` is removed; with it only that tag is removed
    (including the current one, to force cold builds). A tag whose
    directory survives the deletion attempt is not reported as removed.
    """
    root = Path(cache_dir)
    removed: list[TraceStoreTagInfo] = []
    for info in scan_trace_store(root):
        if schema_tag is None:
            if info.current:
                continue
        elif info.tag != schema_tag:
            continue
        if dry_run:
            removed.append(info)
            continue
        tag_dir = root / info.tag
        shutil.rmtree(tag_dir, ignore_errors=True)
        if not tag_dir.exists():
            removed.append(info)
    return removed
